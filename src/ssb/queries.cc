#include "ssb/queries.h"

namespace pmemolap::ssb {

std::string QueryName(QueryId query) {
  switch (query) {
    case QueryId::kQ1_1:
      return "Q1.1";
    case QueryId::kQ1_2:
      return "Q1.2";
    case QueryId::kQ1_3:
      return "Q1.3";
    case QueryId::kQ2_1:
      return "Q2.1";
    case QueryId::kQ2_2:
      return "Q2.2";
    case QueryId::kQ2_3:
      return "Q2.3";
    case QueryId::kQ3_1:
      return "Q3.1";
    case QueryId::kQ3_2:
      return "Q3.2";
    case QueryId::kQ3_3:
      return "Q3.3";
    case QueryId::kQ3_4:
      return "Q3.4";
    case QueryId::kQ4_1:
      return "Q4.1";
    case QueryId::kQ4_2:
      return "Q4.2";
    case QueryId::kQ4_3:
      return "Q4.3";
  }
  return "Q?";
}

int FlightOf(QueryId query) {
  switch (query) {
    case QueryId::kQ1_1:
    case QueryId::kQ1_2:
    case QueryId::kQ1_3:
      return 1;
    case QueryId::kQ2_1:
    case QueryId::kQ2_2:
    case QueryId::kQ2_3:
      return 2;
    case QueryId::kQ3_1:
    case QueryId::kQ3_2:
    case QueryId::kQ3_3:
    case QueryId::kQ3_4:
      return 3;
    case QueryId::kQ4_1:
    case QueryId::kQ4_2:
    case QueryId::kQ4_3:
      return 4;
  }
  return 0;
}

const std::vector<QueryId>& AllQueries() {
  static const std::vector<QueryId> kAll = {
      QueryId::kQ1_1, QueryId::kQ1_2, QueryId::kQ1_3, QueryId::kQ2_1,
      QueryId::kQ2_2, QueryId::kQ2_3, QueryId::kQ3_1, QueryId::kQ3_2,
      QueryId::kQ3_3, QueryId::kQ3_4, QueryId::kQ4_1, QueryId::kQ4_2,
      QueryId::kQ4_3};
  return kAll;
}

QueryOutput MergeOutputs(const std::vector<QueryOutput>& parts) {
  QueryOutput merged;
  for (const QueryOutput& part : parts) {
    if (part.scalar) {
      merged.scalar = true;
      merged.value += part.value;
    }
    for (const auto& [key, value] : part.groups) {
      merged.groups[key] += value;
    }
  }
  return merged;
}

int64_t QueryOutput::Checksum() const {
  if (scalar) return value;
  int64_t checksum = 0;
  for (const auto& [key, sum] : groups) {
    checksum = checksum * 1000003 +
               (key[0] * 31 + key[1]) * 31 + key[2] + sum;
  }
  return checksum;
}

}  // namespace pmemolap::ssb
