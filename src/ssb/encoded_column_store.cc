#include "ssb/encoded_column_store.h"

#include <cmath>

namespace pmemolap::ssb {

const char* LineorderColumnName(LineorderColumn column) {
  switch (column) {
    case LineorderColumn::kOrderdate:
      return "orderdate";
    case LineorderColumn::kCustkey:
      return "custkey";
    case LineorderColumn::kPartkey:
      return "partkey";
    case LineorderColumn::kSuppkey:
      return "suppkey";
    case LineorderColumn::kQuantity:
      return "quantity";
    case LineorderColumn::kDiscount:
      return "discount";
    case LineorderColumn::kExtendedprice:
      return "extendedprice";
    case LineorderColumn::kRevenue:
      return "revenue";
    case LineorderColumn::kSupplycost:
      return "supplycost";
  }
  return "?";
}

std::vector<LineorderColumn> ScanColumnsFor(QueryId query) {
  using C = LineorderColumn;
  switch (FlightOf(query)) {
    case 1:
      return {C::kOrderdate, C::kDiscount, C::kQuantity, C::kExtendedprice};
    case 2:
      return {C::kPartkey, C::kSuppkey, C::kOrderdate, C::kRevenue};
    case 3:
      return {C::kCustkey, C::kSuppkey, C::kOrderdate, C::kRevenue};
    default:
      if (query == QueryId::kQ4_3) {
        return {C::kSuppkey, C::kPartkey, C::kOrderdate, C::kRevenue,
                C::kSupplycost};
      }
      return {C::kCustkey, C::kSuppkey, C::kPartkey, C::kOrderdate,
              C::kRevenue, C::kSupplycost};
  }
}

EncodedColumnStore::EncodedColumnStore(const ColumnStore& columns)
    : size_(columns.size()) {
  using encoding::EncodedColumn;
  columns_[static_cast<size_t>(LineorderColumn::kOrderdate)] =
      EncodedColumn::Encode(columns.orderdate());
  columns_[static_cast<size_t>(LineorderColumn::kCustkey)] =
      EncodedColumn::Encode(columns.custkey());
  columns_[static_cast<size_t>(LineorderColumn::kPartkey)] =
      EncodedColumn::Encode(columns.partkey());
  columns_[static_cast<size_t>(LineorderColumn::kSuppkey)] =
      EncodedColumn::Encode(columns.suppkey());
  columns_[static_cast<size_t>(LineorderColumn::kQuantity)] =
      EncodedColumn::Encode(columns.quantity());
  columns_[static_cast<size_t>(LineorderColumn::kDiscount)] =
      EncodedColumn::Encode(columns.discount());
  columns_[static_cast<size_t>(LineorderColumn::kExtendedprice)] =
      EncodedColumn::Encode(columns.extendedprice());
  columns_[static_cast<size_t>(LineorderColumn::kRevenue)] =
      EncodedColumn::Encode(columns.revenue());
  columns_[static_cast<size_t>(LineorderColumn::kSupplycost)] =
      EncodedColumn::Encode(columns.supplycost());
}

uint64_t EncodedColumnStore::TotalEncodedBytes() const {
  uint64_t total = 0;
  for (const encoding::EncodedColumn& column : columns_) {
    total += column.EncodedBytes();
  }
  return total;
}

uint64_t EncodedColumnStore::ScanBytes(
    const std::vector<LineorderColumn>& columns, uint64_t tuples) const {
  if (size_ == 0) return 0;
  uint64_t bytes = 0;
  for (LineorderColumn column : columns) {
    // Fractional encoded bytes-per-tuple: prorate each column's encoded
    // size over the tuples scanned, rounding once per column.
    const double per_tuple =
        static_cast<double>(EncodedBytes(column)) /
        static_cast<double>(size_);
    bytes += static_cast<uint64_t>(
        std::llround(per_tuple * static_cast<double>(tuples)));
  }
  return bytes;
}

}  // namespace pmemolap::ssb
