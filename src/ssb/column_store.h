// ColumnStore — a structure-of-arrays projection of the lineorder fact
// table (the §2.2 column-store layout, materialized for real).
//
// The engine's `columnar` flag models the traffic reduction; this class
// provides the actual storage so scans over individual columns can be
// executed and wall-clock-benchmarked (bench_functional_microbench) —
// demonstrating functionally why "high-performance column stores can be
// orders of magnitude faster" on scan-bound flights.
#pragma once

#include <cstdint>
#include <vector>

#include "ssb/schema.h"

namespace pmemolap::ssb {

class ColumnStore {
 public:
  ColumnStore() = default;
  /// Builds the SoA projection from row storage.
  explicit ColumnStore(const std::vector<LineorderRow>& rows);
  /// Builds the SoA projection and releases the source rows: after the
  /// call `rows` is empty with zero capacity, so the 128 B row image and
  /// the columnar image are never resident together (the row copy would
  /// cost 3.5x the nine 4 B columns).
  explicit ColumnStore(std::vector<LineorderRow>&& rows);

  size_t size() const { return orderdate_.size(); }
  bool empty() const { return orderdate_.empty(); }

  const std::vector<int32_t>& orderdate() const { return orderdate_; }
  const std::vector<int32_t>& custkey() const { return custkey_; }
  const std::vector<int32_t>& partkey() const { return partkey_; }
  const std::vector<int32_t>& suppkey() const { return suppkey_; }
  const std::vector<int32_t>& quantity() const { return quantity_; }
  const std::vector<int32_t>& discount() const { return discount_; }
  const std::vector<int32_t>& extendedprice() const {
    return extendedprice_;
  }
  const std::vector<int32_t>& revenue() const { return revenue_; }
  const std::vector<int32_t>& supplycost() const { return supplycost_; }

  /// Bytes of one column.
  uint64_t BytesPerColumn() const { return size() * sizeof(int32_t); }
  /// Total bytes across the nine projected columns — vs 128 B/row.
  uint64_t TotalBytes() const { return 9 * BytesPerColumn(); }

  /// Flight-1-style columnar scan: touches exactly four columns and
  /// returns sum(extendedprice * discount) over tuples with discount in
  /// [discount_lo, discount_hi] and quantity < quantity_below. Used by
  /// the wall-clock row-vs-column microbenchmark.
  int64_t ScanDiscountedRevenue(int32_t discount_lo, int32_t discount_hi,
                                int32_t quantity_below) const;

 private:
  std::vector<int32_t> orderdate_;
  std::vector<int32_t> custkey_;
  std::vector<int32_t> partkey_;
  std::vector<int32_t> suppkey_;
  std::vector<int32_t> quantity_;
  std::vector<int32_t> discount_;
  std::vector<int32_t> extendedprice_;
  std::vector<int32_t> revenue_;
  std::vector<int32_t> supplycost_;
};

/// The row-storage counterpart of ScanDiscountedRevenue, for apples-to-
/// apples wall-clock comparison.
int64_t RowScanDiscountedRevenue(const std::vector<LineorderRow>& rows,
                                 int32_t discount_lo, int32_t discount_hi,
                                 int32_t quantity_below);

}  // namespace pmemolap::ssb
