// Star Schema Benchmark schema (O'Neil et al.): one fact table `lineorder`
// and four dimensions `date`, `customer`, `supplier`, `part`.
//
// Categorical string attributes are stored as small integer codes (region
// 0-4, nation 0-24 with region = nation / 5, city 0-9 within a nation,
// brand hierarchy mfgr -> category -> brand1); display helpers render the
// benchmark's string forms ("ASIA", "MFGR#12", "UNITED KI1", ...).
//
// Lineorder rows are padded to 128 B, matching the paper's handcrafted SSB
// layout ("we align all fields to 128 Byte, which is slightly larger than
// the size of a tuple").
#pragma once

#include <cstdint>
#include <string>

namespace pmemolap::ssb {

inline constexpr int kNumRegions = 5;
inline constexpr int kNationsPerRegion = 5;
inline constexpr int kNumNations = kNumRegions * kNationsPerRegion;
inline constexpr int kCitiesPerNation = 10;
inline constexpr int kNumMfgrs = 5;
inline constexpr int kCategoriesPerMfgr = 5;
inline constexpr int kBrandsPerCategory = 40;

/// Region code of a nation.
constexpr int RegionOfNation(int nation) { return nation / kNationsPerRegion; }

/// Global city id (0 .. kNumNations * kCitiesPerNation - 1).
constexpr int CityId(int nation, int city_in_nation) {
  return nation * kCitiesPerNation + city_in_nation;
}

std::string RegionName(int region);
std::string NationName(int nation);
/// E.g. "UNITED ST3" — the nation name truncated to 9 chars + city digit.
std::string CityName(int city_id);
/// E.g. "MFGR#1".
std::string MfgrName(int mfgr);
/// E.g. "MFGR#12" for mfgr 1, category 2.
std::string CategoryName(int mfgr, int category);
/// E.g. "MFGR#1221" for mfgr 1, category 2, brand 21.
std::string BrandName(int mfgr, int category, int brand);

/// Encoded category id: mfgr * 10 + category (reads as the display digits).
constexpr int CategoryId(int mfgr, int category) {
  return mfgr * 10 + category;
}
/// Encoded brand id: category id * 100 + brand (1..40).
constexpr int BrandId(int mfgr, int category, int brand) {
  return CategoryId(mfgr, category) * 100 + brand;
}

struct DateRow {
  int32_t datekey = 0;        ///< yyyymmdd
  int32_t yearmonthnum = 0;   ///< yyyymm
  int16_t year = 0;           ///< 1992..1998
  int8_t monthnuminyear = 0;  ///< 1..12
  int8_t daynuminweek = 0;    ///< 1..7
  int8_t weeknuminyear = 0;   ///< 1..53

  bool operator==(const DateRow&) const = default;
};

struct CustomerRow {
  int32_t custkey = 0;
  uint8_t nation = 0;   ///< 0..24
  uint8_t region = 0;   ///< nation / 5
  uint8_t city = 0;     ///< 0..9 within the nation
  uint8_t mktsegment = 0;

  bool operator==(const CustomerRow&) const = default;
};

struct SupplierRow {
  int32_t suppkey = 0;
  uint8_t nation = 0;
  uint8_t region = 0;
  uint8_t city = 0;

  bool operator==(const SupplierRow&) const = default;
};

struct PartRow {
  int32_t partkey = 0;
  uint8_t mfgr = 0;      ///< 1..5
  uint8_t category = 0;  ///< 1..5 within the mfgr
  uint8_t brand = 0;     ///< 1..40 within the category
  uint8_t color = 0;
  uint8_t size = 0;

  int category_id() const { return CategoryId(mfgr, category); }
  int brand_id() const { return BrandId(mfgr, category, brand); }

  bool operator==(const PartRow&) const = default;
};

/// The fact table row, padded to 128 B (the paper's layout).
struct alignas(128) LineorderRow {
  int64_t orderkey = 0;
  int32_t linenumber = 0;
  int32_t custkey = 0;
  int32_t partkey = 0;
  int32_t suppkey = 0;
  int32_t orderdate = 0;   ///< datekey
  int32_t commitdate = 0;  ///< datekey
  int32_t quantity = 0;       ///< 1..50
  int32_t discount = 0;       ///< 0..10 (percent)
  int32_t extendedprice = 0;
  int32_t ordtotalprice = 0;
  int32_t revenue = 0;      ///< extendedprice * (100 - discount) / 100
  int32_t supplycost = 0;
  int32_t tax = 0;          ///< 0..8
  uint8_t shipmode = 0;
  uint8_t priority = 0;

  bool operator==(const LineorderRow&) const = default;
};
static_assert(sizeof(LineorderRow) == 128,
              "lineorder rows must be 128 B (paper layout)");

}  // namespace pmemolap::ssb
