// Human-readable rendering of query results: group keys are decoded back
// into the benchmark's display strings ("ASIA", "MFGR#2221",
// "UNITED KI1", ...), per query semantics.
#pragma once

#include <string>
#include <vector>

#include "ssb/queries.h"

namespace pmemolap::ssb {

/// The column headers of a query's result, e.g. Q2.1 ->
/// {"d_year", "p_brand1", "sum(lo_revenue)"}.
std::vector<std::string> ResultHeaders(QueryId query);

/// One result row rendered with decoded display values.
std::vector<std::string> FormatRow(QueryId query, const GroupKey& key,
                                   int64_t value);

/// Renders an output as an aligned table, truncated to `max_rows` rows
/// (0 = all).
std::string FormatOutput(QueryId query, const QueryOutput& output,
                         size_t max_rows = 10);

}  // namespace pmemolap::ssb
