// The 13 SSB queries: identifiers, flights, parameters, and the shared
// result representation used by the reference executor, the query engine,
// and the tests that cross-validate them.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pmemolap::ssb {

enum class QueryId {
  kQ1_1,
  kQ1_2,
  kQ1_3,
  kQ2_1,
  kQ2_2,
  kQ2_3,
  kQ3_1,
  kQ3_2,
  kQ3_3,
  kQ3_4,
  kQ4_1,
  kQ4_2,
  kQ4_3,
};

inline constexpr int kNumQueries = 13;

/// "Q1.1" etc.
std::string QueryName(QueryId query);

/// Query flight 1..4 (queries in a flight join the same tables).
int FlightOf(QueryId query);

/// All queries in benchmark order.
const std::vector<QueryId>& AllQueries();

/// Group-by key: up to three int32 components (unused components are 0).
/// Q1.x results are scalar; Q2.x use (year, brand); Q3.x use
/// (c_geo, s_geo, year); Q4.x use (year, geo[, category/brand]).
using GroupKey = std::array<int32_t, 3>;

/// Grouped aggregate: key -> sum. std::map gives deterministic ordering
/// for printing and comparison.
using GroupMap = std::map<GroupKey, int64_t>;

/// Result of one query: either a scalar sum (flight 1) or grouped sums.
struct QueryOutput {
  bool scalar = false;
  int64_t value = 0;
  GroupMap groups;

  bool operator==(const QueryOutput& other) const = default;

  /// Number of result rows (1 for scalars).
  size_t rows() const { return scalar ? 1 : groups.size(); }
  /// Checksum over all values, for compact result comparison in benches.
  int64_t Checksum() const;
};

/// Merges per-worker partial results into one output: scalar sums add,
/// group sums add per key. Aggregation is commutative, so the merge is
/// independent of worker/steal order — any parallel schedule produces the
/// same output.
QueryOutput MergeOutputs(const std::vector<QueryOutput>& parts);

}  // namespace pmemolap::ssb
