#include "ssb/column_store.h"

namespace pmemolap::ssb {

ColumnStore::ColumnStore(const std::vector<LineorderRow>& rows) {
  orderdate_.reserve(rows.size());
  custkey_.reserve(rows.size());
  partkey_.reserve(rows.size());
  suppkey_.reserve(rows.size());
  quantity_.reserve(rows.size());
  discount_.reserve(rows.size());
  extendedprice_.reserve(rows.size());
  revenue_.reserve(rows.size());
  supplycost_.reserve(rows.size());
  for (const LineorderRow& row : rows) {
    orderdate_.push_back(row.orderdate);
    custkey_.push_back(row.custkey);
    partkey_.push_back(row.partkey);
    suppkey_.push_back(row.suppkey);
    quantity_.push_back(row.quantity);
    discount_.push_back(row.discount);
    extendedprice_.push_back(row.extendedprice);
    revenue_.push_back(row.revenue);
    supplycost_.push_back(row.supplycost);
  }
}

ColumnStore::ColumnStore(std::vector<LineorderRow>&& rows)
    : ColumnStore(static_cast<const std::vector<LineorderRow>&>(rows)) {
  rows.clear();
  rows.shrink_to_fit();
}

int64_t ColumnStore::ScanDiscountedRevenue(int32_t discount_lo,
                                           int32_t discount_hi,
                                           int32_t quantity_below) const {
  int64_t sum = 0;
  const size_t n = size();
  const int32_t* discount = discount_.data();
  const int32_t* quantity = quantity_.data();
  const int32_t* price = extendedprice_.data();
  for (size_t i = 0; i < n; ++i) {
    if (discount[i] >= discount_lo && discount[i] <= discount_hi &&
        quantity[i] < quantity_below) {
      sum += static_cast<int64_t>(price[i]) * discount[i];
    }
  }
  return sum;
}

int64_t RowScanDiscountedRevenue(const std::vector<LineorderRow>& rows,
                                 int32_t discount_lo, int32_t discount_hi,
                                 int32_t quantity_below) {
  int64_t sum = 0;
  for (const LineorderRow& row : rows) {
    if (row.discount >= discount_lo && row.discount <= discount_hi &&
        row.quantity < quantity_below) {
      sum += static_cast<int64_t>(row.extendedprice) * row.discount;
    }
  }
  return sum;
}

}  // namespace pmemolap::ssb
