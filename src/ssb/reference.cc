#include "ssb/reference.h"

namespace pmemolap::ssb {

namespace {

constexpr int kUnitedStates = 9;    // AMERICA nation index
constexpr int kUnitedKingdom = 19;  // EUROPE nation index
constexpr int kRegionAmerica = 1;
constexpr int kRegionAsia = 2;
constexpr int kRegionEurope = 3;

}  // namespace

ReferenceExecutor::ReferenceExecutor(const Database* db) : db_(db) {
  date_index_.reserve(db_->date.size());
  for (size_t i = 0; i < db_->date.size(); ++i) {
    date_index_[db_->date[i].datekey] = i;
  }
}

QueryOutput ReferenceExecutor::Execute(QueryId query) const {
  QueryOutput out;
  switch (query) {
    // --- Flight 1: scan + date filter, scalar revenue sum ------------------
    case QueryId::kQ1_1: {
      out.scalar = true;
      for (const LineorderRow& lo : db_->lineorder) {
        const DateRow& d = DateOf(lo.orderdate);
        if (d.year == 1993 && lo.discount >= 1 && lo.discount <= 3 &&
            lo.quantity < 25) {
          out.value += static_cast<int64_t>(lo.extendedprice) * lo.discount;
        }
      }
      return out;
    }
    case QueryId::kQ1_2: {
      out.scalar = true;
      for (const LineorderRow& lo : db_->lineorder) {
        const DateRow& d = DateOf(lo.orderdate);
        if (d.yearmonthnum == 199401 && lo.discount >= 4 &&
            lo.discount <= 6 && lo.quantity >= 26 && lo.quantity <= 35) {
          out.value += static_cast<int64_t>(lo.extendedprice) * lo.discount;
        }
      }
      return out;
    }
    case QueryId::kQ1_3: {
      out.scalar = true;
      for (const LineorderRow& lo : db_->lineorder) {
        const DateRow& d = DateOf(lo.orderdate);
        if (d.weeknuminyear == 6 && d.year == 1994 && lo.discount >= 5 &&
            lo.discount <= 7 && lo.quantity >= 26 && lo.quantity <= 35) {
          out.value += static_cast<int64_t>(lo.extendedprice) * lo.discount;
        }
      }
      return out;
    }

    // --- Flight 2: part x supplier x date, group by (year, brand) ----------
    case QueryId::kQ2_1:
    case QueryId::kQ2_2:
    case QueryId::kQ2_3: {
      for (const LineorderRow& lo : db_->lineorder) {
        const PartRow& p = PartOf(lo.partkey);
        const SupplierRow& s = SupplierOf(lo.suppkey);
        bool part_ok = false;
        bool supp_ok = false;
        switch (query) {
          case QueryId::kQ2_1:
            part_ok = p.category_id() == 12;
            supp_ok = s.region == kRegionAmerica;
            break;
          case QueryId::kQ2_2:
            part_ok = p.brand_id() >= 2221 && p.brand_id() <= 2228;
            supp_ok = s.region == kRegionAsia;
            break;
          default:  // kQ2_3
            part_ok = p.brand_id() == 2239;
            supp_ok = s.region == kRegionEurope;
            break;
        }
        if (!part_ok || !supp_ok) continue;
        const DateRow& d = DateOf(lo.orderdate);
        out.groups[{d.year, p.brand_id(), 0}] += lo.revenue;
      }
      return out;
    }

    // --- Flight 3: customer x supplier x date, group by (geo, geo, year) ---
    case QueryId::kQ3_1:
    case QueryId::kQ3_2:
    case QueryId::kQ3_3:
    case QueryId::kQ3_4: {
      for (const LineorderRow& lo : db_->lineorder) {
        const CustomerRow& c = CustomerOf(lo.custkey);
        const SupplierRow& s = SupplierOf(lo.suppkey);
        const DateRow& d = DateOf(lo.orderdate);
        int32_t c_city = CityId(c.nation, c.city);
        int32_t s_city = CityId(s.nation, s.city);
        switch (query) {
          case QueryId::kQ3_1:
            if (c.region != kRegionAsia || s.region != kRegionAsia ||
                d.year < 1992 || d.year > 1997) {
              continue;
            }
            out.groups[{c.nation, s.nation, d.year}] += lo.revenue;
            break;
          case QueryId::kQ3_2:
            if (c.nation != kUnitedStates || s.nation != kUnitedStates ||
                d.year < 1992 || d.year > 1997) {
              continue;
            }
            out.groups[{c_city, s_city, d.year}] += lo.revenue;
            break;
          case QueryId::kQ3_3: {
            bool c_ok = c_city == CityId(kUnitedKingdom, 1) ||
                        c_city == CityId(kUnitedKingdom, 5);
            bool s_ok = s_city == CityId(kUnitedKingdom, 1) ||
                        s_city == CityId(kUnitedKingdom, 5);
            if (!c_ok || !s_ok || d.year < 1992 || d.year > 1997) continue;
            out.groups[{c_city, s_city, d.year}] += lo.revenue;
            break;
          }
          default: {  // kQ3_4
            bool c_ok = c_city == CityId(kUnitedKingdom, 1) ||
                        c_city == CityId(kUnitedKingdom, 5);
            bool s_ok = s_city == CityId(kUnitedKingdom, 1) ||
                        s_city == CityId(kUnitedKingdom, 5);
            if (!c_ok || !s_ok || d.yearmonthnum != 199712) continue;
            out.groups[{c_city, s_city, d.year}] += lo.revenue;
            break;
          }
        }
      }
      return out;
    }

    // --- Flight 4: all four dimensions, profit -----------------------------
    case QueryId::kQ4_1:
    case QueryId::kQ4_2:
    case QueryId::kQ4_3: {
      for (const LineorderRow& lo : db_->lineorder) {
        const CustomerRow& c = CustomerOf(lo.custkey);
        const SupplierRow& s = SupplierOf(lo.suppkey);
        const PartRow& p = PartOf(lo.partkey);
        const DateRow& d = DateOf(lo.orderdate);
        int64_t profit =
            static_cast<int64_t>(lo.revenue) - lo.supplycost;
        switch (query) {
          case QueryId::kQ4_1:
            if (c.region != kRegionAmerica || s.region != kRegionAmerica ||
                (p.mfgr != 1 && p.mfgr != 2)) {
              continue;
            }
            out.groups[{d.year, c.nation, 0}] += profit;
            break;
          case QueryId::kQ4_2:
            if (c.region != kRegionAmerica || s.region != kRegionAmerica ||
                (p.mfgr != 1 && p.mfgr != 2) ||
                (d.year != 1997 && d.year != 1998)) {
              continue;
            }
            out.groups[{d.year, s.nation, p.category_id()}] += profit;
            break;
          default:  // kQ4_3
            if (s.nation != kUnitedStates || p.category_id() != 14 ||
                (d.year != 1997 && d.year != 1998)) {
              continue;
            }
            out.groups[{d.year, CityId(s.nation, s.city), p.brand_id()}] +=
                profit;
            break;
        }
      }
      return out;
    }
  }
  return out;
}

}  // namespace pmemolap::ssb
