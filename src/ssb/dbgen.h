// Deterministic SSB data generator.
//
// Table cardinalities follow the SSB specification:
//   lineorder: 6,000,000 x sf       date: 2,556 (7 years, 1992-1998)
//   customer:     30,000 x sf       supplier: 2,000 x sf
//   part: 200,000 x (1 + floor(log2(sf))) for sf >= 1, scaled down for
//   fractional sf used in tests.
//
// All values derive from a seeded Rng, so the same (sf, seed) always
// produces byte-identical tables on every platform.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ssb/schema.h"

namespace pmemolap::ssb {

struct DbgenConfig {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Zipf exponent for the fact table's foreign keys (0 = uniform, the
  /// SSB default). Skewed keys concentrate join traffic on hot dimension
  /// tuples — the partitioning challenge §6.2 flags ("e.g., due to skewed
  /// data").
  double key_skew = 0.0;
};

/// A fully generated SSB database in host memory.
struct Database {
  std::vector<DateRow> date;
  std::vector<CustomerRow> customer;
  std::vector<SupplierRow> supplier;
  std::vector<PartRow> part;
  std::vector<LineorderRow> lineorder;

  uint64_t FactBytes() const {
    return lineorder.size() * sizeof(LineorderRow);
  }
  uint64_t DimensionBytes() const;
};

/// Cardinalities for a scale factor (exposed for capacity planning and
/// paper-scale projections without generating the data).
struct Cardinalities {
  uint64_t lineorder = 0;
  uint64_t customer = 0;
  uint64_t supplier = 0;
  uint64_t part = 0;
  uint64_t date = 0;
};
Cardinalities CardinalitiesFor(double scale_factor);

/// Generates the database. Fails for non-positive scale factors.
Result<Database> Generate(const DbgenConfig& config);

}  // namespace pmemolap::ssb
