// CSV import/export for the SSB tables — the data-import path the paper's
// write-side benchmarks motivate ("an important feature of data warehouses
// is an efficient data import", §4).
//
// The format is the classic dbgen '|'-separated layout with one line per
// tuple, numeric attribute encodings matching schema.h. Export and import
// round-trip exactly; the importer validates field counts and numeric
// ranges and reports the offending line on failure.
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "ssb/dbgen.h"

namespace pmemolap::ssb {

/// Writes one table as CSV ('|' separated, no header).
void WriteCsv(const std::vector<DateRow>& rows, std::ostream& out);
void WriteCsv(const std::vector<CustomerRow>& rows, std::ostream& out);
void WriteCsv(const std::vector<SupplierRow>& rows, std::ostream& out);
void WriteCsv(const std::vector<PartRow>& rows, std::ostream& out);
void WriteCsv(const std::vector<LineorderRow>& rows, std::ostream& out);

/// Parses one table from CSV. Fails with InvalidArgument naming the line
/// on malformed input.
Result<std::vector<DateRow>> ReadDateCsv(std::istream& in);
Result<std::vector<CustomerRow>> ReadCustomerCsv(std::istream& in);
Result<std::vector<SupplierRow>> ReadSupplierCsv(std::istream& in);
Result<std::vector<PartRow>> ReadPartCsv(std::istream& in);
Result<std::vector<LineorderRow>> ReadLineorderCsv(std::istream& in);

/// Dumps a whole database into `directory` as <table>.tbl files.
Status ExportDatabase(const Database& db, const std::string& directory);

/// Loads a whole database from `directory`.
Result<Database> ImportDatabase(const std::string& directory);

}  // namespace pmemolap::ssb
