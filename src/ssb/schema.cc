#include "ssb/schema.h"

namespace pmemolap::ssb {

namespace {

const char* const kRegionNames[kNumRegions] = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

const char* const kNationNames[kNumNations] = {
    // AFRICA
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
    // AMERICA
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",
    // ASIA
    "CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM",
    // EUROPE
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",
    // MIDDLE EAST
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"};

}  // namespace

std::string RegionName(int region) {
  if (region < 0 || region >= kNumRegions) return "UNKNOWN";
  return kRegionNames[region];
}

std::string NationName(int nation) {
  if (nation < 0 || nation >= kNumNations) return "UNKNOWN";
  return kNationNames[nation];
}

std::string CityName(int city_id) {
  int nation = city_id / kCitiesPerNation;
  int digit = city_id % kCitiesPerNation;
  if (nation < 0 || nation >= kNumNations) return "UNKNOWN";
  // SSB cities: nation name padded/truncated to 9 chars + one digit.
  std::string name = kNationNames[nation];
  name.resize(9, ' ');
  name += static_cast<char>('0' + digit);
  return name;
}

std::string MfgrName(int mfgr) { return "MFGR#" + std::to_string(mfgr); }

std::string CategoryName(int mfgr, int category) {
  return "MFGR#" + std::to_string(mfgr) + std::to_string(category);
}

std::string BrandName(int mfgr, int category, int brand) {
  return "MFGR#" + std::to_string(mfgr) + std::to_string(category) +
         std::to_string(brand);
}

}  // namespace pmemolap::ssb
