#include "ssb/csv.h"

#include <charconv>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

namespace pmemolap::ssb {

namespace {

/// Splits a '|'-separated line into fields (no quoting in dbgen format).
std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t begin = 0;
  while (begin <= line.size()) {
    size_t end = line.find('|', begin);
    if (end == std::string_view::npos) {
      fields.push_back(line.substr(begin));
      break;
    }
    fields.push_back(line.substr(begin, end - begin));
    begin = end + 1;
  }
  return fields;
}

/// Parses one integer field; false on garbage or overflow.
template <typename T>
bool ParseField(std::string_view field, T* out) {
  int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) return false;
  if (value < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
      value > static_cast<int64_t>(std::numeric_limits<T>::max())) {
    return false;
  }
  *out = static_cast<T>(value);
  return true;
}

Status LineError(const char* table, size_t line_number) {
  return Status::InvalidArgument(std::string("malformed ") + table +
                                 " CSV at line " +
                                 std::to_string(line_number));
}

}  // namespace

void WriteCsv(const std::vector<DateRow>& rows, std::ostream& out) {
  for (const DateRow& r : rows) {
    out << r.datekey << '|' << r.yearmonthnum << '|' << r.year << '|'
        << static_cast<int>(r.monthnuminyear) << '|'
        << static_cast<int>(r.daynuminweek) << '|'
        << static_cast<int>(r.weeknuminyear) << '\n';
  }
}

void WriteCsv(const std::vector<CustomerRow>& rows, std::ostream& out) {
  for (const CustomerRow& r : rows) {
    out << r.custkey << '|' << static_cast<int>(r.nation) << '|'
        << static_cast<int>(r.region) << '|' << static_cast<int>(r.city)
        << '|' << static_cast<int>(r.mktsegment) << '\n';
  }
}

void WriteCsv(const std::vector<SupplierRow>& rows, std::ostream& out) {
  for (const SupplierRow& r : rows) {
    out << r.suppkey << '|' << static_cast<int>(r.nation) << '|'
        << static_cast<int>(r.region) << '|' << static_cast<int>(r.city)
        << '\n';
  }
}

void WriteCsv(const std::vector<PartRow>& rows, std::ostream& out) {
  for (const PartRow& r : rows) {
    out << r.partkey << '|' << static_cast<int>(r.mfgr) << '|'
        << static_cast<int>(r.category) << '|' << static_cast<int>(r.brand)
        << '|' << static_cast<int>(r.color) << '|'
        << static_cast<int>(r.size) << '\n';
  }
}

void WriteCsv(const std::vector<LineorderRow>& rows, std::ostream& out) {
  for (const LineorderRow& r : rows) {
    out << r.orderkey << '|' << r.linenumber << '|' << r.custkey << '|'
        << r.partkey << '|' << r.suppkey << '|' << r.orderdate << '|'
        << r.commitdate << '|' << r.quantity << '|' << r.discount << '|'
        << r.extendedprice << '|' << r.ordtotalprice << '|' << r.revenue
        << '|' << r.supplycost << '|' << r.tax << '|'
        << static_cast<int>(r.shipmode) << '|'
        << static_cast<int>(r.priority) << '\n';
  }
}

Result<std::vector<DateRow>> ReadDateCsv(std::istream& in) {
  std::vector<DateRow> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = SplitFields(line);
    DateRow r;
    if (fields.size() != 6 || !ParseField(fields[0], &r.datekey) ||
        !ParseField(fields[1], &r.yearmonthnum) ||
        !ParseField(fields[2], &r.year) ||
        !ParseField(fields[3], &r.monthnuminyear) ||
        !ParseField(fields[4], &r.daynuminweek) ||
        !ParseField(fields[5], &r.weeknuminyear)) {
      return LineError("date", line_number);
    }
    rows.push_back(r);
  }
  return rows;
}

Result<std::vector<CustomerRow>> ReadCustomerCsv(std::istream& in) {
  std::vector<CustomerRow> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = SplitFields(line);
    CustomerRow r;
    if (fields.size() != 5 || !ParseField(fields[0], &r.custkey) ||
        !ParseField(fields[1], &r.nation) ||
        !ParseField(fields[2], &r.region) ||
        !ParseField(fields[3], &r.city) ||
        !ParseField(fields[4], &r.mktsegment)) {
      return LineError("customer", line_number);
    }
    rows.push_back(r);
  }
  return rows;
}

Result<std::vector<SupplierRow>> ReadSupplierCsv(std::istream& in) {
  std::vector<SupplierRow> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = SplitFields(line);
    SupplierRow r;
    if (fields.size() != 4 || !ParseField(fields[0], &r.suppkey) ||
        !ParseField(fields[1], &r.nation) ||
        !ParseField(fields[2], &r.region) ||
        !ParseField(fields[3], &r.city)) {
      return LineError("supplier", line_number);
    }
    rows.push_back(r);
  }
  return rows;
}

Result<std::vector<PartRow>> ReadPartCsv(std::istream& in) {
  std::vector<PartRow> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = SplitFields(line);
    PartRow r;
    if (fields.size() != 6 || !ParseField(fields[0], &r.partkey) ||
        !ParseField(fields[1], &r.mfgr) ||
        !ParseField(fields[2], &r.category) ||
        !ParseField(fields[3], &r.brand) ||
        !ParseField(fields[4], &r.color) ||
        !ParseField(fields[5], &r.size)) {
      return LineError("part", line_number);
    }
    rows.push_back(r);
  }
  return rows;
}

Result<std::vector<LineorderRow>> ReadLineorderCsv(std::istream& in) {
  std::vector<LineorderRow> rows;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = SplitFields(line);
    LineorderRow r;
    if (fields.size() != 16 || !ParseField(fields[0], &r.orderkey) ||
        !ParseField(fields[1], &r.linenumber) ||
        !ParseField(fields[2], &r.custkey) ||
        !ParseField(fields[3], &r.partkey) ||
        !ParseField(fields[4], &r.suppkey) ||
        !ParseField(fields[5], &r.orderdate) ||
        !ParseField(fields[6], &r.commitdate) ||
        !ParseField(fields[7], &r.quantity) ||
        !ParseField(fields[8], &r.discount) ||
        !ParseField(fields[9], &r.extendedprice) ||
        !ParseField(fields[10], &r.ordtotalprice) ||
        !ParseField(fields[11], &r.revenue) ||
        !ParseField(fields[12], &r.supplycost) ||
        !ParseField(fields[13], &r.tax) ||
        !ParseField(fields[14], &r.shipmode) ||
        !ParseField(fields[15], &r.priority)) {
      return LineError("lineorder", line_number);
    }
    rows.push_back(r);
  }
  return rows;
}

namespace {

template <typename Row>
Status ExportTable(const std::vector<Row>& rows,
                   const std::string& directory, const char* name) {
  std::ofstream out(directory + "/" + name + ".tbl");
  if (!out.is_open()) {
    return Status::Internal(std::string("cannot open ") + name +
                            ".tbl for writing in " + directory);
  }
  WriteCsv(rows, out);
  return out.good() ? Status::OK()
                    : Status::Internal(std::string("write failed for ") +
                                       name);
}

}  // namespace

Status ExportDatabase(const Database& db, const std::string& directory) {
  PMEMOLAP_RETURN_NOT_OK(ExportTable(db.date, directory, "date"));
  PMEMOLAP_RETURN_NOT_OK(ExportTable(db.customer, directory, "customer"));
  PMEMOLAP_RETURN_NOT_OK(ExportTable(db.supplier, directory, "supplier"));
  PMEMOLAP_RETURN_NOT_OK(ExportTable(db.part, directory, "part"));
  PMEMOLAP_RETURN_NOT_OK(ExportTable(db.lineorder, directory, "lineorder"));
  return Status::OK();
}

Result<Database> ImportDatabase(const std::string& directory) {
  Database db;
  auto open = [&](const char* name,
                  std::ifstream* stream) -> Status {
    stream->open(directory + "/" + name + ".tbl");
    if (!stream->is_open()) {
      return Status::NotFound(std::string(name) + ".tbl not found in " +
                              directory);
    }
    return Status::OK();
  };
  std::ifstream in;
  PMEMOLAP_RETURN_NOT_OK(open("date", &in));
  PMEMOLAP_ASSIGN_OR_RETURN(db.date, ReadDateCsv(in));
  in.close();

  std::ifstream cust;
  PMEMOLAP_RETURN_NOT_OK(open("customer", &cust));
  PMEMOLAP_ASSIGN_OR_RETURN(db.customer, ReadCustomerCsv(cust));

  std::ifstream supp;
  PMEMOLAP_RETURN_NOT_OK(open("supplier", &supp));
  PMEMOLAP_ASSIGN_OR_RETURN(db.supplier, ReadSupplierCsv(supp));

  std::ifstream part;
  PMEMOLAP_RETURN_NOT_OK(open("part", &part));
  PMEMOLAP_ASSIGN_OR_RETURN(db.part, ReadPartCsv(part));

  std::ifstream lo;
  PMEMOLAP_RETURN_NOT_OK(open("lineorder", &lo));
  PMEMOLAP_ASSIGN_OR_RETURN(db.lineorder, ReadLineorderCsv(lo));
  return db;
}

}  // namespace pmemolap::ssb
