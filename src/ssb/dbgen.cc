#include "ssb/dbgen.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/zipf.h"

namespace pmemolap::ssb {

namespace {

constexpr int kStartYear = 1992;
constexpr int kNumYears = 7;  // 1992..1998

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int DaysInMonth(int year, int month) {
  static const int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

/// Generates the fixed 7-year date dimension with real calendar structure.
std::vector<DateRow> GenerateDates() {
  std::vector<DateRow> dates;
  // 1992-01-01 was a Wednesday => daynuminweek 1..7 with Monday = 1 gives 3.
  int day_of_week = 3;
  for (int year = kStartYear; year < kStartYear + kNumYears; ++year) {
    int day_of_year = 0;
    for (int month = 1; month <= 12; ++month) {
      for (int day = 1; day <= DaysInMonth(year, month); ++day) {
        ++day_of_year;
        DateRow row;
        row.datekey = year * 10000 + month * 100 + day;
        row.yearmonthnum = year * 100 + month;
        row.year = static_cast<int16_t>(year);
        row.monthnuminyear = static_cast<int8_t>(month);
        row.daynuminweek = static_cast<int8_t>(day_of_week);
        row.weeknuminyear = static_cast<int8_t>((day_of_year - 1) / 7 + 1);
        dates.push_back(row);
        day_of_week = day_of_week % 7 + 1;
      }
    }
  }
  return dates;
}

}  // namespace

uint64_t Database::DimensionBytes() const {
  return date.size() * sizeof(DateRow) +
         customer.size() * sizeof(CustomerRow) +
         supplier.size() * sizeof(SupplierRow) +
         part.size() * sizeof(PartRow);
}

Cardinalities CardinalitiesFor(double scale_factor) {
  Cardinalities cards;
  // 7 calendar years 1992-1998 with the leap days of 1992 and 1996; the
  // SSB spec quotes "~2556" days.
  cards.date = 2557;
  cards.lineorder = static_cast<uint64_t>(
      std::llround(6'000'000.0 * scale_factor));
  cards.customer = std::max<uint64_t>(
      10, static_cast<uint64_t>(std::llround(30'000.0 * scale_factor)));
  cards.supplier = std::max<uint64_t>(
      5, static_cast<uint64_t>(std::llround(2'000.0 * scale_factor)));
  if (scale_factor >= 1.0) {
    cards.part = static_cast<uint64_t>(
        200'000.0 * (1.0 + std::floor(std::log2(scale_factor))));
  } else {
    cards.part = std::max<uint64_t>(
        50, static_cast<uint64_t>(std::llround(200'000.0 * scale_factor)));
  }
  return cards;
}

Result<Database> Generate(const DbgenConfig& config) {
  if (config.scale_factor <= 0.0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  Cardinalities cards = CardinalitiesFor(config.scale_factor);
  Rng root(config.seed);

  Database db;
  db.date = GenerateDates();
  if (db.date.size() != cards.date) {
    return Status::Internal("date dimension cardinality mismatch");
  }

  Rng cust_rng = root.Fork(1);
  db.customer.reserve(cards.customer);
  for (uint64_t i = 0; i < cards.customer; ++i) {
    CustomerRow row;
    row.custkey = static_cast<int32_t>(i + 1);
    row.nation = static_cast<uint8_t>(cust_rng.NextBelow(kNumNations));
    row.region = static_cast<uint8_t>(RegionOfNation(row.nation));
    row.city = static_cast<uint8_t>(cust_rng.NextBelow(kCitiesPerNation));
    row.mktsegment = static_cast<uint8_t>(cust_rng.NextBelow(5));
    db.customer.push_back(row);
  }

  Rng supp_rng = root.Fork(2);
  db.supplier.reserve(cards.supplier);
  for (uint64_t i = 0; i < cards.supplier; ++i) {
    SupplierRow row;
    row.suppkey = static_cast<int32_t>(i + 1);
    row.nation = static_cast<uint8_t>(supp_rng.NextBelow(kNumNations));
    row.region = static_cast<uint8_t>(RegionOfNation(row.nation));
    row.city = static_cast<uint8_t>(supp_rng.NextBelow(kCitiesPerNation));
    db.supplier.push_back(row);
  }

  Rng part_rng = root.Fork(3);
  db.part.reserve(cards.part);
  for (uint64_t i = 0; i < cards.part; ++i) {
    PartRow row;
    row.partkey = static_cast<int32_t>(i + 1);
    row.mfgr = static_cast<uint8_t>(1 + part_rng.NextBelow(kNumMfgrs));
    row.category =
        static_cast<uint8_t>(1 + part_rng.NextBelow(kCategoriesPerMfgr));
    row.brand =
        static_cast<uint8_t>(1 + part_rng.NextBelow(kBrandsPerCategory));
    row.color = static_cast<uint8_t>(part_rng.NextBelow(92));
    row.size = static_cast<uint8_t>(1 + part_rng.NextBelow(50));
    db.part.push_back(row);
  }

  Rng lo_rng = root.Fork(4);
  // Skewed foreign keys (key_skew > 0): hot customers/suppliers/parts
  // receive Zipf-distributed shares of the fact tuples. The sampled rank
  // is scrambled with a fixed multiplicative permutation so hot keys
  // spread over the key space instead of clustering at 1..k.
  std::unique_ptr<ZipfSampler> cust_zipf;
  std::unique_ptr<ZipfSampler> supp_zipf;
  std::unique_ptr<ZipfSampler> part_zipf;
  if (config.key_skew > 0.0) {
    cust_zipf = std::make_unique<ZipfSampler>(cards.customer,
                                              config.key_skew);
    supp_zipf = std::make_unique<ZipfSampler>(cards.supplier,
                                              config.key_skew);
    part_zipf = std::make_unique<ZipfSampler>(cards.part, config.key_skew);
  }
  auto pick_key = [&](const std::unique_ptr<ZipfSampler>& zipf,
                      uint64_t cardinality) -> int32_t {
    if (zipf == nullptr) {
      return static_cast<int32_t>(1 + lo_rng.NextBelow(cardinality));
    }
    uint64_t rank = zipf->Sample(lo_rng);
    // Fixed odd-multiplier permutation over [0, cardinality).
    uint64_t scrambled = (rank * 2654435761ULL + 7) % cardinality;
    return static_cast<int32_t>(1 + scrambled);
  };
  db.lineorder.reserve(cards.lineorder);
  uint64_t order = 0;
  int lines_left = 0;
  int linenumber = 0;
  int32_t ordtotalprice = 0;
  for (uint64_t i = 0; i < cards.lineorder; ++i) {
    if (lines_left == 0) {
      ++order;
      lines_left = static_cast<int>(1 + lo_rng.NextBelow(7));
      linenumber = 0;
      ordtotalprice = 0;
    }
    --lines_left;
    ++linenumber;

    LineorderRow row;
    row.orderkey = static_cast<int64_t>(order);
    row.linenumber = linenumber;
    row.custkey = pick_key(cust_zipf, cards.customer);
    row.partkey = pick_key(part_zipf, cards.part);
    row.suppkey = pick_key(supp_zipf, cards.supplier);
    const DateRow& odate =
        db.date[lo_rng.NextBelow(db.date.size())];
    row.orderdate = odate.datekey;
    row.commitdate = db.date[lo_rng.NextBelow(db.date.size())].datekey;
    row.quantity = static_cast<int32_t>(1 + lo_rng.NextBelow(50));
    row.discount = static_cast<int32_t>(lo_rng.NextBelow(11));
    // Unit price 90..110k cents-ish, as in SSB's derived pricing.
    int32_t unit_price = static_cast<int32_t>(90 + lo_rng.NextBelow(110'000));
    row.extendedprice = row.quantity * (unit_price / 10 + 100);
    row.revenue = row.extendedprice * (100 - row.discount) / 100;
    row.supplycost = row.extendedprice * 6 / 10 / row.quantity;
    row.tax = static_cast<int32_t>(lo_rng.NextBelow(9));
    ordtotalprice += row.extendedprice;
    row.ordtotalprice = ordtotalprice;
    row.shipmode = static_cast<uint8_t>(lo_rng.NextBelow(7));
    row.priority = static_cast<uint8_t>(lo_rng.NextBelow(5));
    db.lineorder.push_back(row);
  }
  return db;
}

}  // namespace pmemolap::ssb
