#include "exec/memory_mode.h"

#include <algorithm>

namespace pmemolap {

double MemoryModeModel::HitRatio(Pattern pattern,
                                 uint64_t region_bytes) const {
  uint64_t cache = model_->config().topology.dram_capacity_per_socket();
  if (region_bytes == 0 || region_bytes <= cache) return 1.0;
  if (pattern == Pattern::kRandom) {
    // Uniform random over the region: the resident fraction hits.
    return static_cast<double>(cache) / static_cast<double>(region_bytes);
  }
  // A sequential stream over more than the cache evicts itself before any
  // reuse; only prefetch overlap survives.
  return spec_.streaming_hit_floor;
}

Result<GigabytesPerSecond> MemoryModeModel::Bandwidth(
    OpType op, Pattern pattern, uint64_t access_size, int threads,
    const RunOptions& options) const {
  PMEMOLAP_ASSIGN_OR_RETURN(
      GigabytesPerSecond pmem_bw,
      runner_.Bandwidth(op, pattern, Media::kPmem, access_size, threads,
                        options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      GigabytesPerSecond dram_bw,
      runner_.Bandwidth(op, pattern, Media::kDram, access_size, threads,
                        options));

  double hits = HitRatio(pattern, options.region_bytes);
  double hit_rate = dram_bw * spec_.dram_hit_efficiency;
  double miss_rate = pmem_bw * spec_.pmem_miss_efficiency;
  // Time-weighted blend (harmonic): each access is a hit or a miss.
  double blended =
      1.0 / (hits / hit_rate + (1.0 - hits) / miss_rate);
  return blended;
}

}  // namespace pmemolap
