// Memory Mode model (paper §2.1).
//
// In Memory Mode, PMEM becomes the visible main memory and DRAM turns into
// an inaccessible, direct-mapped "L4" cache in front of it. Applications
// need no changes, but:
//  - persistence is NOT guaranteed (dirty DRAM lines are lost on power
//    failure),
//  - performance depends on whether the working set fits the DRAM cache:
//    hits run near DRAM speed, misses pay a DRAM fill on top of the PMEM
//    access, and streaming scans larger than DRAM thrash the cache.
//
// The paper describes the mode but evaluates App Direct only; this model
// extends the characterization to the Memory Mode design point (cf.
// Shanbhag et al., DaMoN'20), blending the App Direct PMEM path and the
// DRAM path of the same MemSystemModel by a working-set hit ratio.
#pragma once

#include "common/status.h"
#include "core/runner.h"
#include "memsys/mem_system.h"

namespace pmemolap {

struct MemoryModeSpec {
  /// An L4 hit is slightly slower than native DRAM (tag checks in the iMC).
  double dram_hit_efficiency = 0.95;
  /// A miss pays the PMEM access plus the DRAM fill.
  double pmem_miss_efficiency = 0.80;
  /// Residual hit ratio of a sequential stream larger than the cache
  /// (streaming thrashes the direct-mapped L4).
  double streaming_hit_floor = 0.05;
};

/// Evaluates single-class workloads under Memory Mode by blending the
/// App Direct PMEM and DRAM evaluations of the backing model.
class MemoryModeModel {
 public:
  MemoryModeModel(const MemSystemModel* model,
                  const MemoryModeSpec& spec = MemoryModeSpec())
      : model_(model), runner_(model), spec_(spec) {}

  const MemoryModeSpec& spec() const { return spec_; }

  /// Expected DRAM-cache hit ratio for a working set of `region_bytes`
  /// accessed with `pattern` from one socket.
  double HitRatio(Pattern pattern, uint64_t region_bytes) const;

  /// Steady-state bandwidth of one homogeneous class under Memory Mode.
  Result<GigabytesPerSecond> Bandwidth(OpType op, Pattern pattern,
                                       uint64_t access_size, int threads,
                                       const RunOptions& options) const;

 private:
  const MemSystemModel* model_;
  WorkloadRunner runner_;
  MemoryModeSpec spec_;
};

}  // namespace pmemolap
