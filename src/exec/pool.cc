#include "exec/pool.h"

#include <algorithm>

namespace pmemolap {

WorkStealingPool::WorkStealingPool(int threads, int queues)
    : queues_(std::max(1, queues)) {
  int n = std::max(1, threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

WorkStealingPool::WorkStealingPool(const SystemTopology& topology,
                                   int threads)
    : WorkStealingPool(threads, topology.sockets()) {}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool WorkStealingPool::PopMorsel(int worker, Morsel* morsel, bool* steal) {
  const size_t num_queues = run_queues_.size();
  const size_t home = static_cast<size_t>(worker) % num_queues;
  if (!run_queues_[home].empty()) {
    *morsel = run_queues_[home].front();
    run_queues_[home].pop_front();
    *steal = false;
    return true;
  }
  // Steal from the fullest other queue, back-first: the victim's workers
  // keep consuming their sequential prefix undisturbed.
  size_t victim = num_queues;
  size_t victim_size = 0;
  for (size_t q = 0; q < num_queues; ++q) {
    if (q == home) continue;
    if (run_queues_[q].size() > victim_size) {
      victim_size = run_queues_[q].size();
      victim = q;
    }
  }
  if (victim == num_queues) return false;
  *morsel = run_queues_[victim].back();
  run_queues_[victim].pop_back();
  *steal = true;
  return true;
}

bool WorkStealingPool::Participates(int worker) const {
  if (worker >= active_workers_) return false;
  if (queue_caps_.empty()) return true;
  size_t num_queues =
      run_queues_.empty() ? static_cast<size_t>(queues_) : run_queues_.size();
  size_t home = static_cast<size_t>(worker) % num_queues;
  if (home >= queue_caps_.size()) return true;
  int cap = queue_caps_[home];
  if (cap <= 0) return true;
  int rank = static_cast<int>(static_cast<size_t>(worker) / num_queues);
  return rank < cap;
}

void WorkStealingPool::ApplyQueueCapsLocked(std::vector<int> caps) {
  queue_caps_ = std::move(caps);
  if (queue_caps_.empty()) return;
  for (int w = 0; w < threads(); ++w) {
    if (Participates(w)) return;
  }
  // The caps would exclude every worker and deadlock the run: ignore them
  // (degraded beats deadlocked, like the quarantine re-plan).
  queue_caps_.clear();
}

void WorkStealingPool::SetConcurrency(std::vector<int> workers_per_queue) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ApplyQueueCapsLocked(std::move(workers_per_queue));
    // Bump the generation so sleeping workers re-check their eligibility
    // and busy workers re-sync between morsels; an in-flight run's queues
    // and pending count are untouched, so the run completes normally.
    ++generation_;
  }
  work_cv_.notify_all();
}

void WorkStealingPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = generation_;
    if (!Participates(worker)) continue;
    Morsel morsel;
    bool steal = false;
    // The generation check keeps a worker that raced past the end of one
    // run from popping the next run's morsels under a stale worker cap.
    while (generation_ == seen_generation && !stop_ &&
           PopMorsel(worker, &morsel, &steal)) {
      if (cancelled_) {
        // A prior morsel failed or the run was cancelled: drain without
        // executing.
        ++stats_.dropped;
        if (--pending_ == 0) done_cv_.notify_all();
        continue;
      }
      if (cancel_ != nullptr) {
        // Between-morsel cancellation point: evaluated outside the lock
        // (the hook may read clocks or counters), never mid-task. The
        // popped morsel is charged as dropped, and cancelled_ makes every
        // later pop — including racing stealers — take the drain branch.
        lock.unlock();
        Status cancel_status = (*cancel_)();
        lock.lock();
        if (!cancel_status.ok() || cancelled_) {
          if (run_status_.ok() && !cancel_status.ok()) {
            run_status_ = std::move(cancel_status);
          }
          cancelled_ = true;
          ++stats_.dropped;
          if (--pending_ == 0) done_cv_.notify_all();
          continue;
        }
      }
      lock.unlock();
      Status status = (*task_)(morsel, worker);
      lock.lock();
      if (status.ok()) {
        ++stats_.executed;
        if (steal) ++stats_.stolen;
      } else {
        if (run_status_.ok()) run_status_ = std::move(status);
        cancelled_ = true;
      }
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

Status WorkStealingPool::Run(const MorselPlan& plan, const MorselTask& task,
                             int max_workers) {
  RunControl control;
  control.max_workers = max_workers;
  return RunWithControl(plan, task, control);
}

Status WorkStealingPool::RunWithControl(const MorselPlan& plan,
                                        const MorselTask& task,
                                        const RunControl& control) {
  // Depth signal for admission control: counted from submission (a run
  // queued on run_mutex_ is load the executor has already accepted).
  struct InflightGuard {
    std::atomic<int>& counter;
    explicit InflightGuard(std::atomic<int>& c) : counter(c) {
      counter.fetch_add(1, std::memory_order_relaxed);
    }
    ~InflightGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  } inflight(inflight_runs_);

  std::lock_guard<std::mutex> run_lock(run_mutex_);
  std::unique_lock<std::mutex> lock(mutex_);
  run_queues_.clear();
  run_queues_.resize(std::max<size_t>(1, plan.queues.size()));
  uint64_t total = 0;
  for (size_t s = 0; s < plan.queues.size(); ++s) {
    run_queues_[s].assign(plan.queues[s].begin(), plan.queues[s].end());
    total += run_queues_[s].size();
  }
  if (total == 0) {
    if (control.stats != nullptr) *control.stats = Stats{};
    return Status::OK();
  }
  task_ = &task;
  cancel_ = control.cancel ? &control.cancel : nullptr;
  pending_ = total;
  cancelled_ = false;
  run_status_ = Status::OK();
  stats_ = Stats{};
  active_workers_ = control.max_workers <= 0
                        ? threads()
                        : std::min(control.max_workers, threads());
  ApplyQueueCapsLocked(control.workers_per_queue);
  ++generation_;
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  task_ = nullptr;
  cancel_ = nullptr;
  if (control.stats != nullptr) *control.stats = stats_;
  return run_status_;
}

WorkStealingPool::Stats WorkStealingPool::last_run_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace pmemolap
