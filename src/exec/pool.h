// WorkStealingPool — a persistent, NUMA-topology-aware worker pool with
// per-socket run queues and morsel-granular work stealing.
//
// The paper's handcrafted SSB engine (§6.2) wins by keeping many pinned
// workers busy on near data; a static split of the fact table achieves
// that only when every worker makes identical progress. This pool keeps
// the placement property — each worker drains its home socket's queue
// first, front-to-back, preserving the sequential near scan — and adds
// elasticity: a worker whose home queue is empty steals from the fullest
// other queue (back-first, so the victim keeps its sequential prefix).
//
// Workers are spawned once and reused across queries ("persistent"): a
// query submits a MorselPlan through Run(), which blocks until every
// morsel has executed and returns the first non-OK Status any morsel task
// produced (remaining morsels of a failed run are drained unexecuted).
// Result determinism is the caller's contract: tasks accumulate into
// per-worker (or per-socket) state whose merge is commutative, so any
// steal schedule produces bit-identical results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/morsel.h"
#include "topo/topology.h"

namespace pmemolap {

class WorkStealingPool {
 public:
  /// A morsel task: executes one morsel as worker `worker` (0-based,
  /// < threads()). Must be safe to call concurrently from pool threads.
  using MorselTask = std::function<Status(const Morsel& morsel, int worker)>;

  /// Spawns `threads` persistent workers serving `queues` run queues
  /// (both clamped to >= 1). Worker w's home queue is w % queues.
  WorkStealingPool(int threads, int queues);
  /// Topology-keyed pool: one run queue per socket of `topology`.
  WorkStealingPool(const SystemTopology& topology, int threads);
  /// Joins all workers.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Dispatch evidence of one Run().
  struct Stats {
    uint64_t executed = 0;  ///< morsels that ran to completion
    uint64_t stolen = 0;    ///< executed morsels taken from a non-home queue
    uint64_t dropped = 0;   ///< morsels drained unexecuted (failure/cancel)
  };

  /// Per-run controls for RunWithControl.
  struct RunControl {
    /// At most this many workers participate (0 = all).
    int max_workers = 0;
    /// Per-queue cap on participating workers whose HOME queue is the
    /// index (the bandwidth governor's per-socket concurrency actuator).
    /// Worker w's home queue is w % queues and its rank is w / queues;
    /// w participates iff rank < cap. A cap of 0 or a missing entry
    /// leaves that queue's workers uncapped; an empty vector caps
    /// nothing. Caps that would exclude EVERY worker are ignored
    /// (degraded beats deadlocked). Adjustable mid-run via
    /// SetConcurrency.
    std::vector<int> workers_per_queue;
    /// Cooperative cancellation: checked between morsels (never while a
    /// task is executing). The first non-OK Status cancels the run — the
    /// remaining morsels drain unexecuted and the Status is returned.
    /// Must be cheap and safe to call concurrently from pool threads.
    std::function<Status()> cancel;
    /// Optional out-param: filled with this run's dispatch stats before
    /// RunWithControl returns. Unlike last_run_stats(), immune to a
    /// concurrent run overwriting the pool-wide snapshot.
    Stats* stats = nullptr;
  };

  /// Executes every morsel of `plan` on the pool and blocks until done.
  /// At most `max_workers` workers participate (0 = all). Returns the
  /// first failure Status; on failure the remaining morsels are dropped
  /// (drained without executing). Thread-safe: concurrent Run() calls
  /// serialize. Production call sites should prefer RunWithControl with a
  /// deadline-armed cancel hook (enforced by pmemolap_lint).
  Status Run(const MorselPlan& plan, const MorselTask& task,
             int max_workers = 0);

  /// Run() with per-run controls: a worker cap plus a between-morsel
  /// cancel hook (deadlines, retry budgets, external aborts).
  Status RunWithControl(const MorselPlan& plan, const MorselTask& task,
                        const RunControl& control);

  /// Replaces the per-queue worker caps (see RunControl::workers_per_queue)
  /// and wakes the pool so the change takes effect between morsels of an
  /// in-flight run: sleeping workers whose cap rose start popping, busy
  /// workers whose cap fell go idle after their current morsel. The caps
  /// persist until the next RunWithControl installs that run's caps.
  /// Thread-safe; callable concurrently with a run.
  void SetConcurrency(std::vector<int> workers_per_queue);

  int threads() const { return static_cast<int>(workers_.size()); }
  int queues() const { return queues_; }

  /// Snapshot of the most recent run's dispatch stats. Racy when callers
  /// overlap Run() submissions — prefer RunControl::stats for a per-run
  /// snapshot.
  Stats last_run_stats() const;

  /// Run() calls submitted and not yet finished — the queue-depth signal
  /// the admission layer reads as backpressure. Includes the run a worker
  /// is currently draining, so any value > 0 means the executor is busy
  /// and values > 1 mean submissions are queueing on the run mutex.
  int inflight_runs() const {
    return inflight_runs_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(int worker);
  /// Pops the next morsel for `worker` (home queue front first, else the
  /// fullest other queue's back). Caller holds mutex_. Returns false when
  /// every queue is empty.
  bool PopMorsel(int worker, Morsel* morsel, bool* steal);
  /// True when `worker` may pop under the active cap set. Caller holds
  /// mutex_.
  bool Participates(int worker) const;
  /// Installs `caps` as queue_caps_, clearing them when they would leave
  /// the run without any eligible worker. Caller holds mutex_.
  void ApplyQueueCapsLocked(std::vector<int> caps);

  const int queues_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;

  // --- State of the in-flight run (guarded by mutex_) ---
  std::mutex run_mutex_;  ///< serializes Run() callers
  std::atomic<int> inflight_runs_{0};
  uint64_t generation_ = 0;
  std::vector<std::deque<Morsel>> run_queues_;
  const MorselTask* task_ = nullptr;
  const std::function<Status()>* cancel_ = nullptr;
  int active_workers_ = 0;
  /// Per-home-queue worker caps (empty = uncapped); see RunControl.
  std::vector<int> queue_caps_;
  uint64_t pending_ = 0;  ///< morsels not yet fully executed
  bool cancelled_ = false;
  Status run_status_;
  Stats stats_;
};

}  // namespace pmemolap
