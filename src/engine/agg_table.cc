#include "engine/agg_table.h"

#include <utility>

namespace pmemolap {

void AggTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (!slot.used) continue;
    size_t at = Hash(slot.key) & mask_;
    while (slots_[at].used) at = (at + 1) & mask_;
    slots_[at] = slot;
  }
}

}  // namespace pmemolap
