#include "engine/plans.h"

#include <algorithm>
#include <thread>

#include "exec/pool.h"
#include "qos/cancel_token.h"

namespace pmemolap {

namespace {

using ssb::QueryId;

constexpr int kUnitedStates = 9;
constexpr int kUnitedKingdom = 19;
constexpr int kRegionAmerica = 1;
constexpr int kRegionAsia = 2;
constexpr int kRegionEurope = 3;

int64_t DiscountedRevenue(const Row& row) {
  return static_cast<int64_t>(row.lineorder->extendedprice) *
         row.lineorder->discount;
}

int64_t Revenue(const Row& row) { return row.lineorder->revenue; }

int64_t Profit(const Row& row) {
  return static_cast<int64_t>(row.lineorder->revenue) -
         row.lineorder->supplycost;
}

bool IsUkCity(int32_t city) {
  return city == ssb::CityId(kUnitedKingdom, 1) ||
         city == ssb::CityId(kUnitedKingdom, 5);
}

}  // namespace

QuerySpec SsbQuerySpec(ssb::QueryId query) {
  QuerySpec spec;
  switch (query) {
    // --- Flight 1 -----------------------------------------------------------
    case QueryId::kQ1_1:
      spec.lineorder_filter = [](const ssb::LineorderRow& lo) {
        return lo.discount >= 1 && lo.discount <= 3 && lo.quantity < 25;
      };
      spec.joins = {{Dimension::kDate,
                     [](const Row& row) { return row.year == 1993; }}};
      spec.value = DiscountedRevenue;
      return spec;
    case QueryId::kQ1_2:
      spec.lineorder_filter = [](const ssb::LineorderRow& lo) {
        return lo.discount >= 4 && lo.discount <= 6 && lo.quantity >= 26 &&
               lo.quantity <= 35;
      };
      spec.joins = {{Dimension::kDate, [](const Row& row) {
                       return row.yearmonthnum == 199401;
                     }}};
      spec.value = DiscountedRevenue;
      return spec;
    case QueryId::kQ1_3:
      spec.lineorder_filter = [](const ssb::LineorderRow& lo) {
        return lo.discount >= 5 && lo.discount <= 7 && lo.quantity >= 26 &&
               lo.quantity <= 35;
      };
      spec.joins = {{Dimension::kDate, [](const Row& row) {
                       return row.weeknuminyear == 6 && row.year == 1994;
                     }}};
      spec.value = DiscountedRevenue;
      return spec;

    // --- Flight 2 -----------------------------------------------------------
    case QueryId::kQ2_1:
    case QueryId::kQ2_2:
    case QueryId::kQ2_3: {
      JoinOperator::Predicate part_filter;
      int supplier_region;
      if (query == QueryId::kQ2_1) {
        part_filter = [](const Row& row) { return row.p_category == 12; };
        supplier_region = kRegionAmerica;
      } else if (query == QueryId::kQ2_2) {
        part_filter = [](const Row& row) {
          return row.p_brand >= 2221 && row.p_brand <= 2228;
        };
        supplier_region = kRegionAsia;
      } else {
        part_filter = [](const Row& row) { return row.p_brand == 2239; };
        supplier_region = kRegionEurope;
      }
      spec.joins = {{Dimension::kPart, std::move(part_filter)},
                    {Dimension::kSupplier,
                     [supplier_region](const Row& row) {
                       return row.s_region == supplier_region;
                     }},
                    {Dimension::kDate, nullptr}};
      spec.group_key = [](const Row& row) {
        return ssb::GroupKey{row.year, row.p_brand, 0};
      };
      spec.value = Revenue;
      return spec;
    }

    // --- Flight 3 -----------------------------------------------------------
    case QueryId::kQ3_1:
      spec.joins = {
          {Dimension::kCustomer,
           [](const Row& row) { return row.c_region == kRegionAsia; }},
          {Dimension::kSupplier,
           [](const Row& row) { return row.s_region == kRegionAsia; }},
          {Dimension::kDate,
           [](const Row& row) {
             return row.year >= 1992 && row.year <= 1997;
           }}};
      spec.group_key = [](const Row& row) {
        return ssb::GroupKey{row.c_nation, row.s_nation, row.year};
      };
      spec.value = Revenue;
      return spec;
    case QueryId::kQ3_2:
      spec.joins = {
          {Dimension::kCustomer,
           [](const Row& row) { return row.c_nation == kUnitedStates; }},
          {Dimension::kSupplier,
           [](const Row& row) { return row.s_nation == kUnitedStates; }},
          {Dimension::kDate,
           [](const Row& row) {
             return row.year >= 1992 && row.year <= 1997;
           }}};
      spec.group_key = [](const Row& row) {
        return ssb::GroupKey{row.c_city, row.s_city, row.year};
      };
      spec.value = Revenue;
      return spec;
    case QueryId::kQ3_3:
    case QueryId::kQ3_4: {
      JoinOperator::Predicate date_filter;
      if (query == QueryId::kQ3_3) {
        date_filter = [](const Row& row) {
          return row.year >= 1992 && row.year <= 1997;
        };
      } else {
        date_filter = [](const Row& row) {
          return row.yearmonthnum == 199712;
        };
      }
      spec.joins = {
          {Dimension::kCustomer,
           [](const Row& row) { return IsUkCity(row.c_city); }},
          {Dimension::kSupplier,
           [](const Row& row) { return IsUkCity(row.s_city); }},
          {Dimension::kDate, std::move(date_filter)}};
      spec.group_key = [](const Row& row) {
        return ssb::GroupKey{row.c_city, row.s_city, row.year};
      };
      spec.value = Revenue;
      return spec;
    }

    // --- Flight 4 -----------------------------------------------------------
    case QueryId::kQ4_1:
      spec.joins = {
          {Dimension::kCustomer,
           [](const Row& row) { return row.c_region == kRegionAmerica; }},
          {Dimension::kSupplier,
           [](const Row& row) { return row.s_region == kRegionAmerica; }},
          {Dimension::kPart,
           [](const Row& row) {
             return row.p_mfgr == 1 || row.p_mfgr == 2;
           }},
          {Dimension::kDate, nullptr}};
      spec.group_key = [](const Row& row) {
        return ssb::GroupKey{row.year, row.c_nation, 0};
      };
      spec.value = Profit;
      return spec;
    case QueryId::kQ4_2:
      spec.joins = {
          {Dimension::kCustomer,
           [](const Row& row) { return row.c_region == kRegionAmerica; }},
          {Dimension::kSupplier,
           [](const Row& row) { return row.s_region == kRegionAmerica; }},
          {Dimension::kPart,
           [](const Row& row) {
             return row.p_mfgr == 1 || row.p_mfgr == 2;
           }},
          {Dimension::kDate,
           [](const Row& row) {
             return row.year == 1997 || row.year == 1998;
           }}};
      spec.group_key = [](const Row& row) {
        return ssb::GroupKey{row.year, row.s_nation, row.p_category};
      };
      spec.value = Profit;
      return spec;
    case QueryId::kQ4_3:
      spec.joins = {
          {Dimension::kSupplier,
           [](const Row& row) { return row.s_nation == kUnitedStates; }},
          {Dimension::kPart,
           [](const Row& row) { return row.p_category == 14; }},
          {Dimension::kDate,
           [](const Row& row) {
             return row.year == 1997 || row.year == 1998;
           }}};
      spec.group_key = [](const Row& row) {
        return ssb::GroupKey{row.year, row.s_city, row.p_brand};
      };
      spec.value = Profit;
      return spec;
  }
  return spec;
}

Result<std::unique_ptr<AggregateOperator>> BuildPipeline(
    const QuerySpec& spec, const ssb::Database* db, const IndexSet& indexes,
    uint64_t begin, uint64_t end) {
  if (db == nullptr) {
    return Status::InvalidArgument("database must not be null");
  }
  if (begin > end || end > db->lineorder.size()) {
    return Status::OutOfRange("tuple range out of bounds");
  }
  if (spec.value == nullptr) {
    return Status::InvalidArgument("spec needs a value extractor");
  }
  std::unique_ptr<Operator> pipeline = std::make_unique<ScanOperator>(
      db, begin, end, spec.lineorder_filter);
  for (const QuerySpec::JoinStep& step : spec.joins) {
    const DimensionIndex* index = indexes.For(step.dimension);
    if (index == nullptr) {
      return Status::FailedPrecondition(
          std::string("missing index for dimension ") +
          DimensionName(step.dimension));
    }
    pipeline = std::make_unique<JoinOperator>(std::move(pipeline),
                                              step.dimension, index,
                                              step.filter);
  }
  return std::make_unique<AggregateOperator>(std::move(pipeline),
                                             spec.group_key, spec.value);
}

Result<ssb::QueryOutput> ExecutePlan(const QuerySpec& spec,
                                     const ssb::Database* db,
                                     const IndexSet& indexes) {
  PMEMOLAP_ASSIGN_OR_RETURN(
      std::unique_ptr<AggregateOperator> pipeline,
      BuildPipeline(spec, db, indexes, 0, db->lineorder.size()));
  return pipeline->Execute();
}

Result<ssb::QueryOutput> ExecutePlanParallel(const QuerySpec& spec,
                                             const ssb::Database* db,
                                             const IndexSet& indexes,
                                             int workers) {
  return ExecutePlanParallel(spec, db, indexes, workers,
                             qos::QueryOptions());
}

Result<ssb::QueryOutput> ExecutePlanParallel(
    const QuerySpec& spec, const ssb::Database* db, const IndexSet& indexes,
    int workers, const qos::QueryOptions& options) {
  if (workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  const uint64_t total = db->lineorder.size();
  // More workers than tuples would split into degenerate empty ranges;
  // clamp to one tuple per worker.
  if (static_cast<uint64_t>(workers) > total) {
    workers = static_cast<int>(std::max<uint64_t>(1, total));
  }
  if (total == 0) {
    PMEMOLAP_ASSIGN_OR_RETURN(std::unique_ptr<AggregateOperator> pipeline,
                              BuildPipeline(spec, db, indexes, 0, 0));
    return pipeline->Execute();
  }

  // Morsel granularity: small enough that every requested worker gets
  // work, capped at the default so stealing can rebalance long scans.
  const uint64_t morsel_tuples = std::max<uint64_t>(
      1, std::min<uint64_t>(
             kDefaultMorselTuples,
             (total + static_cast<uint64_t>(workers) - 1) /
                 static_cast<uint64_t>(workers)));
  MorselPlan plan = MorselsForRange(total, morsel_tuples);

  // One pipeline per morsel, built up front so setup errors surface
  // before dispatch. Morsel begins are multiples of morsel_tuples, so
  // begin / morsel_tuples recovers the pipeline slot inside the task.
  std::vector<std::unique_ptr<AggregateOperator>> pipelines;
  for (const Morsel& morsel : plan.queues.front()) {
    PMEMOLAP_ASSIGN_OR_RETURN(
        std::unique_ptr<AggregateOperator> pipeline,
        BuildPipeline(spec, db, indexes, morsel.begin, morsel.end));
    pipelines.push_back(std::move(pipeline));
  }

  // The plan-level executor shares one persistent process-wide pool;
  // `workers` caps how many of its threads participate in this run.
  static WorkStealingPool pool(
      std::max(4, static_cast<int>(std::thread::hardware_concurrency())),
      /*queues=*/1);

  std::vector<ssb::QueryOutput> outputs(pipelines.size());
  qos::CancelToken token;
  qos::ArmFromOptions(&token, options);
  WorkStealingPool::RunControl control;
  control.max_workers = workers;
  control.cancel = [&token] { return token.Check(); };
  WorkStealingPool::Stats stats;
  control.stats = &stats;
  Status status = pool.RunWithControl(
      plan,
      [&](const Morsel& morsel, int /*worker*/) -> Status {
        const size_t slot = static_cast<size_t>(morsel.begin / morsel_tuples);
        PMEMOLAP_ASSIGN_OR_RETURN(outputs[slot], pipelines[slot]->Execute());
        return Status::OK();
      },
      control);
  if (options.progress != nullptr) {
    options.progress->admitted = true;
    options.progress->units_total = plan.total_morsels();
    options.progress->units_executed = stats.executed;
    options.progress->units_dropped = stats.dropped;
    options.progress->units_stolen = stats.stolen;
  }
  PMEMOLAP_RETURN_NOT_OK(status);
  return ssb::MergeOutputs(outputs);
}

}  // namespace pmemolap
