#include "engine/dimension_index.h"

namespace pmemolap {

DimensionIndex::DimensionIndex(IndexKind kind) : kind_(kind) {
  if (kind_ == IndexKind::kDash) {
    dash_ = std::make_unique<DashTable>();
  }
}

Status DimensionIndex::Insert(uint64_t key, uint64_t payload) {
  if (kind_ == IndexKind::kDash) return dash_->Insert(key, payload);
  auto [it, inserted] = chained_.emplace(key, payload);
  (void)it;
  if (!inserted) return Status::AlreadyExists("key already present");
  return Status::OK();
}

std::optional<uint64_t> DimensionIndex::Get(uint64_t key) const {
  probes_.fetch_add(1, std::memory_order_relaxed);
  if (kind_ == IndexKind::kDash) return dash_->Get(key);
  auto it = chained_.find(key);
  if (it == chained_.end()) return std::nullopt;
  return it->second;
}

void DimensionIndex::ProbeBatch(const uint64_t* keys, size_t n,
                                uint64_t* out) const {
  probes_.fetch_add(n, std::memory_order_relaxed);
  if (kind_ == IndexKind::kDash) {
    for (size_t i = 0; i < n; ++i) {
      out[i] = dash_->Get(keys[i]).value_or(0);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    auto it = chained_.find(keys[i]);
    out[i] = it == chained_.end() ? 0 : it->second;
  }
}

uint64_t DimensionIndex::size() const {
  return kind_ == IndexKind::kDash ? dash_->size() : chained_.size();
}

uint64_t DimensionIndex::StorageBytes() const {
  if (kind_ == IndexKind::kDash) return dash_->StorageBytes();
  // Chained table: bucket array (8 B heads) + one 32 B node per entry.
  return chained_.bucket_count() * 8 + chained_.size() * 32;
}

ProbeCost DimensionIndex::probe_cost() const {
  if (kind_ == IndexKind::kDash) {
    // One 256 B bucket load resolves almost every probe (fingerprints);
    // displacement/stash adds a small tail.
    return ProbeCost{1.2, 256};
  }
  // Bucket head + node chain + payload cache lines: dependent 64 B reads.
  return ProbeCost{3.5, 64};
}

}  // namespace pmemolap
