// DimensionIndex — the hash index used for SSB joins, in two flavors:
//
//  - kDash: the PMEM-optimized index of the handcrafted SSB (§6.2). One
//    probe touches one 256 B bucket (= one Optane internal line); the
//    index is replicated per socket so probes are always near.
//  - kChained: a PMEM-unaware chained hash table standing in for Hyrise's
//    index (§6.1): a probe chases bucket-head and node pointers, i.e.
//    several dependent sub-256 B random reads that amplify on PMEM.
//
// Both store uint64 payloads encoding the dimension attributes the queries
// need, and count their probe traffic for the timing layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "common/status.h"
#include "dash/dash_table.h"

namespace pmemolap {

enum class IndexKind {
  kDash,     ///< 256 B bucket probes, PMEM-aware
  kChained,  ///< pointer-chasing probes, PMEM-unaware
};

/// Probe traffic characteristics of one index flavor.
struct ProbeCost {
  /// Random reads issued per probe (bucket loads / pointer hops).
  double accesses_per_probe = 1.0;
  /// Bytes touched per access.
  uint64_t access_bytes = 256;
};

class DimensionIndex {
 public:
  explicit DimensionIndex(IndexKind kind);

  Status Insert(uint64_t key, uint64_t payload);
  std::optional<uint64_t> Get(uint64_t key) const;

  /// Batched probe for the vectorized kernels: looks up `n` keys into
  /// `out` (0 for absent keys) and counts the n probes with a single
  /// atomic add — per-row counter increments from 36 workers turn the
  /// shared probe counter into a coherence hot spot.
  void ProbeBatch(const uint64_t* keys, size_t n, uint64_t* out) const;

  uint64_t size() const;
  /// Bytes of index storage (the random-probe region size).
  uint64_t StorageBytes() const;
  ProbeCost probe_cost() const;
  IndexKind kind() const { return kind_; }

  /// Probes since the last ResetStats (every Get counts one probe).
  uint64_t probes() const {
    return probes_.load(std::memory_order_relaxed);
  }
  void ResetStats() const {
    probes_.store(0, std::memory_order_relaxed);
  }

 private:
  IndexKind kind_;
  std::unique_ptr<DashTable> dash_;
  std::unordered_map<uint64_t, uint64_t> chained_;
  /// Relaxed atomic: probes are counted from concurrent worker threads.
  mutable std::atomic<uint64_t> probes_{0};
};

}  // namespace pmemolap
