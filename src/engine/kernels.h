// Vectorized columnar kernels for the 13 SSB queries.
//
// The scalar engine interprets one tuple at a time through a 13-way
// switch, probing indexes row-by-row and aggregating into a std::map —
// wall-clock goes to interpretation overhead, not memory bandwidth. These
// kernels process a morsel in columnar stages instead:
//
//   1. selection-vector predicate evaluation over ssb::ColumnStore arrays
//      (touches only the filtered columns, not the 128 B row);
//   2. batched dimension-index probes (DimensionIndex::ProbeBatch — one
//      probe-counter update per batch) with a dense-key fast path for the
//      date dimension (datekeys span seven years, so a direct-indexed
//      payload array replaces the hash probe entirely);
//   3. flat open-addressing aggregation (AggTable) per worker, merged
//      once at the end of the query.
//
// The kernels mirror the scalar switch's short-circuit semantics exactly:
// a dimension is probed only for tuples that survived the previous stage,
// so outputs AND the per-dimension probe counts feeding the traffic model
// are bit-identical to the scalar path.
//
// The dimension payload encodings (the uint64 values stored in the
// indexes) live here so the scalar engine, the guarded fault path, and
// the vectorized kernels share one definition.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "engine/agg_table.h"
#include "engine/dimension_index.h"
#include "ssb/column_store.h"
#include "ssb/dbgen.h"
#include "ssb/encoded_column_store.h"
#include "ssb/queries.h"

namespace pmemolap {

// --- Dimension payload encodings -------------------------------------------

inline uint64_t EncodeDate(const ssb::DateRow& d) {
  return (static_cast<uint64_t>(d.year) << 40) |
         (static_cast<uint64_t>(d.yearmonthnum) << 16) |
         (static_cast<uint64_t>(static_cast<uint8_t>(d.weeknuminyear)) << 8) |
         static_cast<uint64_t>(static_cast<uint8_t>(d.monthnuminyear));
}

struct DateAttrs {
  int year;
  int yearmonthnum;
  int week;
};

inline DateAttrs DecodeDate(uint64_t payload) {
  return DateAttrs{static_cast<int>(payload >> 40),
                   static_cast<int>((payload >> 16) & 0xFFFFFF),
                   static_cast<int>((payload >> 8) & 0xFF)};
}

inline uint64_t EncodeGeo(int nation, int region, int city) {
  return (static_cast<uint64_t>(nation) << 16) |
         (static_cast<uint64_t>(region) << 8) | static_cast<uint64_t>(city);
}

struct GeoAttrs {
  int nation;
  int region;
  int city_id;
};

inline GeoAttrs DecodeGeo(uint64_t payload) {
  int nation = static_cast<int>(payload >> 16);
  int city = static_cast<int>(payload & 0xFF);
  return GeoAttrs{nation, static_cast<int>((payload >> 8) & 0xFF),
                  ssb::CityId(nation, city)};
}

inline uint64_t EncodePart(const ssb::PartRow& p) {
  return (static_cast<uint64_t>(p.mfgr) << 16) |
         (static_cast<uint64_t>(p.category) << 8) |
         static_cast<uint64_t>(p.brand);
}

struct PartAttrs {
  int mfgr;
  int category_id;
  int brand_id;
};

inline PartAttrs DecodePart(uint64_t payload) {
  int mfgr = static_cast<int>(payload >> 16);
  int category = static_cast<int>((payload >> 8) & 0xFF);
  int brand = static_cast<int>(payload & 0xFF);
  return PartAttrs{mfgr, ssb::CategoryId(mfgr, category),
                   ssb::BrandId(mfgr, category, brand)};
}

// --- Dense dimension fast path ----------------------------------------------

/// Direct-indexed key -> encoded payload map. Every SSB dimension has a
/// dense key space (custkey/suppkey/partkey run 1..N; datekey spans the
/// yyyymmdd values of seven years, a ~70k range), so for the read-only
/// vectorized path a direct-indexed payload array replaces the hash probe
/// entirely. The probe *counts* are still reported per stage, so the
/// traffic model sees the same dimension accesses as the scalar engine.
class DenseDimMap {
 public:
  /// Build from parallel key/payload arrays (keys need not be sorted).
  void Build(const std::vector<int32_t>& keys,
             const std::vector<uint64_t>& payloads);
  /// Date-dimension convenience: key = datekey, payload = EncodeDate.
  void Build(const std::vector<ssb::DateRow>& dates);

  uint64_t Lookup(int32_t key) const {
    return payloads_[static_cast<uint32_t>(key - base_)];
  }
  bool empty() const { return payloads_.empty(); }

 private:
  int32_t base_ = 0;
  std::vector<uint64_t> payloads_;
};

// --- Morsel kernel ----------------------------------------------------------

/// One column of a morsel as the kernels see it: a base pointer plus the
/// global index of its first element. The raw path slices the ColumnStore
/// vector directly (base 0, zero copy); the encoded path slices a
/// morsel-local decode buffer (base = morsel begin). The staged flight
/// code is written once against this view.
struct ColumnSlice {
  const int32_t* data = nullptr;
  uint64_t base = 0;

  int32_t operator[](uint64_t global_index) const {
    return data[global_index - base];
  }
};

/// Everything one worker needs to execute a morsel: the column store plus
/// the dense dimension lookup arrays. A non-null `encoded` switches the
/// kernels to decode-on-scan: flight predicates run against the encoded
/// frames (FoR frame-skipping, dictionary code rewriting) and the staged
/// kernels read block-decoded morsel buffers instead of the raw columns.
/// Results and probe counts are bit-identical either way.
struct KernelContext {
  const ssb::ColumnStore* columns = nullptr;
  const ssb::EncodedColumnStore* encoded = nullptr;
  const DenseDimMap* date = nullptr;
  const DenseDimMap* customer = nullptr;
  const DenseDimMap* supplier = nullptr;
  const DenseDimMap* part = nullptr;
};

/// Per-dimension probe counts and qualifying tuples of one kernel run,
/// matching the scalar engine's short-circuit counting exactly. These
/// feed RecordSocketTraffic, so the modeled runtime stays identical.
struct KernelCounters {
  uint64_t date_probes = 0;
  uint64_t customer_probes = 0;
  uint64_t supplier_probes = 0;
  uint64_t part_probes = 0;
  uint64_t qualifying = 0;
};

/// Reusable per-worker buffers (selection vectors, gathered payloads,
/// carried attributes) so the hot loop never allocates.
struct KernelScratch {
  std::vector<uint64_t> sel;       ///< selected tuple indexes (global)
  std::vector<uint64_t> payloads;  ///< probed payloads, aligned with sel
  std::vector<int32_t> attr_a;     ///< carried attribute, aligned with sel
  std::vector<int32_t> attr_b;     ///< second carried attribute
  std::vector<int32_t> attr_c;     ///< third carried attribute (flight 1)
  /// Morsel-local decode buffers for the encoded path, one per lineorder
  /// column (only the flight's touched columns are filled).
  std::array<std::vector<int32_t>, ssb::kNumLineorderColumns> decoded;
};

/// Executes `query` over tuples [begin, end) with the staged columnar
/// kernels, accumulating grouped sums into `groups`, the flight-1 scalar
/// sum into `*scalar_sum` (setting `*scalar`), and probe/qualifying
/// counts into `counters`.
void ExecuteMorselKernel(ssb::QueryId query, const KernelContext& ctx,
                         uint64_t begin, uint64_t end, KernelScratch* scratch,
                         AggTable* groups, int64_t* scalar_sum, bool* scalar,
                         KernelCounters* counters);

}  // namespace pmemolap
