#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <thread>

#include "encoding/encoding.h"
#include "governor/telemetry.h"

namespace pmemolap {

using ssb::QueryId;

namespace {

constexpr int kUnitedStates = 9;
constexpr int kUnitedKingdom = 19;
constexpr int kRegionAmerica = 1;
constexpr int kRegionAsia = 2;
constexpr int kRegionEurope = 3;

}  // namespace

const char* EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kPmemAware:
      return "PMEM-aware";
    case EngineMode::kUnaware:
      return "PMEM-unaware";
  }
  return "Unknown";
}

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSerial:
      return "serial";
    case ExecutorKind::kStaticThreads:
      return "static-threads";
    case ExecutorKind::kMorselStealing:
      return "morsel-stealing";
  }
  return "unknown";
}

SsbEngine::SsbEngine(const ssb::Database* db, const MemSystemModel* model,
                     EngineConfig config)
    : db_(db), model_(model), config_(std::move(config)) {}

double SsbEngine::ActualScaleFactor() const {
  return static_cast<double>(db_->lineorder.size()) / 6'000'000.0;
}

Status SsbEngine::Prepare() {
  if (config_.fault != nullptr && config_.durable != nullptr) {
    // Guarded reads repair from db_ in place; durable reads come out of a
    // snapshot epoch. Combining them would give two owners of the row
    // bytes — keep the robustness modes orthogonal.
    return Status::InvalidArgument(
        "fault (guarded) and durable modes are mutually exclusive");
  }
  if (config_.encoding) {
    if (!config_.columnar) {
      // Encoded pricing refines the columnar per-column widths; pricing a
      // 128 B row scan at encoded column bytes would be dishonest.
      return Status::InvalidArgument(
          "encoding requires the columnar layout (EngineConfig::columnar)");
    }
    if (config_.fault != nullptr || config_.durable != nullptr) {
      return Status::InvalidArgument(
          "encoding is incompatible with fault/durable modes (both scan "
          "the guarded/durable row image)");
    }
  }
  if (config_.durable != nullptr &&
      config_.durable->options().capacity_bytes <
          db_->lineorder.size() * sizeof(ssb::LineorderRow)) {
    return Status::InvalidArgument(
        "durable table capacity below the database's lineorder bytes");
  }
  if (config_.tiering != nullptr) {
    if (config_.fault != nullptr || config_.durable != nullptr) {
      // Guarded reads repair into db_'s image and durable reads come out
      // of snapshot epochs — both pin the fact bytes to one owner, which
      // extent migration would contradict. Keep the modes orthogonal.
      return Status::InvalidArgument(
          "tiering is incompatible with fault/durable modes");
    }
    if (!config_.numa_aware_placement) {
      // The unmatched-worker scan split halves bytes across sockets
      // before any extent attribution; tiered pricing needs the scan
      // bytes attributable to concrete extents.
      return Status::InvalidArgument(
          "tiering requires NUMA-aware placement");
    }
    // Extents cover the fact table's row image: the table occupies its
    // full 128 B-per-row footprint on whichever tier holds it, whichever
    // columns a query reads.
    PMEMOLAP_RETURN_NOT_OK(config_.tiering->Attach(
        db_->lineorder.size(), sizeof(ssb::LineorderRow)));
  }
  IndexKind kind = config_.mode == EngineMode::kPmemAware
                       ? IndexKind::kDash
                       : IndexKind::kChained;
  // Fact partitioning: striped across sockets in aware mode, single-socket
  // otherwise (the paper pins Hyrise to one socket).
  const SystemTopology& topology = model_->config().topology;
  int sockets_used = (config_.mode == EngineMode::kPmemAware &&
                      config_.use_both_sockets)
                         ? topology.sockets()
                         : 1;

  // Aware mode replicates the dimension indexes per socket (§6.2) so
  // every worker probes a near copy; the unaware engine keeps one copy.
  int replicas = config_.mode == EngineMode::kPmemAware &&
                         config_.numa_aware_placement
                     ? sockets_used
                     : 1;
  // In fault mode the indexes map keys to dense positions; the payloads
  // themselves live in guarded per-socket replicas built below, so every
  // probe goes through the poison-aware failover path.
  const bool guarded = config_.fault != nullptr;
  auto build = [&](ReplicatedIndex* index, auto&& fill) -> Status {
    index->copies.clear();
    for (int r = 0; r < replicas; ++r) {
      index->copies.push_back(std::make_unique<DimensionIndex>(kind));
      PMEMOLAP_RETURN_NOT_OK(fill(index->copies.back().get()));
    }
    return Status::OK();
  };
  PMEMOLAP_RETURN_NOT_OK(build(&date_index_, [&](DimensionIndex* index) {
    uint64_t pos = 0;
    for (const ssb::DateRow& d : db_->date) {
      PMEMOLAP_RETURN_NOT_OK(index->Insert(
          static_cast<uint64_t>(d.datekey),
          guarded ? pos++ : EncodeDate(d)));
    }
    return Status::OK();
  }));
  PMEMOLAP_RETURN_NOT_OK(
      build(&customer_index_, [&](DimensionIndex* index) {
        uint64_t pos = 0;
        for (const ssb::CustomerRow& c : db_->customer) {
          PMEMOLAP_RETURN_NOT_OK(index->Insert(
              static_cast<uint64_t>(c.custkey),
              guarded ? pos++ : EncodeGeo(c.nation, c.region, c.city)));
        }
        return Status::OK();
      }));
  PMEMOLAP_RETURN_NOT_OK(
      build(&supplier_index_, [&](DimensionIndex* index) {
        uint64_t pos = 0;
        for (const ssb::SupplierRow& s : db_->supplier) {
          PMEMOLAP_RETURN_NOT_OK(index->Insert(
              static_cast<uint64_t>(s.suppkey),
              guarded ? pos++ : EncodeGeo(s.nation, s.region, s.city)));
        }
        return Status::OK();
      }));
  PMEMOLAP_RETURN_NOT_OK(build(&part_index_, [&](DimensionIndex* index) {
    uint64_t pos = 0;
    for (const ssb::PartRow& p : db_->part) {
      PMEMOLAP_RETURN_NOT_OK(index->Insert(
          static_cast<uint64_t>(p.partkey),
          guarded ? pos++ : EncodePart(p)));
    }
    return Status::OK();
  }));
  guarded_fact_.reset();
  guarded_date_.reset();
  guarded_customer_.reset();
  guarded_supplier_.reset();
  guarded_part_.reset();
  if (guarded) {
    PmemSpace* space = config_.fault->space;
    FaultInjector* injector = config_.fault->injector;
    if (space == nullptr || injector == nullptr) {
      return Status::InvalidArgument(
          "fault domain needs a space and an injector");
    }
    auto guard_dimension = [&](std::vector<uint64_t> payloads) {
      return GuardedDimension::Create(space, injector, std::move(payloads),
                                      config_.media);
    };
    std::vector<uint64_t> payloads;
    payloads.reserve(db_->date.size());
    for (const ssb::DateRow& d : db_->date) {
      payloads.push_back(EncodeDate(d));
    }
    PMEMOLAP_ASSIGN_OR_RETURN(guarded_date_,
                              guard_dimension(std::move(payloads)));
    payloads.clear();
    payloads.reserve(db_->customer.size());
    for (const ssb::CustomerRow& c : db_->customer) {
      payloads.push_back(EncodeGeo(c.nation, c.region, c.city));
    }
    PMEMOLAP_ASSIGN_OR_RETURN(guarded_customer_,
                              guard_dimension(std::move(payloads)));
    payloads.clear();
    payloads.reserve(db_->supplier.size());
    for (const ssb::SupplierRow& s : db_->supplier) {
      payloads.push_back(EncodeGeo(s.nation, s.region, s.city));
    }
    PMEMOLAP_ASSIGN_OR_RETURN(guarded_supplier_,
                              guard_dimension(std::move(payloads)));
    payloads.clear();
    payloads.reserve(db_->part.size());
    for (const ssb::PartRow& p : db_->part) {
      payloads.push_back(EncodePart(p));
    }
    PMEMOLAP_ASSIGN_OR_RETURN(guarded_part_,
                              guard_dimension(std::move(payloads)));
    // The fact table's byte image, striped and CRC-chunked; db_ stays the
    // repair source (the stand-in for reloading from primary storage).
    PMEMOLAP_ASSIGN_OR_RETURN(
        guarded_fact_,
        GuardedTable::Create(
            space, injector,
            reinterpret_cast<const std::byte*>(db_->lineorder.data()),
            db_->lineorder.size() * sizeof(ssb::LineorderRow),
            config_.fault->fact_options));
    if (config_.fault->breakers != nullptr) {
      BreakerBoard* breakers = config_.fault->breakers;
      guarded_fact_->AttachBreakers(breakers);
      guarded_date_->AttachBreakers(breakers);
      guarded_customer_->AttachBreakers(breakers);
      guarded_supplier_->AttachBreakers(breakers);
      guarded_part_->AttachBreakers(breakers);
    }
  }
  int workers_per_socket =
      std::max(1, config_.threads / std::max(1, sockets_used));
  // Degenerate shapes (threads > lineorder rows): per_worker would
  // truncate to 0, leaving all-but-one range empty while threads still
  // spawn — clamp the effective worker count to the tuple count.
  const uint64_t tuples_per_socket = std::max<uint64_t>(
      1, db_->lineorder.size() / static_cast<uint64_t>(sockets_used));
  if (static_cast<uint64_t>(workers_per_socket) > tuples_per_socket) {
    workers_per_socket = static_cast<int>(tuples_per_socket);
  }
  Partitioner partitioner(topology);
  Result<std::vector<SocketPartition>> partitions =
      partitioner.Partition(db_->lineorder.size(), workers_per_socket);
  if (!partitions.ok()) return partitions.status();
  partitions_ = std::move(partitions.value());
  if (sockets_used == 1) {
    // Collapse onto socket 0.
    SocketPartition all;
    all.socket = 0;
    all.tuples = {0, db_->lineorder.size()};
    uint64_t per_worker =
        db_->lineorder.size() / static_cast<uint64_t>(workers_per_socket);
    uint64_t begin = 0;
    for (int w = 0; w < workers_per_socket; ++w) {
      uint64_t end = w + 1 == workers_per_socket ? db_->lineorder.size()
                                                 : begin + per_worker;
      all.worker_ranges.push_back({begin, end});
      begin = end;
    }
    partitions_ = {std::move(all)};
  }
  // Host-execution structures: the columnar projection + dense date map
  // for the vectorized kernels (fault mode always reads through the
  // guarded scalar path), and the persistent work-stealing pool. The
  // encoded store is built even when `vectorized` is off: modeled scan
  // pricing must be a function of the config alone, identical across all
  // executor modes, so the scalar path prices encoded scans too.
  encoded_ = ssb::EncodedColumnStore();
  if ((config_.vectorized || config_.encoding) && !guarded &&
      config_.durable == nullptr) {
    columns_ = ssb::ColumnStore(db_->lineorder);
    if (config_.encoding) encoded_ = ssb::EncodedColumnStore(columns_);
    date_dense_.Build(db_->date);
    std::vector<int32_t> keys;
    std::vector<uint64_t> payloads;
    auto reset = [&](size_t n) {
      keys.clear();
      payloads.clear();
      keys.reserve(n);
      payloads.reserve(n);
    };
    reset(db_->customer.size());
    for (const ssb::CustomerRow& c : db_->customer) {
      keys.push_back(c.custkey);
      payloads.push_back(EncodeGeo(c.nation, c.region, c.city));
    }
    customer_dense_.Build(keys, payloads);
    reset(db_->supplier.size());
    for (const ssb::SupplierRow& s : db_->supplier) {
      keys.push_back(s.suppkey);
      payloads.push_back(EncodeGeo(s.nation, s.region, s.city));
    }
    supplier_dense_.Build(keys, payloads);
    reset(db_->part.size());
    for (const ssb::PartRow& p : db_->part) {
      keys.push_back(p.partkey);
      payloads.push_back(EncodePart(p));
    }
    part_dense_.Build(keys, payloads);
    if (config_.governor != nullptr) {
      // Payload-identical DRAM replicas for the staging actuator: probing
      // a staged copy returns the same values as the base map, so results
      // never depend on the governor's staging state.
      date_staged_ = date_dense_;
      customer_staged_ = customer_dense_;
      supplier_staged_ = supplier_dense_;
      part_staged_ = part_dense_;
    }
  }
  pool_.reset();
  if (config_.parallel_execution &&
      config_.executor == ExecutorKind::kMorselStealing) {
    // The clamp above also bounds the pool: no point spawning more host
    // threads than there are effective workers.
    pool_ = std::make_unique<WorkStealingPool>(
        std::min(config_.threads,
                 workers_per_socket * static_cast<int>(partitions_.size())),
        static_cast<int>(partitions_.size()));
  }
  prepared_ = true;
  return Status::OK();
}

Status SsbEngine::ExecuteRange(QueryId query, int socket,
                               const TupleRange& range,
                               uint64_t snapshot_epoch, ssb::QueryOutput* out,
                               ProbeCounters* probes, uint64_t* qualifying,
                               const CancelCheck& cancel) const {
  const bool guarded = guarded_fact_ != nullptr;
  const bool durable = config_.durable != nullptr;
  // Probe lambdas stay infallible for the 13-query switch below; a fault
  // that survives failover and repair is parked in `fault_status` and
  // aborts the range at the end of the row.
  Status fault_status = Status::OK();
  auto lookup = [&](const ReplicatedIndex& index, GuardedDimension* dim,
                    int32_t key) -> uint64_t {
    uint64_t value = *index.Near(socket).Get(static_cast<uint64_t>(key));
    if (dim == nullptr) return value;
    Result<uint64_t> payload = dim->Payload(socket, value);
    if (!payload.ok()) {
      if (fault_status.ok()) fault_status = payload.status();
      return 0;
    }
    return payload.value();
  };
  auto probe_date = [&](int32_t datekey) {
    ++probes->date;
    return DecodeDate(lookup(date_index_, guarded_date_.get(), datekey));
  };
  auto probe_customer = [&](int32_t custkey) {
    ++probes->customer;
    return DecodeGeo(
        lookup(customer_index_, guarded_customer_.get(), custkey));
  };
  auto probe_supplier = [&](int32_t suppkey) {
    ++probes->supplier;
    return DecodeGeo(
        lookup(supplier_index_, guarded_supplier_.get(), suppkey));
  };
  auto probe_part = [&](int32_t partkey) {
    ++probes->part;
    return DecodePart(lookup(part_index_, guarded_part_.get(), partkey));
  };

  ssb::LineorderRow scratch{};
  for (uint64_t i = range.begin; i < range.end; ++i) {
    if (guarded) {
      // The row comes off the guarded PMEM image — retried, scrubbed or
      // repaired as needed — not out of the in-DRAM source vector.
      PMEMOLAP_RETURN_NOT_OK(guarded_fact_->Read(
          i * sizeof(ssb::LineorderRow), sizeof(ssb::LineorderRow),
          reinterpret_cast<std::byte*>(&scratch), cancel));
    } else if (durable) {
      // Durable mode: the row is served from the pinned committed
      // snapshot — ranges were clamped to it, so the read cannot run
      // past the epoch's bytes even while ingest keeps committing.
      PMEMOLAP_RETURN_NOT_OK(config_.durable->ReadSnapshot(
          snapshot_epoch, i * sizeof(ssb::LineorderRow),
          sizeof(ssb::LineorderRow),
          reinterpret_cast<std::byte*>(&scratch)));
    }
    const ssb::LineorderRow& lo =
        guarded || durable ? scratch : db_->lineorder[i];
    switch (query) {
      // --- Flight 1: cheap tuple filters first, then one date probe --------
      case QueryId::kQ1_1: {
        out->scalar = true;
        if (lo.discount < 1 || lo.discount > 3 || lo.quantity >= 25) break;
        if (probe_date(lo.orderdate).year != 1993) break;
        out->value += static_cast<int64_t>(lo.extendedprice) * lo.discount;
        ++*qualifying;
        break;
      }
      case QueryId::kQ1_2: {
        out->scalar = true;
        if (lo.discount < 4 || lo.discount > 6 || lo.quantity < 26 ||
            lo.quantity > 35) {
          break;
        }
        if (probe_date(lo.orderdate).yearmonthnum != 199401) break;
        out->value += static_cast<int64_t>(lo.extendedprice) * lo.discount;
        ++*qualifying;
        break;
      }
      case QueryId::kQ1_3: {
        out->scalar = true;
        if (lo.discount < 5 || lo.discount > 7 || lo.quantity < 26 ||
            lo.quantity > 35) {
          break;
        }
        DateAttrs d = probe_date(lo.orderdate);
        if (d.week != 6 || d.year != 1994) break;
        out->value += static_cast<int64_t>(lo.extendedprice) * lo.discount;
        ++*qualifying;
        break;
      }

      // --- Flight 2: part (most selective) -> supplier -> date -------------
      case QueryId::kQ2_1:
      case QueryId::kQ2_2:
      case QueryId::kQ2_3: {
        PartAttrs p = probe_part(lo.partkey);
        bool part_ok = query == QueryId::kQ2_1
                           ? p.category_id == 12
                           : (query == QueryId::kQ2_2
                                  ? p.brand_id >= 2221 && p.brand_id <= 2228
                                  : p.brand_id == 2239);
        if (!part_ok) break;
        int wanted_region = query == QueryId::kQ2_1   ? kRegionAmerica
                            : query == QueryId::kQ2_2 ? kRegionAsia
                                                      : kRegionEurope;
        if (probe_supplier(lo.suppkey).region != wanted_region) break;
        DateAttrs d = probe_date(lo.orderdate);
        out->groups[{d.year, p.brand_id, 0}] += lo.revenue;
        ++*qualifying;
        break;
      }

      // --- Flight 3: customer -> supplier -> date --------------------------
      case QueryId::kQ3_1: {
        GeoAttrs c = probe_customer(lo.custkey);
        if (c.region != kRegionAsia) break;
        GeoAttrs s = probe_supplier(lo.suppkey);
        if (s.region != kRegionAsia) break;
        DateAttrs d = probe_date(lo.orderdate);
        if (d.year < 1992 || d.year > 1997) break;
        out->groups[{c.nation, s.nation, d.year}] += lo.revenue;
        ++*qualifying;
        break;
      }
      case QueryId::kQ3_2: {
        GeoAttrs c = probe_customer(lo.custkey);
        if (c.nation != kUnitedStates) break;
        GeoAttrs s = probe_supplier(lo.suppkey);
        if (s.nation != kUnitedStates) break;
        DateAttrs d = probe_date(lo.orderdate);
        if (d.year < 1992 || d.year > 1997) break;
        out->groups[{c.city_id, s.city_id, d.year}] += lo.revenue;
        ++*qualifying;
        break;
      }
      case QueryId::kQ3_3:
      case QueryId::kQ3_4: {
        GeoAttrs c = probe_customer(lo.custkey);
        if (c.city_id != ssb::CityId(kUnitedKingdom, 1) &&
            c.city_id != ssb::CityId(kUnitedKingdom, 5)) {
          break;
        }
        GeoAttrs s = probe_supplier(lo.suppkey);
        if (s.city_id != ssb::CityId(kUnitedKingdom, 1) &&
            s.city_id != ssb::CityId(kUnitedKingdom, 5)) {
          break;
        }
        DateAttrs d = probe_date(lo.orderdate);
        if (query == QueryId::kQ3_3) {
          if (d.year < 1992 || d.year > 1997) break;
        } else if (d.yearmonthnum != 199712) {
          break;
        }
        out->groups[{c.city_id, s.city_id, d.year}] += lo.revenue;
        ++*qualifying;
        break;
      }

      // --- Flight 4: profit across all dimensions --------------------------
      case QueryId::kQ4_1: {
        GeoAttrs c = probe_customer(lo.custkey);
        if (c.region != kRegionAmerica) break;
        GeoAttrs s = probe_supplier(lo.suppkey);
        if (s.region != kRegionAmerica) break;
        PartAttrs p = probe_part(lo.partkey);
        if (p.mfgr != 1 && p.mfgr != 2) break;
        DateAttrs d = probe_date(lo.orderdate);
        out->groups[{d.year, c.nation, 0}] +=
            static_cast<int64_t>(lo.revenue) - lo.supplycost;
        ++*qualifying;
        break;
      }
      case QueryId::kQ4_2: {
        GeoAttrs c = probe_customer(lo.custkey);
        if (c.region != kRegionAmerica) break;
        GeoAttrs s = probe_supplier(lo.suppkey);
        if (s.region != kRegionAmerica) break;
        PartAttrs p = probe_part(lo.partkey);
        if (p.mfgr != 1 && p.mfgr != 2) break;
        DateAttrs d = probe_date(lo.orderdate);
        if (d.year != 1997 && d.year != 1998) break;
        out->groups[{d.year, s.nation, p.category_id}] +=
            static_cast<int64_t>(lo.revenue) - lo.supplycost;
        ++*qualifying;
        break;
      }
      case QueryId::kQ4_3: {
        GeoAttrs s = probe_supplier(lo.suppkey);
        if (s.nation != kUnitedStates) break;
        PartAttrs p = probe_part(lo.partkey);
        if (p.category_id != 14) break;
        DateAttrs d = probe_date(lo.orderdate);
        if (d.year != 1997 && d.year != 1998) break;
        out->groups[{d.year, s.city_id, p.brand_id}] +=
            static_cast<int64_t>(lo.revenue) - lo.supplycost;
        ++*qualifying;
        break;
      }
    }
    PMEMOLAP_RETURN_NOT_OK(fault_status);
  }
  return Status::OK();
}

uint64_t SsbEngine::ScanBytesPerTuple(ssb::QueryId query) const {
  if (!config_.columnar) return sizeof(ssb::LineorderRow);
  // Column widths actually touched per flight (4 B ints, 8 B orderkey not
  // needed by any query):
  //  QF1: orderdate, discount, quantity, extendedprice
  //  QF2: partkey, suppkey, orderdate, revenue
  //  QF3: custkey, suppkey, orderdate, revenue
  //  QF4.1/2: custkey, suppkey, partkey, orderdate, revenue, supplycost
  //  QF4.3: suppkey, partkey, orderdate, revenue, supplycost
  switch (ssb::FlightOf(query)) {
    case 1:
    case 2:
    case 3:
      return 16;
    default:
      return query == ssb::QueryId::kQ4_3 ? 20 : 24;
  }
}

uint64_t SsbEngine::ScanBytesForTuples(ssb::QueryId query,
                                       uint64_t tuples) const {
  if (!config_.encoding || encoded_.empty()) {
    return tuples * ScanBytesPerTuple(query);
  }
  // Encoded layout: sum the real per-column encoded widths of the
  // columns this query's scan touches (fractional bytes per tuple).
  return encoded_.ScanBytes(ssb::ScanColumnsFor(query), tuples);
}

void SsbEngine::RecordSocketTraffic(
    ssb::QueryId query, int socket, const TupleRange& scanned,
    const ProbeCounters& probes, uint64_t qualifying, int threads_per_socket,
    const governor::GovernorDecision* decision,
    const tiering::TieringSnapshot* tiers,
    ExecutionProfile* profile) const {
  const uint64_t tuples = scanned.size();
  const bool aware = config_.mode == EngineMode::kPmemAware;
  const Media media = config_.media;
  const Media index_media = config_.index_media.value_or(media);
  Media intermediate_media = config_.intermediate_media.value_or(media);
  // Governor actuations on the recorded traffic: staged structures are
  // served from DRAM, write traffic is clamped to the writer-thread
  // target (paper BP2 — past the knee every extra writer costs bandwidth).
  if (decision != nullptr && decision->IsStaged("intermediates")) {
    intermediate_media = Media::kDram;
  }
  const int write_threads =
      decision != nullptr && decision->write_threads > 0
          ? std::min(threads_per_socket, decision->write_threads)
          : threads_per_socket;
  uint64_t scan_bytes = ScanBytesForTuples(query, tuples);

  // Fact scan.
  if (aware && config_.use_both_sockets && !config_.numa_aware_placement) {
    // Data is striped but workers are not matched to partitions: half the
    // scanned bytes live on the other socket (warm far access).
    TrafficRecord near_scan;
    near_scan.op = OpType::kRead;
    near_scan.pattern = Pattern::kSequentialIndividual;
    near_scan.media = media;
    near_scan.data_socket = socket;
    near_scan.worker_socket = socket;
    near_scan.bytes = scan_bytes / 2;
    near_scan.access_size = 4 * kKiB;
    near_scan.region_bytes = scan_bytes;
    near_scan.threads = threads_per_socket;
    near_scan.label = "scan";
    TrafficRecord far_scan = near_scan;
    far_scan.data_socket = 1 - socket;
    far_scan.bytes = scan_bytes - near_scan.bytes;
    profile->Record(std::move(near_scan));
    profile->Record(std::move(far_scan));
  } else {
    // Tiered placement splits the scan bytes across the tiers the
    // scanned extents occupy, proportional to resident tuples; the PMEM
    // remainder keeps the plain "scan" identity so an all-PMEM placement
    // is byte-identical to tiering off. Cold extents charge modeled SSD
    // sequential reads; hot promoted extents read at DRAM rates.
    uint64_t dram_bytes = 0;
    uint64_t ssd_bytes = 0;
    if (tiers != nullptr && !tiers->empty() && tuples > 0) {
      tiering::TieringSnapshot::TupleShare share =
          tiers->SplitTuples(scanned.begin, scanned.end);
      dram_bytes = static_cast<uint64_t>(
          static_cast<double>(scan_bytes) *
          (static_cast<double>(share.dram) / static_cast<double>(tuples)));
      ssd_bytes = static_cast<uint64_t>(
          static_cast<double>(scan_bytes) *
          (static_cast<double>(share.ssd) / static_cast<double>(tuples)));
    }
    TrafficRecord scan;
    scan.op = OpType::kRead;
    scan.pattern = Pattern::kSequentialIndividual;
    scan.media = media;
    scan.data_socket = socket;
    scan.worker_socket = socket;
    scan.bytes = scan_bytes - dram_bytes - ssd_bytes;
    scan.access_size = 4 * kKiB;
    scan.region_bytes = scan.bytes;
    scan.threads = threads_per_socket;
    scan.label = "scan";
    if (dram_bytes > 0) {
      TrafficRecord dram_scan = scan;
      dram_scan.media = Media::kDram;
      dram_scan.bytes = dram_bytes;
      dram_scan.region_bytes = dram_bytes;
      dram_scan.label = "scan-dram";
      profile->Record(std::move(dram_scan));
    }
    if (ssd_bytes > 0) {
      TrafficRecord ssd_scan = scan;
      ssd_scan.media = Media::kSsd;
      ssd_scan.bytes = ssd_bytes;
      ssd_scan.region_bytes = ssd_bytes;
      ssd_scan.label = "scan-ssd";
      profile->Record(std::move(ssd_scan));
    }
    profile->Record(std::move(scan));
  }

  // Dimension probes. Aware mode replicates indexes per socket (near);
  // without NUMA-aware placement the single copy lives on socket 0.
  auto record_probes = [&](const DimensionIndex& index, uint64_t count,
                           const char* label) {
    if (count == 0) return;
    ProbeCost cost = index.probe_cost();
    TrafficRecord probe;
    probe.op = OpType::kRead;
    probe.pattern = Pattern::kRandom;
    probe.media = decision != nullptr && decision->IsStaged(label)
                      ? Media::kDram
                      : index_media;
    probe.worker_socket = socket;
    probe.data_socket =
        (aware && config_.numa_aware_placement) ? socket : 0;
    probe.bytes = static_cast<uint64_t>(
        std::llround(static_cast<double>(count) * cost.accesses_per_probe *
                     static_cast<double>(cost.access_bytes)));
    probe.access_size = cost.access_bytes;
    probe.region_bytes = std::max<uint64_t>(index.StorageBytes(), kMiB);
    probe.threads = threads_per_socket;
    probe.label = std::string("probe-") + label;
    profile->Record(std::move(probe));
  };
  record_probes(date_index_.Near(socket), probes.date, "date");
  record_probes(customer_index_.Near(socket), probes.customer, "customer");
  record_probes(supplier_index_.Near(socket), probes.supplier, "supplier");
  record_probes(part_index_.Near(socket), probes.part, "part");

  // The unaware engine executes joins Hyrise-style: every join pass fully
  // materializes its intermediate (position lists + output columns) in the
  // configured media and re-reads it for the next pass — small scattered
  // writes that are brutal on PMEM. The aware engine streams per-worker
  // intermediates instead (recorded below).
  if (!aware) {
    auto record_materialize = [&](uint64_t rows_into_pass,
                                  const char* label) {
      if (rows_into_pass == 0) return;
      TrafficRecord write;
      write.op = OpType::kWrite;
      write.pattern = Pattern::kRandom;
      write.media = intermediate_media;
      write.data_socket = socket;
      write.worker_socket = socket;
      write.bytes = rows_into_pass * 13;
      write.access_size = 64;
      write.region_bytes = 2 * kGiB;
      write.threads = write_threads;
      write.label = std::string("materialize-") + label;
      TrafficRecord read = write;
      read.op = OpType::kRead;
      read.threads = threads_per_socket;  // only writers are clamped
      profile->Record(std::move(write));
      profile->Record(std::move(read));
    };
    record_materialize(probes.date, "date");
    record_materialize(probes.customer, "customer");
    record_materialize(probes.supplier, "supplier");
    record_materialize(probes.part, "part");
  }

  // Group-aggregate updates: random read+write into the (small) result
  // hash; intermediates: sequential per-worker writes.
  if (qualifying > 0) {
    TrafficRecord agg;
    agg.op = OpType::kRead;
    agg.pattern = Pattern::kRandom;
    agg.media = intermediate_media;
    agg.data_socket = socket;
    agg.worker_socket = socket;
    agg.bytes = qualifying * 64;
    agg.access_size = 64;
    agg.region_bytes = 64 * kMiB;
    agg.threads = threads_per_socket;
    agg.label = "aggregate";
    TrafficRecord agg_write = agg;
    agg_write.op = OpType::kWrite;
    agg_write.threads = write_threads;
    profile->Record(std::move(agg));
    profile->Record(std::move(agg_write));

    TrafficRecord intermediate;
    intermediate.op = OpType::kWrite;
    intermediate.pattern = Pattern::kSequentialIndividual;
    intermediate.media = intermediate_media;
    intermediate.data_socket = socket;
    intermediate.worker_socket = socket;
    intermediate.bytes = qualifying * 32;
    intermediate.access_size = 4 * kKiB;
    intermediate.region_bytes = qualifying * 32;
    intermediate.threads = write_threads;
    intermediate.label = "intermediate";
    profile->Record(std::move(intermediate));
  }
}

Status SsbEngine::ExecuteRangeInto(ssb::QueryId query, size_t slot,
                                   const TupleRange& range, bool vectorized,
                                   uint64_t snapshot_epoch,
                                   const governor::GovernorDecision* decision,
                                   WorkerState* state,
                                   const CancelCheck& cancel) const {
  if (state->probes.size() < partitions_.size()) {
    state->probes.resize(partitions_.size());
    state->qualifying.resize(partitions_.size(), 0);
  }
  const SocketPartition& partition = partitions_[slot];
  if (!vectorized) {
    return ExecuteRange(query, partition.socket, range, snapshot_epoch,
                        &state->output, &state->probes[slot],
                        &state->qualifying[slot], cancel);
  }
  // Staged dimensions probe the DRAM replica; the payloads are identical
  // copies, so eviction (falling back to the base map) cannot change any
  // query result.
  KernelContext ctx;
  ctx.columns = &columns_;
  // Decode-on-scan: with encoding on, the kernels read block-decoded
  // frames (and run flight-1 predicates on the encoded data directly)
  // instead of the raw columns. Same values, bit-identical results.
  ctx.encoded =
      config_.encoding && !encoded_.empty() ? &encoded_ : nullptr;
  ctx.date = decision != nullptr && decision->IsStaged("date")
                 ? &date_staged_
                 : &date_dense_;
  ctx.customer = decision != nullptr && decision->IsStaged("customer")
                     ? &customer_staged_
                     : &customer_dense_;
  ctx.supplier = decision != nullptr && decision->IsStaged("supplier")
                     ? &supplier_staged_
                     : &supplier_dense_;
  ctx.part = decision != nullptr && decision->IsStaged("part")
                 ? &part_staged_
                 : &part_dense_;
  KernelCounters counters;
  ExecuteMorselKernel(query, ctx, range.begin, range.end, &state->scratch,
                      &state->groups, &state->scalar_sum, &state->scalar,
                      &counters);
  ProbeCounters& probes = state->probes[slot];
  probes.date += counters.date_probes;
  probes.customer += counters.customer_probes;
  probes.supplier += counters.supplier_probes;
  probes.part += counters.part_probes;
  state->qualifying[slot] += counters.qualifying;
  return Status::OK();
}

ssb::QueryOutput SsbEngine::DrainWorkerOutput(WorkerState* state) {
  ssb::QueryOutput out = std::move(state->output);
  if (state->scalar) {
    out.scalar = true;
    out.value += state->scalar_sum;
  }
  state->groups.MergeInto(&out.groups);
  return out;
}

Result<uint64_t> SsbEngine::Ingest(const ssb::LineorderRow* rows,
                                   uint64_t count) {
  if (config_.durable == nullptr) {
    return Status::FailedPrecondition(
        "Ingest requires a durable table (EngineConfig::durable)");
  }
  if (count == 0) return Status::InvalidArgument("empty ingest batch");
  PMEMOLAP_ASSIGN_OR_RETURN(
      uint64_t epoch,
      config_.durable->Append(reinterpret_cast<const std::byte*>(rows),
                              count * sizeof(ssb::LineorderRow)));
  PMEMOLAP_RETURN_NOT_OK(CheckDurabilityOracle());
  return epoch;
}

Result<RecoveryStats> SsbEngine::Recover() {
  if (config_.durable == nullptr) {
    return Status::FailedPrecondition(
        "Recover requires a durable table (EngineConfig::durable)");
  }
  if (config_.admission != nullptr) config_.admission->PauseForRecovery();
  RecoveryManager recovery(config_.durable);
  Result<RecoveryStats> stats = recovery.Run();
  if (config_.admission != nullptr) {
    config_.admission->ResumeAfterRecovery();
  }
  if (stats.ok()) PMEMOLAP_RETURN_NOT_OK(CheckDurabilityOracle());
  return stats;
}

Status SsbEngine::CheckDurabilityOracle() const {
  PersistOrderChecker* oracle = config_.durable->order_checker();
  if (oracle == nullptr || oracle->clean()) return Status::OK();
  const std::vector<PersistOrderChecker::Violation> violations =
      oracle->violations();
  const PersistOrderChecker::Violation& first = violations.front();
  return Status::Internal(
      "durability oracle recorded " +
      std::to_string(oracle->total_violations()) +
      " persist-ordering violation(s); first: [" + first.rule + "] " +
      first.region + " line " + std::to_string(first.line) + ": " +
      first.detail);
}

Result<SsbEngine::QueryRun> SsbEngine::Execute(ssb::QueryId query) const {
  return Execute(query, qos::QueryOptions());
}

Result<SsbEngine::QueryRun> SsbEngine::Execute(
    ssb::QueryId query, const qos::QueryOptions& options) const {
  if (!prepared_) {
    return Status::FailedPrecondition("call Prepare() before Execute()");
  }
  // Progress is published on every exit path — a deadline-killed query
  // still reports how far it got.
  qos::QueryProgress progress;
  struct ProgressPublisher {
    const qos::QueryOptions& options;
    qos::QueryProgress& progress;
    ~ProgressPublisher() {
      // Units a run never reached (early return between slots) count as
      // dropped; the pool path accounts for all its morsels itself.
      if (progress.units_total >
          progress.units_executed + progress.units_dropped) {
        progress.units_dropped =
            progress.units_total - progress.units_executed;
      }
      if (options.progress != nullptr) *options.progress = progress;
    }
  } publisher{options, progress};

  FaultInjector* injector =
      config_.fault != nullptr ? config_.fault->injector : nullptr;

  // Snapshot the governor's decision once per Execute: every consumer in
  // this run (admission signal, pool worker caps, morsel shaping, staged
  // probes, write clamps, traffic records) acts on the same quantum, so a
  // concurrent Observe can never tear a run's actuation.
  const bool governed = config_.governor != nullptr;
  governor::GovernorDecision decision;
  if (governed) decision = config_.governor->decision();
  const governor::GovernorDecision* decision_ptr =
      governed ? &decision : nullptr;

  // Snapshot the tier placement once per Execute for the same reason:
  // scan pricing and the per-tier byte split act on one quantum's
  // placement even while a concurrent Advance() commits the next.
  const bool tiered = config_.tiering != nullptr;
  tiering::TieringSnapshot tier_snapshot;
  if (tiered) tier_snapshot = config_.tiering->snapshot();
  const tiering::TieringSnapshot* tiers_ptr =
      tiered && !tier_snapshot.empty() ? &tier_snapshot : nullptr;

  // Arm the lifecycle token: wall/modeled deadlines from the options
  // (modeled time defaults to the fault domain's platform clock), plus
  // the fault-layer retry budget.
  qos::CancelToken token;
  std::function<double()> default_clock;
  if (injector != nullptr) {
    default_clock = [injector] { return injector->now(); };
  }
  qos::ArmFromOptions(&token, options, default_clock);
  if (options.retry_budget >= 0 && injector != nullptr) {
    token.ArmRetryBudget(
        static_cast<uint64_t>(options.retry_budget),
        [injector] { return injector->counters().retries; });
  }

  // Admission gate: publish fresh backpressure (executor depth plus the
  // platform degradation estimate), then admit at the query's priority.
  // A shed submission never touches the executor.
  qos::AdmissionTicket ticket;
  if (config_.admission != nullptr) {
    qos::LoadSignal signal;
    signal.executor_depth = pool_ != nullptr ? pool_->inflight_runs() : 0;
    signal.degradation =
        injector != nullptr ? qos::DegradationEstimate(*injector) : 1.0;
    if (governed) {
      // Overload shedding and bandwidth governance shed against ONE
      // health signal: the governor's throttle estimate is the same
      // min(DIMM service, UPI capacity) reduction as the injector's.
      signal.degradation =
          std::min(signal.degradation, config_.governor->ThrottleEstimate());
    }
    config_.admission->SetLoadSignal(signal);
    Result<qos::AdmissionTicket> admitted =
        config_.admission->Admit(options.priority, &token);
    if (!admitted.ok()) return admitted.status();
    ticket = std::move(admitted.value());
  }
  progress.admitted = true;
  // An already-expired deadline (budget 0) aborts before any work — the
  // same guarantee the between-morsel checks give mid-run.
  PMEMOLAP_RETURN_NOT_OK(token.Check());

  QueryRun run;
  int threads_per_socket = std::max(
      1, config_.threads / std::max<int>(1, static_cast<int>(
                                                partitions_.size())));

  const bool guarded = guarded_fact_ != nullptr;
  const bool durable = config_.durable != nullptr;
  // Durable mode pins the snapshot once, post-admission: however many
  // epochs commit while the query runs, every range reads the same
  // committed prefix. Ranges are clamped to the snapshot's rows below.
  uint64_t snapshot_epoch = 0;
  uint64_t snapshot_rows = db_->lineorder.size();
  if (durable) {
    snapshot_epoch = options.snapshot_epoch == qos::kLatestSnapshot
                         ? config_.durable->committed_epoch()
                         : options.snapshot_epoch;
    PMEMOLAP_ASSIGN_OR_RETURN(uint64_t snapshot_bytes,
                              config_.durable->SnapshotBytes(snapshot_epoch));
    snapshot_rows = snapshot_bytes / sizeof(ssb::LineorderRow);
  }
  // The scan window (QueryOptions::scan_begin/scan_end) and the durable
  // snapshot compose into one clamp interval: a query reads the tuples
  // inside its window that its snapshot has committed. Default options
  // leave [0, snapshot_rows) — today's behavior exactly.
  const uint64_t window_begin = std::min(options.scan_begin, snapshot_rows);
  const uint64_t window_end = std::min(options.scan_end, snapshot_rows);
  auto clamp_range = [window_begin, window_end](const TupleRange& range) {
    return TupleRange{std::clamp(range.begin, window_begin, window_end),
                      std::clamp(range.end, window_begin, window_end)};
  };
  const bool vectorized = config_.vectorized && !guarded && !durable;
  const ExecutorKind executor = config_.parallel_execution
                                    ? config_.executor
                                    : ExecutorKind::kSerial;
  const size_t slots = partitions_.size();
  // The same token the executors poll between morsels also cuts guarded
  // retry storms short: FaultAwareReader checks it between attempts, so a
  // fired deadline stops charging backoff mid-read.
  const CancelCheck cancel_check = [&token] { return token.Check(); };
  std::vector<WorkerState> states;
  // Bytes re-read because morsel boundaries tear 256 B XPLines (only ever
  // non-zero when governed with shaping off — the ablation's "before").
  uint64_t xpline_amplified_bytes = 0;

  if (executor == ExecutorKind::kMorselStealing && pool_ != nullptr) {
    // Morsel-granular dispatch on the persistent pool: per-socket run
    // queues, idle workers steal across sockets, first failure cancels.
    MorselPlan plan =
        Partitioner::ToMorsels(partitions_, config_.morsel_tuples);
    if (window_begin > 0 || window_end < db_->lineorder.size()) {
      // Clamp the work list to the window/snapshot before
      // shaping/reassignment: tuples outside it (uncommitted rows, or
      // outside the query's scan window) don't exist for this query.
      for (std::vector<Morsel>& queue : plan.queues) {
        for (Morsel& morsel : queue) {
          morsel.begin = std::clamp(morsel.begin, window_begin, window_end);
          morsel.end = std::clamp(morsel.end, window_begin, window_end);
        }
        queue.erase(std::remove_if(
                        queue.begin(), queue.end(),
                        [](const Morsel& m) { return m.size() == 0; }),
                    queue.end());
      }
    }
    if (governed) {
      if (config_.encoding && !encoded_.empty()) {
        // Encoded columns have no whole-byte tuple width: morsels align
        // to whole 32-value code frames instead, and a torn boundary
        // makes both neighbors re-read that frame's XPLine in every
        // scanned column.
        if (decision.shape_morsels) {
          AlignMorselPlanTuples(&plan, encoding::kFrameValues);
        }
        xpline_amplified_bytes =
            TornBoundaries(plan, encoding::kFrameValues) * kXPLineBytes *
            ssb::ScanColumnsFor(query).size();
      } else {
        const uint64_t bpt = ScanBytesPerTuple(query);
        if (decision.shape_morsels) {
          // Snap boundaries to XPLines before quarantine reassignment —
          // reassignment breaks the queue contiguity shaping relies on.
          AlignMorselPlan(&plan, bpt);
        }
        xpline_amplified_bytes = GranularityAmplifiedBytes(plan, bpt);
      }
    }
    if (config_.fault != nullptr && config_.fault->breakers != nullptr) {
      // Quarantined fault domains don't get "near" work: their queued
      // morsels move to healthy queues (Morsel::socket — and with it the
      // partition slot and result identity — is preserved).
      ReassignQuarantinedQueues(&plan,
                                config_.fault->breakers->HealthySockets());
    }
    std::vector<size_t> slot_of_socket(plan.queues.size(), 0);
    for (size_t slot = 0; slot < slots; ++slot) {
      const size_t socket = static_cast<size_t>(partitions_[slot].socket);
      if (socket < slot_of_socket.size()) slot_of_socket[socket] = slot;
    }
    states.resize(static_cast<size_t>(pool_->threads()));
    progress.units_total = plan.total_morsels();
    WorkStealingPool::RunControl control;
    control.cancel = [&token] { return token.Check(); };
    if (governed && !decision.read_workers.empty()) {
      // Reader concurrency actuator: cap each socket queue at the
      // governor's modeled bandwidth knee.
      control.workers_per_queue = decision.read_workers;
    }
    WorkStealingPool::Stats stats;
    control.stats = &stats;
    Status pool_status = pool_->RunWithControl(
        plan,
        [&](const Morsel& morsel, int worker) {
          if (tiered) {
            // Per-morsel heat feed: commutative accumulation, so any
            // steal schedule folds to the same quantum heat.
            config_.tiering->Touch(morsel.begin, morsel.end);
          }
          return ExecuteRangeInto(
              query, slot_of_socket[static_cast<size_t>(morsel.socket)],
              {morsel.begin, morsel.end}, vectorized, snapshot_epoch,
              decision_ptr, &states[static_cast<size_t>(worker)],
              cancel_check);
        },
        control);
    progress.units_executed = stats.executed;
    progress.units_stolen = stats.stolen;
    progress.units_dropped = stats.dropped;
    PMEMOLAP_RETURN_NOT_OK(pool_status);
  } else if (executor == ExecutorKind::kStaticThreads) {
    // The legacy path: one fresh std::thread per static worker range,
    // joined per socket. Kept as the wall-clock baseline. Deadlines are
    // checked between sockets (the coarsest cancellation granularity of
    // the three executors — static ranges can't stop mid-socket).
    progress.units_total = slots;
    for (size_t slot = 0; slot < slots; ++slot) {
      PMEMOLAP_RETURN_NOT_OK(token.Check());
      const SocketPartition& partition = partitions_[slot];
      if (tiered) {
        const TupleRange touched = clamp_range(partition.tuples);
        config_.tiering->Touch(touched.begin, touched.end);
      }
      const size_t workers = partition.worker_ranges.size();
      if (workers <= 1) {
        states.emplace_back();
        PMEMOLAP_RETURN_NOT_OK(
            ExecuteRangeInto(query, slot, clamp_range(partition.tuples),
                             vectorized, snapshot_epoch, decision_ptr,
                             &states.back(), cancel_check));
        ++progress.units_executed;
        continue;
      }
      const size_t base = states.size();
      states.resize(base + workers);
      std::vector<Status> statuses(workers);
      // lint:allow(raw-thread): kStaticThreads IS the legacy
      // spawn-per-query baseline the pool is benchmarked against; it
      // must not route through WorkStealingPool.
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        threads.emplace_back([&, slot, w, base] {
          statuses[w] = ExecuteRangeInto(
              query, slot, clamp_range(partitions_[slot].worker_ranges[w]),
              vectorized, snapshot_epoch, decision_ptr, &states[base + w],
              cancel_check);
        });
      }
      // lint:allow(raw-thread): join of the baseline executor above.
      for (std::thread& thread : threads) thread.join();
      for (const Status& status : statuses) {
        PMEMOLAP_RETURN_NOT_OK(status);
      }
      ++progress.units_executed;
    }
  } else {
    // Serial: one socket range at a time, deadline checked between them.
    progress.units_total = slots;
    states.emplace_back();
    for (size_t slot = 0; slot < slots; ++slot) {
      PMEMOLAP_RETURN_NOT_OK(token.Check());
      const TupleRange range = clamp_range(partitions_[slot].tuples);
      if (tiered) config_.tiering->Touch(range.begin, range.end);
      PMEMOLAP_RETURN_NOT_OK(
          ExecuteRangeInto(query, slot, range, vectorized, snapshot_epoch,
                           decision_ptr, &states[0], cancel_check));
      ++progress.units_executed;
    }
  }

  // Fold worker states: outputs merge commutatively; probe/qualifying
  // counts roll up per partition slot for the traffic records.
  std::vector<ProbeCounters> slot_probes(slots);
  std::vector<uint64_t> slot_qualifying(slots, 0);
  std::vector<ssb::QueryOutput> partials;
  partials.reserve(states.size());
  for (WorkerState& state : states) {
    for (size_t slot = 0; slot < state.probes.size(); ++slot) {
      slot_probes[slot].date += state.probes[slot].date;
      slot_probes[slot].customer += state.probes[slot].customer;
      slot_probes[slot].supplier += state.probes[slot].supplier;
      slot_probes[slot].part += state.probes[slot].part;
      slot_qualifying[slot] += state.qualifying[slot];
    }
    partials.push_back(DrainWorkerOutput(&state));
  }
  run.output = ssb::MergeOutputs(partials);

  for (size_t slot = 0; slot < slots; ++slot) {
    const SocketPartition& partition = partitions_[slot];
    const TupleRange scanned = clamp_range(partition.tuples);
    RecordSocketTraffic(query, partition.socket, scanned, slot_probes[slot],
                        slot_qualifying[slot], threads_per_socket,
                        decision_ptr, tiers_ptr, &run.profile);
    run.cpu.tuples_scanned += scanned.size();
    run.cpu.probes += slot_probes[slot].total();
    run.cpu.agg_updates += slot_qualifying[slot];
  }

  if (xpline_amplified_bytes > 0) {
    // Morsel boundaries that tear an XPLine make both neighbors re-read
    // the 256 B line — recorded as small random reads against the fact
    // region (too sparse for the LLC to help).
    uint64_t fact_bytes = 0;
    for (const SocketPartition& partition : partitions_) {
      fact_bytes +=
          ScanBytesForTuples(query, clamp_range(partition.tuples).size());
    }
    TrafficRecord torn;
    torn.op = OpType::kRead;
    torn.pattern = Pattern::kRandom;
    torn.media = config_.media;
    torn.data_socket = 0;
    torn.worker_socket = 0;
    torn.bytes = xpline_amplified_bytes;
    torn.access_size = kXPLineBytes;
    torn.region_bytes = std::max(fact_bytes, static_cast<uint64_t>(kMiB));
    torn.threads = threads_per_socket;
    torn.label = "scan-xpline";
    run.profile.Record(std::move(torn));
  }

  // Project to the paper's scale factor if requested. Traffic volumes all
  // scale with the lineorder count, but the random-probe REGION sizes
  // scale with each dimension's own cardinality (customer grows with sf,
  // part grows with log2(sf), date is constant) — getting this right
  // decides which indexes stay LLC-resident at paper scale.
  double factor = 1.0;
  ExecutionProfile projected;
  if (config_.project_to_sf > 0.0) {
    factor = config_.project_to_sf / ActualScaleFactor();
    ssb::Cardinalities actual = ssb::CardinalitiesFor(ActualScaleFactor());
    ssb::Cardinalities target = ssb::CardinalitiesFor(config_.project_to_sf);
    auto ratio = [](uint64_t to, uint64_t from) {
      return from == 0 ? 1.0
                       : static_cast<double>(to) / static_cast<double>(from);
    };
    for (TrafficRecord record : run.profile.records()) {
      record.bytes = static_cast<uint64_t>(
          std::llround(static_cast<double>(record.bytes) * factor));
      double region_factor = factor;
      if (record.label.starts_with("probe-")) {
        if (record.label.ends_with("date")) {
          region_factor = 1.0;
        } else if (record.label.ends_with("customer")) {
          region_factor = ratio(target.customer, actual.customer);
        } else if (record.label.ends_with("supplier")) {
          region_factor = ratio(target.supplier, actual.supplier);
        } else if (record.label.ends_with("part")) {
          region_factor = ratio(target.part, actual.part);
        }
      } else if (record.label == "aggregate" ||
                 record.label.starts_with("materialize-")) {
        region_factor = 1.0;  // hash/staging region size is fixed
      }
      record.region_bytes = static_cast<uint64_t>(std::llround(
          static_cast<double>(record.region_bytes) * region_factor));
      projected.Record(std::move(record));
    }
  } else {
    projected = run.profile;
  }
  CpuWork projected_cpu = run.cpu.Scaled(factor);

  // The writer clamp also governs any standing background writers (BP2:
  // the whole platform's PMEM writers sit at 4–6 per socket, not just the
  // query's own) — ungoverned runs see the background as configured.
  std::vector<TrafficRecord> background = config_.background;
  if (durable) {
    // The ingest load's PMEM write stream (redo log + table apply) rides
    // along as standing background: the query is costed jointly with it,
    // and — below — the governor's writer clamp applies to it like any
    // other PMEM writer, so log writes enter the write-knee loop.
    std::vector<TrafficRecord> ingest = config_.durable->standing_traffic();
    background.insert(background.end(),
                      std::make_move_iterator(ingest.begin()),
                      std::make_move_iterator(ingest.end()));
  }
  if (tiered) {
    // The tier manager's migration traffic rides along the same way.
    // Unlike an external ingest source it copies table extents, which
    // scale with the lineorder count — so it projects by the same factor
    // as the query's own records.
    for (TrafficRecord record : config_.tiering->standing_traffic()) {
      record.bytes = static_cast<uint64_t>(
          std::llround(static_cast<double>(record.bytes) * factor));
      record.region_bytes = static_cast<uint64_t>(std::llround(
          static_cast<double>(record.region_bytes) * factor));
      background.push_back(std::move(record));
    }
  }
  if (governed && decision.write_threads > 0) {
    for (TrafficRecord& record : background) {
      if (record.op == OpType::kWrite && record.media == Media::kPmem) {
        record.threads = std::min(record.threads, decision.write_threads);
      }
    }
  }

  QueryTimer timer(model_, config_.timer);
  run.seconds = timer.EstimateSecondsWithBackground(
      projected, projected_cpu, config_.threads, config_.pinning, background,
      &run.phase_seconds);

  if (governed) {
    // Close the loop: one telemetry sample per Execute (the scheduling
    // quantum) carrying the jointly-resolved bandwidths the run just saw.
    governor::TelemetrySample sample = governor::BuildTelemetry(
        *model_, projected.records(), background, config_.pinning, injector);
    config_.governor->Observe(sample);
  }
  if (tiered) {
    // One Execute = one placement quantum: fold this run's touches into
    // the decayed heat and let the loop commit whatever migrations have
    // passed hysteresis. Next quantum's queries see the new placement
    // and carry its migration traffic as background load.
    config_.tiering->Advance();
  }

  run.progress = progress;
  return run;
}

}  // namespace pmemolap
