// QueryTimer — converts an ExecutionProfile plus CPU work counts into a
// projected wall-clock time using the MemSystemModel, so the SSB results
// (Fig. 14, Table 1) are produced by the SAME calibrated model as the
// microbenchmarks.
//
// Phases (profile labels) run sequentially; within a phase, the work of
// different worker sockets runs concurrently (time = max over sockets of
// the socket's summed record times). CPU cost is added on top; the
// per-tuple nanosecond constants absorb pipelining overlap and are
// calibrated against Table 1's single-thread row.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/profile.h"
#include "memsys/mem_system.h"
#include "topo/pinning.h"

namespace pmemolap {

/// CPU work counts of one query execution.
struct CpuWork {
  uint64_t tuples_scanned = 0;
  uint64_t probes = 0;
  uint64_t agg_updates = 0;

  CpuWork Scaled(double factor) const;
};

/// Per-operation CPU costs (single-thread nanoseconds) and cache model.
struct TimerConfig {
  double scan_ns_per_tuple = 15.0;
  double probe_ns = 75.0;
  double agg_ns = 50.0;
  /// Effective last-level cache available to random-access structures
  /// (the 24.75 MB LLC, partially thrashed by concurrent scans). Random
  /// records against regions that fit here mostly hit the cache; only the
  /// miss fraction reaches the memory devices.
  uint64_t effective_llc_bytes = 12 * kMiB;
  /// Residual miss rate for fully cache-resident regions.
  double min_miss_fraction = 0.05;
};

class QueryTimer {
 public:
  QueryTimer(const MemSystemModel* model, TimerConfig config = TimerConfig())
      : model_(model), config_(config) {}

  const TimerConfig& config() const { return config_; }

  /// Estimated seconds for the profiled traffic and CPU work executed by
  /// `total_threads` workers placed with `pinning`. When `breakdown` is
  /// non-null, it receives the per-phase memory seconds (keyed by profile
  /// label) plus a "cpu" entry — the where-does-the-time-go evidence
  /// behind Table 1's discussion.
  double EstimateSeconds(const ExecutionProfile& profile, const CpuWork& work,
                         int total_threads, PinningPolicy pinning,
                         std::map<std::string, double>* breakdown =
                             nullptr) const;

  /// EstimateSeconds under standing `background` traffic (e.g. an ingest
  /// load running for the whole query): every query record is evaluated
  /// JOINTLY with the background classes, so records sharing a (socket,
  /// media) device pool with the load see the contended bandwidth of
  /// Fig. 11 instead of their solo rate. Background records occupy
  /// regions disjoint from the query's. An empty `background` reduces to
  /// EstimateSeconds exactly.
  double EstimateSecondsWithBackground(
      const ExecutionProfile& profile, const CpuWork& work, int total_threads,
      PinningPolicy pinning, const std::vector<TrafficRecord>& background,
      std::map<std::string, double>* breakdown = nullptr) const;

  /// Memory time of a single traffic record (seconds).
  double RecordSeconds(const TrafficRecord& record,
                       PinningPolicy pinning) const;

  /// Multi-user execution: `streams` concurrent copies of the query share
  /// the machine. Each stream runs with threads/streams workers, and all
  /// streams' traffic is evaluated JOINTLY through the model, so the
  /// mixed-workload interference of Fig. 11 applies across streams.
  struct ThroughputEstimate {
    /// Wall-clock seconds one stream needs for one query.
    double stream_seconds = 0.0;
    /// Completed queries per hour across all streams.
    double queries_per_hour = 0.0;
  };
  ThroughputEstimate EstimateConcurrentStreams(const ExecutionProfile& profile,
                                               const CpuWork& work,
                                               int streams, int total_threads,
                                               PinningPolicy pinning) const;

 private:
  /// Bytes that actually reach the devices (LLC-filtered for random).
  double EffectiveBytes(const TrafficRecord& record) const;
  /// RecordSeconds with the record evaluated jointly against the standing
  /// `background` classes (the record is per_class[0] of the joint spec).
  double RecordSecondsAmong(const TrafficRecord& record, PinningPolicy pinning,
                            const std::vector<AccessClass>& background) const;
  /// Builds the model class for a record executed by `threads` workers.
  Result<AccessClass> BuildClass(const TrafficRecord& record, int threads,
                                 PinningPolicy pinning) const;

  const MemSystemModel* model_;
  TimerConfig config_;
};

}  // namespace pmemolap
