// Declarative query plans over the operator framework: the 13 SSB queries
// as QuerySpecs (probe order, predicates, grouping), plus a builder that
// turns any QuerySpec into an executable pipeline.
//
// This is the third, independent implementation of the SSB semantics in
// this repository (reference executor, engine switch, operator plans) —
// the test suite cross-validates all three.
#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/operators.h"
#include "qos/query_options.h"

namespace pmemolap {

/// All dimension indexes a plan may probe.
struct IndexSet {
  const DimensionIndex* date = nullptr;
  const DimensionIndex* customer = nullptr;
  const DimensionIndex* supplier = nullptr;
  const DimensionIndex* part = nullptr;

  const DimensionIndex* For(Dimension dim) const {
    switch (dim) {
      case Dimension::kDate:
        return date;
      case Dimension::kCustomer:
        return customer;
      case Dimension::kSupplier:
        return supplier;
      case Dimension::kPart:
        return part;
    }
    return nullptr;
  }
};

/// A declarative star-join query: pushdown filter, ordered join steps,
/// aggregation.
struct QuerySpec {
  ScanOperator::Predicate lineorder_filter;  ///< may be null
  struct JoinStep {
    Dimension dimension;
    JoinOperator::Predicate filter;  ///< may be null
  };
  /// Probe order matters: put the most selective dimension first.
  std::vector<JoinStep> joins;
  /// Null for scalar queries (flight 1).
  AggregateOperator::KeyExtractor group_key;
  AggregateOperator::ValueExtractor value;
};

/// The built-in spec of one SSB query.
QuerySpec SsbQuerySpec(ssb::QueryId query);

/// Builds an executable pipeline for a spec over a tuple range.
/// Every join step needs its index present in `indexes`.
Result<std::unique_ptr<AggregateOperator>> BuildPipeline(
    const QuerySpec& spec, const ssb::Database* db, const IndexSet& indexes,
    uint64_t begin, uint64_t end);

/// Convenience: builds and executes a spec over the whole fact table.
Result<ssb::QueryOutput> ExecutePlan(const QuerySpec& spec,
                                     const ssb::Database* db,
                                     const IndexSet& indexes);

/// Parallel execution: splits the fact table into `workers` contiguous
/// ranges, runs one pipeline per range on its own thread, and merges the
/// partial aggregates. Equivalent to ExecutePlan (aggregation is
/// commutative); the indexes must be safe for concurrent reads (they are:
/// probe counters are relaxed atomics).
Result<ssb::QueryOutput> ExecutePlanParallel(const QuerySpec& spec,
                                             const ssb::Database* db,
                                             const IndexSet& indexes,
                                             int workers);

/// ExecutePlanParallel under query-lifecycle controls: the options'
/// deadline is armed on a cancel token checked between morsels, so an
/// expired query aborts with kDeadlineExceeded (partial progress in
/// options.progress, never a torn morsel) instead of running to
/// completion.
Result<ssb::QueryOutput> ExecutePlanParallel(const QuerySpec& spec,
                                             const ssb::Database* db,
                                             const IndexSet& indexes,
                                             int workers,
                                             const qos::QueryOptions& options);

}  // namespace pmemolap
