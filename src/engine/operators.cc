#include "engine/operators.h"

namespace pmemolap {

const char* DimensionName(Dimension dim) {
  switch (dim) {
    case Dimension::kDate:
      return "date";
    case Dimension::kCustomer:
      return "customer";
    case Dimension::kSupplier:
      return "supplier";
    case Dimension::kPart:
      return "part";
  }
  return "unknown";
}

bool ScanOperator::Next(std::vector<Row>* batch) {
  batch->clear();
  while (pos_ < end_ && batch->size() < kBatchSize) {
    const ssb::LineorderRow& lo = db_->lineorder[pos_++];
    ++tuples_scanned_;
    if (predicate_ != nullptr && !predicate_(lo)) continue;
    Row row;
    row.lineorder = &lo;
    batch->push_back(row);
  }
  return !batch->empty() || pos_ < end_;
}

bool JoinOperator::Next(std::vector<Row>* batch) {
  std::vector<Row> input;
  input.reserve(kBatchSize);
  batch->clear();
  bool more = child_->Next(&input);
  for (Row& row : input) {
    uint64_t key = 0;
    switch (dimension_) {
      case Dimension::kDate:
        key = static_cast<uint64_t>(row.lineorder->orderdate);
        break;
      case Dimension::kCustomer:
        key = static_cast<uint64_t>(row.lineorder->custkey);
        break;
      case Dimension::kSupplier:
        key = static_cast<uint64_t>(row.lineorder->suppkey);
        break;
      case Dimension::kPart:
        key = static_cast<uint64_t>(row.lineorder->partkey);
        break;
    }
    ++probes_;
    std::optional<uint64_t> payload = index_->Get(key);
    if (!payload.has_value()) continue;  // referential miss: drop the row
    // Decode the payload with the engine's encodings (see engine.cc).
    switch (dimension_) {
      case Dimension::kDate:
        row.year = static_cast<int16_t>(*payload >> 40);
        row.yearmonthnum = static_cast<int32_t>((*payload >> 16) & 0xFFFFFF);
        row.weeknuminyear = static_cast<int8_t>((*payload >> 8) & 0xFF);
        break;
      case Dimension::kCustomer: {
        row.c_nation = static_cast<uint8_t>(*payload >> 16);
        row.c_region = static_cast<uint8_t>((*payload >> 8) & 0xFF);
        row.c_city = ssb::CityId(row.c_nation,
                                 static_cast<int>(*payload & 0xFF));
        break;
      }
      case Dimension::kSupplier: {
        row.s_nation = static_cast<uint8_t>(*payload >> 16);
        row.s_region = static_cast<uint8_t>((*payload >> 8) & 0xFF);
        row.s_city = ssb::CityId(row.s_nation,
                                 static_cast<int>(*payload & 0xFF));
        break;
      }
      case Dimension::kPart: {
        row.p_mfgr = static_cast<uint8_t>(*payload >> 16);
        int category = static_cast<int>((*payload >> 8) & 0xFF);
        int brand = static_cast<int>(*payload & 0xFF);
        row.p_category = ssb::CategoryId(row.p_mfgr, category);
        row.p_brand = ssb::BrandId(row.p_mfgr, category, brand);
        break;
      }
    }
    if (predicate_ != nullptr && !predicate_(row)) continue;
    batch->push_back(row);
  }
  return more;
}

Result<ssb::QueryOutput> AggregateOperator::Execute() {
  if (value_ == nullptr) {
    return Status::InvalidArgument("aggregate needs a value extractor");
  }
  ssb::QueryOutput output;
  output.scalar = key_ == nullptr;
  std::vector<Row> batch;
  batch.reserve(Operator::kBatchSize);
  bool more = true;
  while (more) {
    more = child_->Next(&batch);
    for (const Row& row : batch) {
      ++rows_aggregated_;
      int64_t value = value_(row);
      if (output.scalar) {
        output.value += value;
      } else {
        output.groups[key_(row)] += value;
      }
    }
  }
  return output;
}

}  // namespace pmemolap
