// AggTable — a flat open-addressing aggregation table for the hot
// group-by loop, replacing std::map<GroupKey, int64_t> in the per-worker
// accumulators. SSB group counts are tiny (at most a few hundred groups),
// so the table stays L1/L2-resident: one hash + a short linear probe per
// update instead of a red-black-tree walk with node allocations.
//
// Determinism: each worker aggregates into its own table; the merge into
// the ordered ssb::GroupMap at the end of the query sorts the groups and
// adds exact integers, so the final output is bit-identical regardless of
// worker count, morsel order, or steal schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ssb/queries.h"

namespace pmemolap {

class AggTable {
 public:
  AggTable() { Reset(); }

  /// groups[key] += value.
  void Add(const ssb::GroupKey& key, int64_t value) {
    size_t at = Hash(key) & mask_;
    while (true) {
      Slot& slot = slots_[at];
      if (!slot.used) {
        slot.used = true;
        slot.key = key;
        slot.value = value;
        ++size_;
        if (size_ * 2 > slots_.size()) Grow();
        return;
      }
      if (slot.key == key) {
        slot.value += value;
        return;
      }
      at = (at + 1) & mask_;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Adds every group into the ordered result map.
  void MergeInto(ssb::GroupMap* groups) const {
    for (const Slot& slot : slots_) {
      if (slot.used) (*groups)[slot.key] += slot.value;
    }
  }

  /// Empties the table (capacity is kept).
  void Clear() {
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }

 private:
  struct Slot {
    ssb::GroupKey key{};
    int64_t value = 0;
    bool used = false;
  };

  static uint64_t Hash(const ssb::GroupKey& key) {
    uint64_t h =
        (static_cast<uint64_t>(static_cast<uint32_t>(key[0])) << 32) |
        static_cast<uint32_t>(key[1]);
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(key[2])) << 13;
    // splitmix64 finalizer
    h += 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
  }

  void Reset() {
    slots_.assign(kInitialSlots, Slot{});
    mask_ = kInitialSlots - 1;
    size_ = 0;
  }

  void Grow();

  static constexpr size_t kInitialSlots = 1024;  // power of two

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace pmemolap
