#include "engine/kernels.h"

#include <algorithm>
#include <limits>

namespace pmemolap {

namespace {

using ssb::LineorderColumn;
using ssb::QueryId;

constexpr int kUnitedStates = 9;
constexpr int kUnitedKingdom = 19;
constexpr int kRegionAmerica = 1;
constexpr int kRegionAsia = 2;
constexpr int kRegionEurope = 3;

const std::vector<int32_t>& RawColumn(const ssb::ColumnStore& columns,
                                      LineorderColumn column) {
  switch (column) {
    case LineorderColumn::kOrderdate:
      return columns.orderdate();
    case LineorderColumn::kCustkey:
      return columns.custkey();
    case LineorderColumn::kPartkey:
      return columns.partkey();
    case LineorderColumn::kSuppkey:
      return columns.suppkey();
    case LineorderColumn::kQuantity:
      return columns.quantity();
    case LineorderColumn::kDiscount:
      return columns.discount();
    case LineorderColumn::kExtendedprice:
      return columns.extendedprice();
    case LineorderColumn::kRevenue:
      return columns.revenue();
    case LineorderColumn::kSupplycost:
      return columns.supplycost();
  }
  return columns.orderdate();
}

/// The morsel's view of one column: a zero-copy slice of the raw vector,
/// or (encoded path) a block decode of [begin, end) into the scratch
/// buffer for that column — the vectorized decode-on-scan step.
ColumnSlice SliceFor(const KernelContext& ctx, LineorderColumn column,
                     uint64_t begin, uint64_t end, KernelScratch* s) {
  if (ctx.encoded == nullptr) {
    return ColumnSlice{RawColumn(*ctx.columns, column).data(), 0};
  }
  std::vector<int32_t>& buffer = s->decoded[static_cast<size_t>(column)];
  buffer.resize(end - begin);
  ctx.encoded->column(column).Decode(begin, end, buffer.data());
  return ColumnSlice{buffer.data(), begin};
}

/// Loads sel with every tuple of the morsel (stage-1 "probe all rows").
void SelectAll(uint64_t begin, uint64_t end, KernelScratch* s) {
  s->sel.resize(end - begin);
  for (uint64_t i = begin; i < end; ++i) s->sel[i - begin] = i;
}

/// Gathers `col` at the sel positions through the dense dimension map,
/// leaving payloads aligned with sel. Counts |sel| probes into `count`.
void ProbeSelected(const DenseDimMap& dim, ColumnSlice col,
                   KernelScratch* s, uint64_t* count) {
  const size_t n = s->sel.size();
  *count += n;
  s->payloads.resize(n);
  for (size_t i = 0; i < n; ++i) {
    s->payloads[i] = dim.Lookup(col[s->sel[i]]);
  }
}

/// Compacts sel by keep(payload). An existing carried attribute
/// (`keep_attr`) is compacted alongside; when `out_attr` is non-null,
/// carry(payload) is recorded for every survivor.
template <typename Keep, typename Carry>
void CompactStage(KernelScratch* s, std::vector<int32_t>* keep_attr,
                  std::vector<int32_t>* out_attr, Keep keep, Carry carry) {
  const size_t n = s->sel.size();
  if (out_attr != nullptr) out_attr->resize(n);
  size_t out = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t payload = s->payloads[i];
    if (!keep(payload)) continue;
    s->sel[out] = s->sel[i];
    if (keep_attr != nullptr) (*keep_attr)[out] = (*keep_attr)[i];
    if (out_attr != nullptr) {
      (*out_attr)[out] = static_cast<int32_t>(carry(payload));
    }
    ++out;
  }
  s->sel.resize(out);
  if (keep_attr != nullptr) keep_attr->resize(out);
  if (out_attr != nullptr) out_attr->resize(out);
}

constexpr auto kNoCarry = [](uint64_t) { return 0; };

/// Final stage of the join flights: dense date lookup per survivor,
/// year filter, group-aggregate update.
template <typename Keep, typename Key, typename Value>
void DateAggregate(const KernelContext& ctx, ColumnSlice orderdate,
                   KernelScratch* s, AggTable* groups,
                   KernelCounters* counters, Keep keep, Key key,
                   Value value) {
  counters->date_probes += s->sel.size();
  for (size_t i = 0; i < s->sel.size(); ++i) {
    const uint64_t idx = s->sel[i];
    const DateAttrs d = DecodeDate(ctx.date->Lookup(orderdate[idx]));
    if (!keep(d)) continue;
    groups->Add(key(d, i), value(idx));
    ++counters->qualifying;
  }
}

/// Flight-1 predicate bounds: discount in [d_lo, d_hi], quantity in
/// [q_lo, q_hi] (Q1.1's `quantity < 25` as an inclusive range).
struct Flight1Predicate {
  int32_t d_lo, d_hi, q_lo, q_hi;
};

Flight1Predicate Flight1PredicateOf(QueryId query) {
  switch (query) {
    case QueryId::kQ1_1:
      return {1, 3, std::numeric_limits<int32_t>::min(), 24};
    case QueryId::kQ1_2:
      return {4, 6, 26, 35};
    default:  // kQ1_3
      return {5, 7, 26, 35};
  }
}

/// Flight-1 date filter + sum over the final selection, shared by the raw
/// and encoded paths. `orderdate_at`/`price_at`/`discount_at` map a sel
/// position to the tuple's attribute values.
template <typename Date, typename Price, typename Discount>
void Flight1Aggregate(QueryId query, const KernelContext& ctx,
                      KernelScratch* s, int64_t* scalar_sum,
                      KernelCounters* counters, Date orderdate_at,
                      Price price_at, Discount discount_at) {
  counters->date_probes += s->sel.size();
  int64_t sum = 0;
  uint64_t qualifying = 0;
  for (size_t i = 0; i < s->sel.size(); ++i) {
    const uint64_t payload = ctx.date->Lookup(orderdate_at(i));
    bool keep;
    if (query == QueryId::kQ1_1) {
      keep = (payload >> 40) == 1993;
    } else if (query == QueryId::kQ1_2) {
      keep = ((payload >> 16) & 0xFFFFFF) == 199401;
    } else {
      const DateAttrs d = DecodeDate(payload);
      keep = d.week == 6 && d.year == 1994;
    }
    if (!keep) continue;
    sum += static_cast<int64_t>(price_at(i)) * discount_at(i);
    ++qualifying;
  }
  *scalar_sum += sum;
  counters->qualifying += qualifying;
}

/// Encoded flight 1: the discount range predicate runs directly against
/// the encoded frames (FoR frame-skipping / dictionary code rewriting —
/// no decode for frames whose bounds miss the range), the quantity
/// refinement and the aggregate inputs come through frame-cached gathers
/// at the surviving positions. Selection order and counts match the raw
/// loop exactly.
void Flight1Encoded(QueryId query, const KernelContext& ctx, uint64_t begin,
                    uint64_t end, KernelScratch* s, int64_t* scalar_sum,
                    KernelCounters* counters) {
  const ssb::EncodedColumnStore& enc = *ctx.encoded;
  const Flight1Predicate pred = Flight1PredicateOf(query);

  s->sel.clear();
  enc.column(LineorderColumn::kDiscount)
      .AppendMatchingRange(pred.d_lo, pred.d_hi, begin, end, &s->sel);
  // Refine by quantity: gather at the discount survivors, compact.
  enc.column(LineorderColumn::kQuantity).GatherInto(s->sel, &s->attr_a);
  size_t out = 0;
  for (size_t i = 0; i < s->sel.size(); ++i) {
    if (s->attr_a[i] >= pred.q_lo && s->attr_a[i] <= pred.q_hi) {
      s->sel[out++] = s->sel[i];
    }
  }
  s->sel.resize(out);

  enc.column(LineorderColumn::kOrderdate).GatherInto(s->sel, &s->attr_a);
  enc.column(LineorderColumn::kExtendedprice)
      .GatherInto(s->sel, &s->attr_b);
  enc.column(LineorderColumn::kDiscount).GatherInto(s->sel, &s->attr_c);
  Flight1Aggregate(
      query, ctx, s, scalar_sum, counters,
      [&](size_t i) { return s->attr_a[i]; },
      [&](size_t i) { return s->attr_b[i]; },
      [&](size_t i) { return s->attr_c[i]; });
}

void Flight1(QueryId query, const KernelContext& ctx, uint64_t begin,
             uint64_t end, KernelScratch* s, int64_t* scalar_sum,
             KernelCounters* counters) {
  if (ctx.encoded != nullptr) {
    Flight1Encoded(query, ctx, begin, end, s, scalar_sum, counters);
    return;
  }
  const std::vector<int32_t>& discount = ctx.columns->discount();
  const std::vector<int32_t>& quantity = ctx.columns->quantity();
  const std::vector<int32_t>& orderdate = ctx.columns->orderdate();
  const std::vector<int32_t>& price = ctx.columns->extendedprice();

  s->sel.clear();
  switch (query) {
    case QueryId::kQ1_1:
      for (uint64_t i = begin; i < end; ++i) {
        if (discount[i] >= 1 && discount[i] <= 3 && quantity[i] < 25) {
          s->sel.push_back(i);
        }
      }
      break;
    case QueryId::kQ1_2:
      for (uint64_t i = begin; i < end; ++i) {
        if (discount[i] >= 4 && discount[i] <= 6 && quantity[i] >= 26 &&
            quantity[i] <= 35) {
          s->sel.push_back(i);
        }
      }
      break;
    default:  // kQ1_3
      for (uint64_t i = begin; i < end; ++i) {
        if (discount[i] >= 5 && discount[i] <= 7 && quantity[i] >= 26 &&
            quantity[i] <= 35) {
          s->sel.push_back(i);
        }
      }
      break;
  }

  Flight1Aggregate(
      query, ctx, s, scalar_sum, counters,
      [&](size_t i) { return orderdate[s->sel[i]]; },
      [&](size_t i) { return price[s->sel[i]]; },
      [&](size_t i) { return discount[s->sel[i]]; });
}

void Flight2(QueryId query, const KernelContext& ctx, uint64_t begin,
             uint64_t end, KernelScratch* s, AggTable* groups,
             KernelCounters* counters) {
  const ColumnSlice partkey =
      SliceFor(ctx, LineorderColumn::kPartkey, begin, end, s);
  const ColumnSlice suppkey =
      SliceFor(ctx, LineorderColumn::kSuppkey, begin, end, s);
  const ColumnSlice orderdate =
      SliceFor(ctx, LineorderColumn::kOrderdate, begin, end, s);
  const ColumnSlice revenue =
      SliceFor(ctx, LineorderColumn::kRevenue, begin, end, s);
  SelectAll(begin, end, s);
  ProbeSelected(*ctx.part, partkey, s, &counters->part_probes);
  auto brand = [](uint64_t payload) {
    return DecodePart(payload).brand_id;
  };
  if (query == QueryId::kQ2_1) {
    CompactStage(s, nullptr, &s->attr_a,
                 [](uint64_t p) { return DecodePart(p).category_id == 12; },
                 brand);
  } else if (query == QueryId::kQ2_2) {
    CompactStage(s, nullptr, &s->attr_a,
                 [&](uint64_t p) {
                   const int b = DecodePart(p).brand_id;
                   return b >= 2221 && b <= 2228;
                 },
                 brand);
  } else {
    CompactStage(s, nullptr, &s->attr_a,
                 [&](uint64_t p) { return DecodePart(p).brand_id == 2239; },
                 brand);
  }

  const int wanted_region = query == QueryId::kQ2_1   ? kRegionAmerica
                            : query == QueryId::kQ2_2 ? kRegionAsia
                                                      : kRegionEurope;
  ProbeSelected(*ctx.supplier, suppkey, s, &counters->supplier_probes);
  CompactStage(s, &s->attr_a, nullptr,
               [&](uint64_t p) { return DecodeGeo(p).region == wanted_region; },
               kNoCarry);

  DateAggregate(
      ctx, orderdate, s, groups, counters,
      [](const DateAttrs&) { return true; },
      [&](const DateAttrs& d, size_t i) {
        return ssb::GroupKey{d.year, s->attr_a[i], 0};
      },
      [&](uint64_t idx) { return static_cast<int64_t>(revenue[idx]); });
}

void Flight3(QueryId query, const KernelContext& ctx, uint64_t begin,
             uint64_t end, KernelScratch* s, AggTable* groups,
             KernelCounters* counters) {
  const ColumnSlice custkey =
      SliceFor(ctx, LineorderColumn::kCustkey, begin, end, s);
  const ColumnSlice suppkey =
      SliceFor(ctx, LineorderColumn::kSuppkey, begin, end, s);
  const ColumnSlice orderdate =
      SliceFor(ctx, LineorderColumn::kOrderdate, begin, end, s);
  const ColumnSlice revenue =
      SliceFor(ctx, LineorderColumn::kRevenue, begin, end, s);
  SelectAll(begin, end, s);
  ProbeSelected(*ctx.customer, custkey, s, &counters->customer_probes);
  auto is_uk_city = [](int city_id) {
    return city_id == ssb::CityId(kUnitedKingdom, 1) ||
           city_id == ssb::CityId(kUnitedKingdom, 5);
  };
  // Customer stage: filter + carry the grouping attribute (attr_a).
  if (query == QueryId::kQ3_1) {
    CompactStage(s, nullptr, &s->attr_a,
                 [](uint64_t p) { return DecodeGeo(p).region == kRegionAsia; },
                 [](uint64_t p) { return DecodeGeo(p).nation; });
  } else if (query == QueryId::kQ3_2) {
    CompactStage(s, nullptr, &s->attr_a,
                 [](uint64_t p) { return DecodeGeo(p).nation == kUnitedStates; },
                 [](uint64_t p) { return DecodeGeo(p).city_id; });
  } else {
    CompactStage(s, nullptr, &s->attr_a,
                 [&](uint64_t p) { return is_uk_city(DecodeGeo(p).city_id); },
                 [](uint64_t p) { return DecodeGeo(p).city_id; });
  }

  // Supplier stage: filter + carry the second grouping attribute.
  ProbeSelected(*ctx.supplier, suppkey, s, &counters->supplier_probes);
  if (query == QueryId::kQ3_1) {
    CompactStage(s, &s->attr_a, &s->attr_b,
                 [](uint64_t p) { return DecodeGeo(p).region == kRegionAsia; },
                 [](uint64_t p) { return DecodeGeo(p).nation; });
  } else if (query == QueryId::kQ3_2) {
    CompactStage(s, &s->attr_a, &s->attr_b,
                 [](uint64_t p) { return DecodeGeo(p).nation == kUnitedStates; },
                 [](uint64_t p) { return DecodeGeo(p).city_id; });
  } else {
    CompactStage(s, &s->attr_a, &s->attr_b,
                 [&](uint64_t p) { return is_uk_city(DecodeGeo(p).city_id); },
                 [](uint64_t p) { return DecodeGeo(p).city_id; });
  }

  auto keep_date = [&](const DateAttrs& d) {
    if (query == QueryId::kQ3_4) return d.yearmonthnum == 199712;
    return d.year >= 1992 && d.year <= 1997;
  };
  DateAggregate(
      ctx, orderdate, s, groups, counters, keep_date,
      [&](const DateAttrs& d, size_t i) {
        return ssb::GroupKey{s->attr_a[i], s->attr_b[i], d.year};
      },
      [&](uint64_t idx) { return static_cast<int64_t>(revenue[idx]); });
}

void Flight4(QueryId query, const KernelContext& ctx, uint64_t begin,
             uint64_t end, KernelScratch* s, AggTable* groups,
             KernelCounters* counters) {
  const ColumnSlice suppkey =
      SliceFor(ctx, LineorderColumn::kSuppkey, begin, end, s);
  const ColumnSlice partkey =
      SliceFor(ctx, LineorderColumn::kPartkey, begin, end, s);
  const ColumnSlice orderdate =
      SliceFor(ctx, LineorderColumn::kOrderdate, begin, end, s);
  const ColumnSlice revenue =
      SliceFor(ctx, LineorderColumn::kRevenue, begin, end, s);
  const ColumnSlice supplycost =
      SliceFor(ctx, LineorderColumn::kSupplycost, begin, end, s);
  SelectAll(begin, end, s);
  auto profit = [&](uint64_t idx) {
    return static_cast<int64_t>(revenue[idx]) - supplycost[idx];
  };

  if (query == QueryId::kQ4_3) {
    // supplier (nation, carry city) -> part (category, carry brand) -> date
    ProbeSelected(*ctx.supplier, suppkey, s, &counters->supplier_probes);
    CompactStage(s, nullptr, &s->attr_a,
                 [](uint64_t p) { return DecodeGeo(p).nation == kUnitedStates; },
                 [](uint64_t p) { return DecodeGeo(p).city_id; });
    ProbeSelected(*ctx.part, partkey, s, &counters->part_probes);
    CompactStage(s, &s->attr_a, &s->attr_b,
                 [](uint64_t p) { return DecodePart(p).category_id == 14; },
                 [](uint64_t p) { return DecodePart(p).brand_id; });
    DateAggregate(
        ctx, orderdate, s, groups, counters,
        [](const DateAttrs& d) { return d.year == 1997 || d.year == 1998; },
        [&](const DateAttrs& d, size_t i) {
          return ssb::GroupKey{d.year, s->attr_a[i], s->attr_b[i]};
        },
        profit);
    return;
  }

  // Q4.1 / Q4.2: customer -> supplier -> part -> date.
  const ColumnSlice custkey =
      SliceFor(ctx, LineorderColumn::kCustkey, begin, end, s);
  ProbeSelected(*ctx.customer, custkey, s, &counters->customer_probes);
  if (query == QueryId::kQ4_1) {
    CompactStage(s, nullptr, &s->attr_a,
                 [](uint64_t p) { return DecodeGeo(p).region == kRegionAmerica; },
                 [](uint64_t p) { return DecodeGeo(p).nation; });
  } else {
    CompactStage(s, nullptr, nullptr,
                 [](uint64_t p) { return DecodeGeo(p).region == kRegionAmerica; },
                 kNoCarry);
  }

  ProbeSelected(*ctx.supplier, suppkey, s, &counters->supplier_probes);
  if (query == QueryId::kQ4_1) {
    CompactStage(s, &s->attr_a, nullptr,
                 [](uint64_t p) { return DecodeGeo(p).region == kRegionAmerica; },
                 kNoCarry);
  } else {
    CompactStage(s, nullptr, &s->attr_a,
                 [](uint64_t p) { return DecodeGeo(p).region == kRegionAmerica; },
                 [](uint64_t p) { return DecodeGeo(p).nation; });
  }

  ProbeSelected(*ctx.part, partkey, s, &counters->part_probes);
  if (query == QueryId::kQ4_1) {
    CompactStage(s, &s->attr_a, nullptr,
                 [](uint64_t p) {
                   const int mfgr = DecodePart(p).mfgr;
                   return mfgr == 1 || mfgr == 2;
                 },
                 kNoCarry);
    DateAggregate(
        ctx, orderdate, s, groups, counters,
        [](const DateAttrs&) { return true; },
        [&](const DateAttrs& d, size_t i) {
          return ssb::GroupKey{d.year, s->attr_a[i], 0};
        },
        profit);
  } else {
    CompactStage(s, &s->attr_a, &s->attr_b,
                 [](uint64_t p) {
                   const int mfgr = DecodePart(p).mfgr;
                   return mfgr == 1 || mfgr == 2;
                 },
                 [](uint64_t p) { return DecodePart(p).category_id; });
    DateAggregate(
        ctx, orderdate, s, groups, counters,
        [](const DateAttrs& d) { return d.year == 1997 || d.year == 1998; },
        [&](const DateAttrs& d, size_t i) {
          return ssb::GroupKey{d.year, s->attr_a[i], s->attr_b[i]};
        },
        profit);
  }
}

}  // namespace

void DenseDimMap::Build(const std::vector<int32_t>& keys,
                        const std::vector<uint64_t>& payloads) {
  payloads_.clear();
  if (keys.empty()) return;
  int32_t lo = std::numeric_limits<int32_t>::max();
  int32_t hi = std::numeric_limits<int32_t>::min();
  for (int32_t key : keys) {
    lo = std::min(lo, key);
    hi = std::max(hi, key);
  }
  base_ = lo;
  payloads_.assign(static_cast<size_t>(hi - lo) + 1, 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    payloads_[static_cast<size_t>(keys[i] - lo)] = payloads[i];
  }
}

void DenseDimMap::Build(const std::vector<ssb::DateRow>& dates) {
  payloads_.clear();
  if (dates.empty()) return;
  int32_t lo = std::numeric_limits<int32_t>::max();
  int32_t hi = std::numeric_limits<int32_t>::min();
  for (const ssb::DateRow& d : dates) {
    lo = std::min(lo, d.datekey);
    hi = std::max(hi, d.datekey);
  }
  base_ = lo;
  payloads_.assign(static_cast<size_t>(hi - lo) + 1, 0);
  for (const ssb::DateRow& d : dates) {
    payloads_[static_cast<size_t>(d.datekey - lo)] = EncodeDate(d);
  }
}

void ExecuteMorselKernel(ssb::QueryId query, const KernelContext& ctx,
                         uint64_t begin, uint64_t end, KernelScratch* scratch,
                         AggTable* groups, int64_t* scalar_sum, bool* scalar,
                         KernelCounters* counters) {
  if (begin >= end) return;
  switch (ssb::FlightOf(query)) {
    case 1:
      *scalar = true;
      Flight1(query, ctx, begin, end, scratch, scalar_sum, counters);
      break;
    case 2:
      Flight2(query, ctx, begin, end, scratch, groups, counters);
      break;
    case 3:
      Flight3(query, ctx, begin, end, scratch, groups, counters);
      break;
    default:
      Flight4(query, ctx, begin, end, scratch, groups, counters);
      break;
  }
}

}  // namespace pmemolap
