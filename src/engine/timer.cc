#include "engine/timer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

namespace pmemolap {

CpuWork CpuWork::Scaled(double factor) const {
  CpuWork scaled;
  scaled.tuples_scanned = static_cast<uint64_t>(
      std::llround(static_cast<double>(tuples_scanned) * factor));
  scaled.probes = static_cast<uint64_t>(
      std::llround(static_cast<double>(probes) * factor));
  scaled.agg_updates = static_cast<uint64_t>(
      std::llround(static_cast<double>(agg_updates) * factor));
  return scaled;
}

double QueryTimer::EffectiveBytes(const TrafficRecord& record) const {
  // Random access against a cache-resident region mostly hits the LLC;
  // only misses reach the devices. (The 2 GB microbenchmark regions of
  // Figs. 12/13 miss essentially always.)
  double effective_bytes = static_cast<double>(record.bytes);
  if (record.pattern == Pattern::kRandom && record.region_bytes > 0) {
    double miss = 1.0 - static_cast<double>(config_.effective_llc_bytes) /
                            static_cast<double>(record.region_bytes);
    miss = std::max(miss, config_.min_miss_fraction);
    effective_bytes *= miss;
  }
  return effective_bytes;
}

Result<AccessClass> QueryTimer::BuildClass(const TrafficRecord& record,
                                           int threads,
                                           PinningPolicy pinning) const {
  int worker_socket =
      record.worker_socket >= 0 ? record.worker_socket : record.data_socket;

  ThreadPlacer placer(model_->config().topology);
  PMEMOLAP_ASSIGN_OR_RETURN(
      ThreadPlacement placement,
      placer.Place(std::max(threads, 1), pinning, worker_socket));
  if (pinning != PinningPolicy::kNone) {
    for (ThreadSlot& slot : placement.slots) {
      slot.near_data =
          SystemTopology::IsNear(slot.socket, record.data_socket);
    }
  }

  AccessClass klass;
  klass.op = record.op;
  klass.pattern = record.pattern;
  klass.media = record.media;
  klass.access_size = std::max<uint64_t>(record.access_size, 64);
  klass.placement = std::move(placement);
  klass.data_socket = record.data_socket;
  klass.region_bytes = record.region_bytes;
  klass.run_index = 2;  // steady state: the directory is warm
  klass.label = record.label;
  return klass;
}

double QueryTimer::RecordSeconds(const TrafficRecord& record,
                                 PinningPolicy pinning) const {
  if (record.bytes == 0) return 0.0;
  Result<AccessClass> klass = BuildClass(record, record.threads, pinning);
  if (!klass.ok()) return 0.0;
  WorkloadSpec spec;
  spec.classes.push_back(std::move(klass.value()));
  BandwidthResult result = model_->EvaluateOnce(spec);
  if (result.total_gbps <= 0.0) return 0.0;
  return EffectiveBytes(record) / 1e9 / result.total_gbps;
}

double QueryTimer::EstimateSeconds(
    const ExecutionProfile& profile, const CpuWork& work, int total_threads,
    PinningPolicy pinning, std::map<std::string, double>* breakdown) const {
  // Phase = label; within a phase, worker sockets proceed in parallel —
  // except SSD traffic, which funnels through one shared device
  // regardless of the issuing socket (bucket key -1).
  std::map<std::string, std::map<int, double>> phase_socket_seconds;
  for (const TrafficRecord& record : profile.records()) {
    int bucket;
    if (record.media == Media::kSsd) {
      bucket = -1;
    } else {
      bucket = record.worker_socket >= 0 ? record.worker_socket
                                         : record.data_socket;
    }
    phase_socket_seconds[record.label][bucket] +=
        RecordSeconds(record, pinning);
  }
  double memory_seconds = 0.0;
  for (const auto& [label, socket_seconds] : phase_socket_seconds) {
    double phase = 0.0;
    for (const auto& [socket, seconds] : socket_seconds) {
      (void)socket;
      phase = std::max(phase, seconds);
    }
    if (breakdown != nullptr) (*breakdown)[label] = phase;
    memory_seconds += phase;
  }

  double cpu_ns = static_cast<double>(work.tuples_scanned) *
                      config_.scan_ns_per_tuple +
                  static_cast<double>(work.probes) * config_.probe_ns +
                  static_cast<double>(work.agg_updates) * config_.agg_ns;
  double cpu_seconds =
      cpu_ns / 1e9 / static_cast<double>(std::max(total_threads, 1));
  if (breakdown != nullptr) (*breakdown)["cpu"] = cpu_seconds;
  return memory_seconds + cpu_seconds;
}

double QueryTimer::RecordSecondsAmong(
    const TrafficRecord& record, PinningPolicy pinning,
    const std::vector<AccessClass>& background) const {
  if (record.bytes == 0) return 0.0;
  Result<AccessClass> klass = BuildClass(record, record.threads, pinning);
  if (!klass.ok()) return 0.0;
  klass->region_id = 1000;  // disjoint from the background's 2000+ regions
  WorkloadSpec spec;
  spec.classes.push_back(std::move(klass.value()));
  for (const AccessClass& standing : background) {
    spec.classes.push_back(standing);
  }
  BandwidthResult result = model_->EvaluateOnce(spec);
  double gbps = result.per_class.empty() ? 0.0 : result.per_class[0].gbps;
  if (gbps <= 0.0) return 0.0;
  return EffectiveBytes(record) / 1e9 / gbps;
}

double QueryTimer::EstimateSecondsWithBackground(
    const ExecutionProfile& profile, const CpuWork& work, int total_threads,
    PinningPolicy pinning, const std::vector<TrafficRecord>& background,
    std::map<std::string, double>* breakdown) const {
  if (background.empty()) {
    return EstimateSeconds(profile, work, total_threads, pinning, breakdown);
  }
  // The standing background classes, built once; disjoint region ids so
  // the query contends for the device pools, not the same bytes.
  std::vector<AccessClass> standing;
  int next_region = 0;
  for (const TrafficRecord& record : background) {
    if (record.bytes == 0) continue;
    Result<AccessClass> klass = BuildClass(record, record.threads, pinning);
    if (!klass.ok()) continue;
    klass->region_id = 2000 + next_region++;
    standing.push_back(std::move(klass.value()));
  }

  std::map<std::string, std::map<int, double>> phase_socket_seconds;
  for (const TrafficRecord& record : profile.records()) {
    int bucket;
    if (record.media == Media::kSsd) {
      bucket = -1;
    } else {
      bucket = record.worker_socket >= 0 ? record.worker_socket
                                         : record.data_socket;
    }
    phase_socket_seconds[record.label][bucket] +=
        RecordSecondsAmong(record, pinning, standing);
  }
  double memory_seconds = 0.0;
  for (const auto& [label, socket_seconds] : phase_socket_seconds) {
    double phase = 0.0;
    for (const auto& [socket, seconds] : socket_seconds) {
      (void)socket;
      phase = std::max(phase, seconds);
    }
    if (breakdown != nullptr) (*breakdown)[label] = phase;
    memory_seconds += phase;
  }

  double cpu_ns = static_cast<double>(work.tuples_scanned) *
                      config_.scan_ns_per_tuple +
                  static_cast<double>(work.probes) * config_.probe_ns +
                  static_cast<double>(work.agg_updates) * config_.agg_ns;
  double cpu_seconds =
      cpu_ns / 1e9 / static_cast<double>(std::max(total_threads, 1));
  if (breakdown != nullptr) (*breakdown)["cpu"] = cpu_seconds;
  return memory_seconds + cpu_seconds;
}

QueryTimer::ThroughputEstimate QueryTimer::EstimateConcurrentStreams(
    const ExecutionProfile& profile, const CpuWork& work, int streams,
    int total_threads, PinningPolicy pinning) const {
  ThroughputEstimate estimate;
  streams = std::max(streams, 1);
  int threads_per_stream = std::max(1, total_threads / streams);

  // Group records by phase; within a phase, evaluate ALL streams' classes
  // jointly (shared device pools => cross-stream interference), then cost
  // one stream's bytes against its own share.
  std::map<std::string, std::vector<const TrafficRecord*>> phases;
  for (const TrafficRecord& record : profile.records()) {
    phases[record.label].push_back(&record);
  }

  double memory_seconds = 0.0;
  for (const auto& [label, records] : phases) {
    (void)label;
    WorkloadSpec spec;
    std::vector<double> bytes_per_class;
    for (int stream = 0; stream < streams; ++stream) {
      for (const TrafficRecord* record : records) {
        // Each stream runs the record with its share of the workers.
        int record_threads = std::max(1, record->threads / streams);
        Result<AccessClass> klass =
            BuildClass(*record, record_threads, pinning);
        if (!klass.ok()) continue;
        // Streams work on disjoint data sets on the same DIMMs.
        klass->region_id = 1000 + stream;
        spec.classes.push_back(std::move(klass.value()));
        bytes_per_class.push_back(EffectiveBytes(*record));
      }
    }
    if (spec.classes.empty()) continue;
    BandwidthResult result = model_->EvaluateOnce(spec);
    // One stream's phase time: the max over its sockets of summed record
    // times (stream 0's classes are the first `records.size()` entries).
    std::map<int, double> socket_seconds;
    for (size_t i = 0; i < records.size(); ++i) {
      double gbps = result.per_class[i].gbps;
      if (gbps <= 0.0) continue;
      int bucket = records[i]->media == Media::kSsd
                       ? -1
                       : (records[i]->worker_socket >= 0
                              ? records[i]->worker_socket
                              : records[i]->data_socket);
      socket_seconds[bucket] += bytes_per_class[i] / 1e9 / gbps;
    }
    double phase = 0.0;
    for (const auto& [socket, seconds] : socket_seconds) {
      (void)socket;
      phase = std::max(phase, seconds);
    }
    memory_seconds += phase;
  }

  double cpu_ns = static_cast<double>(work.tuples_scanned) *
                      config_.scan_ns_per_tuple +
                  static_cast<double>(work.probes) * config_.probe_ns +
                  static_cast<double>(work.agg_updates) * config_.agg_ns;
  double cpu_seconds =
      cpu_ns / 1e9 / static_cast<double>(std::max(threads_per_stream, 1));

  estimate.stream_seconds = memory_seconds + cpu_seconds;
  if (estimate.stream_seconds > 0.0) {
    estimate.queries_per_hour =
        3600.0 * static_cast<double>(streams) / estimate.stream_seconds;
  }
  return estimate;
}

}  // namespace pmemolap
