// SsbEngine — the SSB query engine, in the paper's two configurations:
//
//  kPmemAware  (§6.2, "Handcrafted C++"): the fact table is striped across
//    the PMEM of both sockets, dimension indexes (Dash) are replicated per
//    socket, workers are pinned and touch only near data, rows are 128 B
//    aligned, intermediates are written sequentially per worker.
//
//  kUnaware    (§6.1, "Hyrise"): everything lives on one socket, joins use
//    a chained (pointer-chasing) hash table, no replication, no explicit
//    data placement — PMEM treated as drop-in DRAM.
//
// Queries execute functionally on the real generated data (results are
// validated against ssb::ReferenceExecutor) while an ExecutionProfile
// records the traffic; QueryTimer projects the runtime — optionally scaled
// to the paper's sf 50 / sf 100 — through the MemSystemModel.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/partitioner.h"
#include "core/profile.h"
#include "durability/durable_table.h"
#include "durability/recovery.h"
#include "engine/dimension_index.h"
#include "engine/kernels.h"
#include "engine/timer.h"
#include "exec/pool.h"
#include "fault/fault_domain.h"
#include "fault/guarded_table.h"
#include "governor/governor.h"
#include "memsys/mem_system.h"
#include "qos/admission.h"
#include "qos/cancel_token.h"
#include "qos/query_options.h"
#include "ssb/column_store.h"
#include "ssb/dbgen.h"
#include "ssb/encoded_column_store.h"
#include "ssb/queries.h"
#include "tiering/tier_manager.h"

namespace pmemolap {

enum class EngineMode {
  kPmemAware,
  kUnaware,
};

const char* EngineModeName(EngineMode mode);

/// How worker parallelism is realized on the host.
enum class ExecutorKind {
  /// No threads: each socket's range executes inline.
  kSerial,
  /// The legacy path: one fresh std::thread per static worker range,
  /// spawned and joined per query.
  kStaticThreads,
  /// The persistent work-stealing pool with per-socket run queues and
  /// morsel-granular dispatch.
  kMorselStealing,
};

const char* ExecutorKindName(ExecutorKind kind);

struct EngineConfig {
  EngineMode mode = EngineMode::kPmemAware;
  /// Where tables, indexes, and intermediates live.
  Media media = Media::kPmem;
  /// Hybrid placements (paper §9 future work): override the media of the
  /// randomly probed indexes and/or the write-heavy intermediates while
  /// the base table stays on `media`. -1 = follow `media`.
  std::optional<Media> index_media;
  std::optional<Media> intermediate_media;
  /// Column-store fact layout: scans touch only the queried columns
  /// instead of the full 128 B row (§2.2's column-store motivation).
  bool columnar = false;
  /// Total worker threads.
  int threads = 36;
  /// Use the cores and memory of both sockets (aware mode; the unaware
  /// engine always runs on one socket, like the paper's Hyrise setup).
  bool use_both_sockets = true;
  /// When false (the Table 1 "2-Socket" rung), data is striped but workers
  /// are not matched to their near partitions: half the scan traffic and
  /// all remote probes cross the UPI.
  bool numa_aware_placement = true;
  PinningPolicy pinning = PinningPolicy::kCores;
  /// Project runtimes to this scale factor (0 = report at the actual sf).
  double project_to_sf = 0.0;
  /// The handcrafted SSB runs on fsdax (Dash needs a filesystem, §6.2).
  bool devdax = false;
  /// Execute worker ranges on real host threads. The modeled runtime is
  /// unaffected; this exercises the engine's concurrency (thread-safe
  /// probes, disjoint ranges, result merging). False forces kSerial.
  bool parallel_execution = true;
  /// Host execution strategy when parallel_execution is on.
  ExecutorKind executor = ExecutorKind::kMorselStealing;
  /// Use the vectorized columnar kernels (selection vectors, batched
  /// probes, flat per-worker aggregation) instead of the row-at-a-time
  /// interpreter. Fault mode always takes the scalar guarded read path.
  bool vectorized = true;
  /// Scan the compressed encoded column store (src/encoding): each
  /// lineorder column is FoR-bit-packed, dictionary-encoded, or raw —
  /// whichever is smallest — at Prepare; the vectorized kernels
  /// block-decode frames on scan (flight-1 predicates run against the
  /// encoded frames directly) and fact-scan traffic is priced at the
  /// per-column *encoded* byte widths, so modeled seconds drop by the
  /// bytes the encodings save. Requires `columnar` (encoded pricing is a
  /// column-width refinement); incompatible with fault/durable modes
  /// (both read the guarded/durable row image). Results are bit-identical
  /// to the raw path in every executor mode; off reproduces today's
  /// modeled seconds exactly.
  bool encoding = false;
  /// Tuples per morsel for the work-stealing executor (0 = default).
  uint64_t morsel_tuples = kDefaultMorselTuples;
  /// Non-null switches the engine into fault mode: the fact table and the
  /// dimension payloads are materialized on the domain's (armed) space as
  /// guarded PMEM state, and every read goes through the recovery path
  /// (retry, scrub, replica failover). When the domain carries a breaker
  /// board, Prepare attaches it to the guarded state and Execute
  /// re-plans morsels away from quarantined sockets. Must outlive the
  /// engine.
  FaultDomain* fault = nullptr;
  /// Non-null gates every Execute through this admission controller:
  /// the engine publishes its load signal (pool depth + fault-domain
  /// degradation), admits at the query's priority, and fails fast with
  /// kResourceExhausted when the class's queue is full. Must outlive the
  /// engine.
  qos::AdmissionController* admission = nullptr;
  /// Non-null enables the closed-loop bandwidth governor: every Execute
  /// applies its current actuator decision (per-socket pool worker caps,
  /// writer-thread clamps on write traffic, 256 B XPLine morsel shaping,
  /// DRAM-staged dimension probes) and feeds one telemetry sample back.
  /// Null = today's fixed behavior, bit-identical modeled seconds. Must
  /// outlive the engine.
  governor::BandwidthGovernor* governor = nullptr;
  /// Standing background traffic (e.g. an ingest load) present for the
  /// whole query: every query record is costed jointly with these classes
  /// (Fig. 11 interference). Given at model scale — project_to_sf does
  /// not rescale it. Empty = today's solo-query timing, bit-identical.
  std::vector<TrafficRecord> background;
  /// Non-null switches the engine into durable mode: the fact rows live
  /// in this crash-consistent DurableTable (fed epoch-by-epoch through
  /// Ingest) instead of db_->lineorder, every read pins a committed
  /// snapshot epoch (QueryOptions::snapshot_epoch), and the table's
  /// standing ingest write traffic joins the query's background classes —
  /// so log writes show up at the governor's write knee. Queries scan
  /// only committed rows: a crash mid-epoch can never surface torn data
  /// to a reader. Mutually exclusive with `fault` guarded mode; forces
  /// the scalar path. Must outlive the engine.
  DurableTable* durable = nullptr;
  /// Non-null enables three-tier DRAM↔PMEM↔SSD placement of the fact
  /// table (larger-than-memory mode): Prepare attaches the manager's
  /// extent map over lineorder, every Execute prices its fact scan
  /// against one placement snapshot (cold extents charge SSD reads),
  /// feeds per-morsel touches into the heat tracker, carries the
  /// manager's migration traffic as standing background load, and ticks
  /// one placement quantum. Null = today's single-tier pricing,
  /// bit-identical results and modeled seconds. Mutually exclusive with
  /// fault/durable modes; requires NUMA-aware placement. Must outlive
  /// the engine.
  tiering::TierManager* tiering = nullptr;
  TimerConfig timer;
};

class SsbEngine {
 public:
  /// `db` and `model` must outlive the engine.
  SsbEngine(const ssb::Database* db, const MemSystemModel* model,
            EngineConfig config);

  /// Builds dimension indexes and the fact partitioning.
  Status Prepare();

  struct QueryRun {
    ssb::QueryOutput output;
    double seconds = 0.0;   ///< projected runtime (at project_to_sf if set)
    ExecutionProfile profile;  ///< traffic at the actual scale factor
    CpuWork cpu;               ///< CPU work at the actual scale factor
    /// Projected seconds per phase ("scan", "probe-part", ..., "cpu") —
    /// where the query's time goes at the projected scale.
    std::map<std::string, double> phase_seconds;
    /// How far execution got (morsels for the stealing executor, ranges
    /// otherwise). Meaningful mostly when a deadline cut the run short.
    qos::QueryProgress progress;
  };

  /// Executes one query functionally and projects its runtime.
  Result<QueryRun> Execute(ssb::QueryId query) const;

  /// Execute under query-lifecycle controls: the query is admitted
  /// through config().admission (if set) at options.priority, its
  /// deadline/retry budget is armed on a cancel token checked *between*
  /// morsels (a kernel never tears mid-morsel), and partial progress is
  /// reported through options.progress and QueryRun::progress. Expired
  /// deadlines return kDeadlineExceeded; shed admissions return
  /// kResourceExhausted.
  Result<QueryRun> Execute(ssb::QueryId query,
                           const qos::QueryOptions& options) const;

  /// Durable mode: appends `count` rows as one crash-consistent ingest
  /// epoch and returns the committed epoch id. The rows become visible to
  /// queries whose snapshot is at or past that epoch. For results to stay
  /// validatable against the reference executor, ingest must follow
  /// db->lineorder prefix order (epoch k extends the ingested prefix).
  Result<uint64_t> Ingest(const ssb::LineorderRow* rows, uint64_t count);

  /// Durable mode: runs crash recovery over the redo log. While recovery
  /// is replaying, config().admission (if set) is paused — TryAdmit fails
  /// fast with kUnavailable and Admit waiters queue — so no query can pin
  /// a snapshot against a half-replayed table; the pause lifts before
  /// returning (on every path, error included). FailedPrecondition
  /// without a durable table.
  Result<RecoveryStats> Recover();

  const EngineConfig& config() const { return config_; }
  /// Scale factor of the loaded database (lineorder rows / 6M).
  double ActualScaleFactor() const;

 private:
  /// Surfaces a non-clean runtime durability oracle
  /// (DurableTable::order_checker) as Internal — called after every
  /// Ingest/Recover so a protocol regression fails the operation that
  /// exposed it instead of silently recording violations.
  Status CheckDurabilityOracle() const;

  struct ProbeCounters {
    uint64_t date = 0;
    uint64_t customer = 0;
    uint64_t supplier = 0;
    uint64_t part = 0;
    uint64_t total() const { return date + customer + supplier + part; }
  };

  /// Runs the query over one contiguous tuple range (probing `socket`'s
  /// index replicas), accumulating results and probe counts. In fault
  /// mode rows and dimension payloads come through the guarded read path
  /// and an unrecoverable fault surfaces as the returned Status. In
  /// durable mode rows come out of the DurableTable's pinned
  /// `snapshot_epoch` (ignored otherwise).
  Status ExecuteRange(ssb::QueryId query, int socket,
                      const TupleRange& range, uint64_t snapshot_epoch,
                      ssb::QueryOutput* out, ProbeCounters* probes,
                      uint64_t* qualifying,
                      const CancelCheck& cancel = CancelCheck()) const;

  /// Accumulator of one host worker. A worker may execute morsels of
  /// several sockets (stealing), so probe/qualifying counts are kept per
  /// partition slot — the per-socket traffic records stay deterministic
  /// under any steal schedule.
  struct WorkerState {
    ssb::QueryOutput output;  ///< scalar-path partial result
    AggTable groups;          ///< vectorized grouped sums
    int64_t scalar_sum = 0;   ///< vectorized flight-1 sum
    bool scalar = false;
    std::vector<ProbeCounters> probes;  ///< per partition slot
    std::vector<uint64_t> qualifying;   ///< per partition slot
    KernelScratch scratch;
  };

  /// Executes tuples [range) of partition slot `slot` into `state`,
  /// through the vectorized kernels or the scalar (guarded-capable) path.
  /// A non-null `decision` routes probes of governor-staged dimensions to
  /// the DRAM replicas (identical payloads: results are bit-identical).
  Status ExecuteRangeInto(ssb::QueryId query, size_t slot,
                          const TupleRange& range, bool vectorized,
                          uint64_t snapshot_epoch,
                          const governor::GovernorDecision* decision,
                          WorkerState* state,
                          const CancelCheck& cancel = CancelCheck()) const;

  /// The partial QueryOutput a worker contributed (merges the flat agg
  /// table into the ordered map for the vectorized path).
  static ssb::QueryOutput DrainWorkerOutput(WorkerState* state);

  /// Emits the traffic records for one socket's share of the work —
  /// `scanned` is the (window/snapshot-clamped) tuple range the socket's
  /// fact scan covered. A non-null `decision` applies the governor's
  /// actuations: staged structures record DRAM traffic and write records
  /// clamp to the decision's writer-thread count. A non-null `tiers`
  /// placement snapshot splits the fact-scan bytes across the tiers the
  /// scanned extents occupy (DRAM/PMEM/SSD media records).
  void RecordSocketTraffic(ssb::QueryId query, int socket,
                           const TupleRange& scanned,
                           const ProbeCounters& probes, uint64_t qualifying,
                           int threads_per_socket,
                           const governor::GovernorDecision* decision,
                           const tiering::TieringSnapshot* tiers,
                           ExecutionProfile* profile) const;

  /// Bytes of fact data one tuple contributes to the scan: the padded row
  /// (128 B) in row layout, or the width of the query's accessed columns
  /// in columnar layout.
  uint64_t ScanBytesPerTuple(ssb::QueryId query) const;

  /// Fact bytes a scan of `tuples` tuples moves: encoded per-column
  /// widths when encoding is on, tuples * ScanBytesPerTuple otherwise.
  uint64_t ScanBytesForTuples(ssb::QueryId query, uint64_t tuples) const;

  /// One replica per socket in aware multi-socket mode (the paper
  /// replicates the dimensions so probes stay near, §6.2), one shared
  /// copy otherwise.
  struct ReplicatedIndex {
    std::vector<std::unique_ptr<DimensionIndex>> copies;
    const DimensionIndex& Near(int socket) const {
      return *copies[static_cast<size_t>(socket) % copies.size()];
    }
  };

  const ssb::Database* db_;
  const MemSystemModel* model_;
  EngineConfig config_;
  ReplicatedIndex date_index_;
  ReplicatedIndex customer_index_;
  ReplicatedIndex supplier_index_;
  ReplicatedIndex part_index_;
  std::vector<SocketPartition> partitions_;
  /// Columnar projection + dense dimension maps for the vectorized
  /// kernels (built in Prepare unless running in fault mode).
  ssb::ColumnStore columns_;
  /// Compressed view of columns_ (EngineConfig::encoding): scheme picked
  /// per column at Prepare. Built in every executor mode so encoded scan
  /// pricing is identical whether or not the kernels actually decode.
  ssb::EncodedColumnStore encoded_;
  DenseDimMap date_dense_;
  DenseDimMap customer_dense_;
  DenseDimMap supplier_dense_;
  DenseDimMap part_dense_;
  /// Governor-staged DRAM replicas of the dense maps (payload-identical
  /// copies built in Prepare when a governor is configured): staging
  /// probes the replica, eviction falls back to the base map — either way
  /// the same payloads, so outputs stay bit-identical.
  DenseDimMap date_staged_;
  DenseDimMap customer_staged_;
  DenseDimMap supplier_staged_;
  DenseDimMap part_staged_;
  /// The persistent work-stealing executor (kMorselStealing only):
  /// spawned once in Prepare, reused by every Execute.
  std::unique_ptr<WorkStealingPool> pool_;
  // Fault mode: the fact byte image lives in a CRC-guarded striped table
  // and the indexes map keys to dense positions into these guarded
  // payload arrays (instead of holding the payloads inline).
  std::unique_ptr<GuardedTable> guarded_fact_;
  std::unique_ptr<GuardedDimension> guarded_date_;
  std::unique_ptr<GuardedDimension> guarded_customer_;
  std::unique_ptr<GuardedDimension> guarded_supplier_;
  std::unique_ptr<GuardedDimension> guarded_part_;
  bool prepared_ = false;
};

}  // namespace pmemolap
