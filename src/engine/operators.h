// A small physical-operator framework over the SSB database — the
// composable counterpart to SsbEngine's hand-optimized query switch.
//
// Pipelines are pull-based (Volcano with batches): Scan -> Join* ->
// Aggregate. Joins probe the same DimensionIndex structures the engine
// uses (Dash or chained), so probe statistics remain comparable, and the
// 13 built-in plans (plans.h) are cross-validated against both the
// reference executor and the engine. Downstream users compose ad-hoc
// star-join queries from the same pieces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "engine/dimension_index.h"
#include "ssb/dbgen.h"
#include "ssb/queries.h"

namespace pmemolap {

/// Which dimension a join step probes.
enum class Dimension { kDate, kCustomer, kSupplier, kPart };

const char* DimensionName(Dimension dim);

/// Decoded attributes of one in-flight tuple. Join operators fill the
/// dimension slots they probe; downstream predicates/extractors read them.
struct Row {
  const ssb::LineorderRow* lineorder = nullptr;
  // Date attributes.
  int16_t year = 0;
  int32_t yearmonthnum = 0;
  int8_t weeknuminyear = 0;
  // Geo attributes (customer / supplier).
  uint8_t c_nation = 0, c_region = 0;
  int32_t c_city = 0;
  uint8_t s_nation = 0, s_region = 0;
  int32_t s_city = 0;
  // Part attributes.
  uint8_t p_mfgr = 0;
  int32_t p_category = 0, p_brand = 0;
};

/// Pull-based operator; Next fills a batch and returns false at end.
class Operator {
 public:
  static constexpr size_t kBatchSize = 1024;

  virtual ~Operator() = default;
  /// Refills `batch` (cleared first). Returns false once exhausted.
  virtual bool Next(std::vector<Row>* batch) = 0;
};

/// Leaf: scans a contiguous lineorder range with an optional pushed-down
/// predicate on the fact columns.
class ScanOperator : public Operator {
 public:
  using Predicate = std::function<bool(const ssb::LineorderRow&)>;

  ScanOperator(const ssb::Database* db, uint64_t begin, uint64_t end,
               Predicate predicate = nullptr)
      : db_(db), pos_(begin), end_(end), predicate_(std::move(predicate)) {}

  bool Next(std::vector<Row>* batch) override;

  uint64_t tuples_scanned() const { return tuples_scanned_; }

 private:
  const ssb::Database* db_;
  uint64_t pos_;
  uint64_t end_;
  Predicate predicate_;
  uint64_t tuples_scanned_ = 0;
};

/// Probes one dimension index per input row, decodes the payload into the
/// Row, and keeps rows passing the (optional) post-join predicate.
class JoinOperator : public Operator {
 public:
  using Predicate = std::function<bool(const Row&)>;

  JoinOperator(std::unique_ptr<Operator> child, Dimension dimension,
               const DimensionIndex* index, Predicate predicate = nullptr)
      : child_(std::move(child)),
        dimension_(dimension),
        index_(index),
        predicate_(std::move(predicate)) {}

  bool Next(std::vector<Row>* batch) override;

  uint64_t probes() const { return probes_; }
  Dimension dimension() const { return dimension_; }

 private:
  std::unique_ptr<Operator> child_;
  Dimension dimension_;
  const DimensionIndex* index_;
  Predicate predicate_;
  uint64_t probes_ = 0;
};

/// Sink: drains its child and produces a scalar sum or grouped sums.
class AggregateOperator {
 public:
  using KeyExtractor = std::function<ssb::GroupKey(const Row&)>;
  using ValueExtractor = std::function<int64_t(const Row&)>;

  /// Scalar aggregate (flight 1): key extractor is null.
  AggregateOperator(std::unique_ptr<Operator> child, KeyExtractor key,
                    ValueExtractor value)
      : child_(std::move(child)),
        key_(std::move(key)),
        value_(std::move(value)) {}

  /// Runs the whole pipeline to completion.
  Result<ssb::QueryOutput> Execute();

  uint64_t rows_aggregated() const { return rows_aggregated_; }

 private:
  std::unique_ptr<Operator> child_;
  KeyExtractor key_;
  ValueExtractor value_;
  uint64_t rows_aggregated_ = 0;
};

}  // namespace pmemolap
