#include "tiering/tier_manager.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "encoding/encoding.h"
#include "topo/pinning.h"

namespace pmemolap {
namespace tiering {

namespace {

/// Modeled steady-state sequential read rate of `media` on socket 0 at a
/// representative 8-thread placement — the per-byte prices the
/// benefit-density ordering uses. Pure function of the model's specs.
double SeqReadGbps(const MemSystemModel& model, Media media) {
  ThreadPlacer placer(model.config().topology);
  Result<ThreadPlacement> placement =
      placer.Place(8, PinningPolicy::kCores, 0);
  if (!placement.ok()) return 1.0;
  AccessClass klass;
  klass.op = OpType::kRead;
  klass.pattern = Pattern::kSequentialIndividual;
  klass.media = media;
  klass.access_size = 4 * kKiB;
  klass.placement = std::move(placement.value());
  klass.data_socket = 0;
  klass.run_index = 2;
  WorkloadSpec spec;
  spec.classes.push_back(std::move(klass));
  return model.EvaluateOnce(spec).total_gbps;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kDramTier:
      return "dram";
    case Tier::kPmemTier:
      return "pmem";
    case Tier::kSsdTier:
      return "ssd";
  }
  return "unknown";
}

Media TierMedia(Tier tier) {
  switch (tier) {
    case Tier::kDramTier:
      return Media::kDram;
    case Tier::kPmemTier:
      return Media::kPmem;
    case Tier::kSsdTier:
      return Media::kSsd;
  }
  return Media::kPmem;
}

const char* TierPolicyName(TierPolicy policy) {
  switch (policy) {
    case TierPolicy::kClosedLoop:
      return "closed-loop";
    case TierPolicy::kStatic:
      return "static";
    case TierPolicy::kLru:
      return "lru";
  }
  return "unknown";
}

TieringSnapshot::TupleShare TieringSnapshot::SplitTuples(uint64_t begin,
                                                         uint64_t end) const {
  TupleShare share;
  if (tiers_.empty() || extent_tuples_ == 0) return share;
  begin = std::min(begin, total_tuples_);
  end = std::min(end, total_tuples_);
  if (begin >= end) return share;
  size_t first = static_cast<size_t>(begin / extent_tuples_);
  size_t last = static_cast<size_t>((end - 1) / extent_tuples_);
  last = std::min(last, tiers_.size() - 1);
  for (size_t e = first; e <= last; ++e) {
    uint64_t extent_begin = static_cast<uint64_t>(e) * extent_tuples_;
    uint64_t extent_end =
        std::min(extent_begin + extent_tuples_, total_tuples_);
    uint64_t overlap = std::min(end, extent_end) - std::max(begin, extent_begin);
    switch (tiers_[e]) {
      case Tier::kDramTier:
        share.dram += overlap;
        break;
      case Tier::kPmemTier:
        share.pmem += overlap;
        break;
      case Tier::kSsdTier:
        share.ssd += overlap;
        break;
    }
  }
  return share;
}

TierManager::TierManager(const MemSystemModel* model, TieringConfig config)
    : model_(model), config_(config) {
  tier_gbps_[static_cast<int>(Tier::kDramTier)] =
      SeqReadGbps(*model_, Media::kDram);
  tier_gbps_[static_cast<int>(Tier::kPmemTier)] =
      SeqReadGbps(*model_, Media::kPmem);
  tier_gbps_[static_cast<int>(Tier::kSsdTier)] =
      ssd_.SequentialRate(/*is_read=*/true);
}

Status TierManager::Attach(uint64_t total_tuples, uint64_t bytes_per_tuple) {
  if (total_tuples == 0 || bytes_per_tuple == 0) {
    return Status::InvalidArgument("tiering: empty fact table");
  }
  if (config_.extent_tuples == 0 ||
      config_.extent_tuples % encoding::kFrameValues != 0) {
    // Whole code frames keep extent boundaries on 256 B XPLines in every
    // encoded column (PR 7 geometry).
    return Status::InvalidArgument(
        "tiering: extent_tuples must be a positive multiple of the 32-value "
        "code frame");
  }
  if (config_.decay <= 0.0 || config_.decay >= 1.0) {
    return Status::InvalidArgument("tiering: decay must be in (0, 1)");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  bytes_per_tuple_ = bytes_per_tuple;
  extents_.clear();
  quanta_ = 0;
  standing_.clear();
  log_.clear();
  // Initial placement for every policy: the pre-tiering static layout —
  // PMEM in address order until the budget is spent, overflow to SSD,
  // DRAM empty (promotion earns it).
  uint64_t pmem_used = 0;
  for (uint64_t begin = 0; begin < total_tuples;
       begin += config_.extent_tuples) {
    Extent extent;
    extent.begin = begin;
    extent.end = std::min(begin + config_.extent_tuples, total_tuples);
    uint64_t bytes = extent.tuples() * bytes_per_tuple_;
    if (pmem_used + bytes <= config_.pmem_budget_bytes) {
      extent.tier = Tier::kPmemTier;
      pmem_used += bytes;
    } else {
      extent.tier = Tier::kSsdTier;
    }
    extent.pending = extent.tier;
    extents_.push_back(extent);
  }
  char line[160];
  std::snprintf(line, sizeof(line),
                "attach policy=%s extents=%zu extent_tuples=%llu pmem=%llu",
                TierPolicyName(config_.policy), extents_.size(),
                static_cast<unsigned long long>(config_.extent_tuples),
                static_cast<unsigned long long>(pmem_used));
  log_.push_back(line);
  return Status::OK();
}

void TierManager::Touch(uint64_t begin_tuple, uint64_t end_tuple) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (extents_.empty() || begin_tuple >= end_tuple) return;
  uint64_t total = extents_.back().end;
  begin_tuple = std::min(begin_tuple, total);
  end_tuple = std::min(end_tuple, total);
  if (begin_tuple >= end_tuple) return;
  size_t first = static_cast<size_t>(begin_tuple / config_.extent_tuples);
  size_t last = static_cast<size_t>((end_tuple - 1) / config_.extent_tuples);
  last = std::min(last, extents_.size() - 1);
  for (size_t e = first; e <= last; ++e) {
    Extent& extent = extents_[e];
    extent.touched_tuples += std::min(end_tuple, extent.end) -
                             std::max(begin_tuple, extent.begin);
  }
}

TieringSnapshot TierManager::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (extents_.empty()) return TieringSnapshot();
  std::vector<Tier> tiers;
  tiers.reserve(extents_.size());
  for (const Extent& extent : extents_) tiers.push_back(extent.tier);
  return TieringSnapshot(config_.extent_tuples, extents_.back().end,
                         std::move(tiers));
}

std::vector<Tier> TierManager::DesiredTiers() const {
  std::vector<Tier> desired(extents_.size(), Tier::kSsdTier);
  const bool lru = config_.policy == TierPolicy::kLru;

  // Rank keys. Closed loop ranks by decayed heat with the incumbent
  // bonus; LRU ranks by recency alone. Ties prefer incumbents (the
  // initial static fill stays put until evidence arrives) then the lower
  // extent id — both total orders, so the desired placement is a pure
  // function of the fold state.
  auto rank = [&](std::vector<size_t>* order, auto&& key, auto&& incumbent) {
    std::sort(order->begin(), order->end(), [&](size_t a, size_t b) {
      double ka = key(a);
      double kb = key(b);
      if (ka != kb) return ka > kb;
      bool ia = incumbent(a);
      bool ib = incumbent(b);
      if (ia != ib) return ia;
      return a < b;
    });
  };

  std::vector<size_t> order(extents_.size());
  std::iota(order.begin(), order.end(), size_t{0});

  // Pass 1: fill the DRAM budget with the hottest (most recent, for LRU)
  // eligible extents. Never-touched extents are not DRAM-eligible.
  auto dram_key = [&](size_t i) {
    const Extent& e = extents_[i];
    if (lru) return static_cast<double>(e.last_touch_quantum);
    return e.heat *
           (e.tier == Tier::kDramTier && !lru ? config_.incumbent_bonus : 1.0);
  };
  auto dram_incumbent = [&](size_t i) {
    return extents_[i].tier == Tier::kDramTier;
  };
  rank(&order, dram_key, dram_incumbent);
  uint64_t dram_used = 0;
  std::vector<bool> placed(extents_.size(), false);
  for (size_t i : order) {
    const Extent& e = extents_[i];
    bool eligible = lru ? e.last_touch_quantum > 0 : e.heat > 0.0;
    if (!eligible) continue;
    uint64_t bytes = e.tuples() * bytes_per_tuple_;
    if (dram_used + bytes > config_.dram_budget_bytes) continue;
    desired[i] = Tier::kDramTier;
    placed[i] = true;
    dram_used += bytes;
  }

  // Pass 2: fill the PMEM budget from the remainder. Incumbency means
  // "already faster than SSD" here — demoting to SSD is what the bonus
  // guards against.
  auto pmem_key = [&](size_t i) {
    const Extent& e = extents_[i];
    if (lru) return static_cast<double>(e.last_touch_quantum);
    return e.heat *
           (e.tier != Tier::kSsdTier ? config_.incumbent_bonus : 1.0);
  };
  auto pmem_incumbent = [&](size_t i) {
    return extents_[i].tier != Tier::kSsdTier;
  };
  rank(&order, pmem_key, pmem_incumbent);
  uint64_t pmem_used = 0;
  for (size_t i : order) {
    if (placed[i]) continue;
    uint64_t bytes = extents_[i].tuples() * bytes_per_tuple_;
    if (pmem_used + bytes > config_.pmem_budget_bytes) continue;
    desired[i] = Tier::kPmemTier;
    pmem_used += bytes;
  }
  return desired;
}

void TierManager::CommitMigration(size_t index, Tier to) {
  Extent& extent = extents_[index];
  Tier from = extent.tier;
  uint64_t bytes = extent.tuples() * bytes_per_tuple_;
  char line[160];
  std::snprintf(line, sizeof(line), "q=%d migrate e%zu %s->%s heat=%.3f",
                quanta_, index, TierName(from), TierName(to), extent.heat);
  log_.push_back(line);
  // Price the copy: a sequential read off the source media and a
  // sequential write onto the target media, one background copier
  // stream each. The SSD legs resolve to SsdDevice rates inside the
  // MemSystemModel; PMEM writes are clamped by the governor's
  // writer-thread actuator like any other background writer.
  TrafficRecord read;
  read.op = OpType::kRead;
  read.pattern = Pattern::kSequentialIndividual;
  read.media = TierMedia(from);
  read.data_socket = 0;
  read.worker_socket = 0;
  read.bytes = bytes;
  read.access_size = 4 * kKiB;
  read.region_bytes = bytes;
  read.threads = 2;
  read.label = "tier-migrate";
  TrafficRecord write = read;
  write.op = OpType::kWrite;
  write.media = TierMedia(to);
  standing_.push_back(std::move(read));
  standing_.push_back(std::move(write));
  extent.tier = to;
  extent.pending = to;
  extent.streak = 0;
}

void TierManager::Advance() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (extents_.empty()) return;
  ++quanta_;
  standing_.clear();

  // Fold the quantum's touches into the decayed heat.
  for (Extent& extent : extents_) {
    extent.heat = extent.heat * config_.decay +
                  static_cast<double>(extent.touched_tuples);
    if (extent.touched_tuples > 0) extent.last_touch_quantum = quanta_;
    extent.touched_tuples = 0;
  }

  uint64_t migrated_bytes = 0;
  size_t moves = 0;
  if (config_.policy != TierPolicy::kStatic) {
    std::vector<Tier> desired = DesiredTiers();

    // Hysteresis (closed loop): a move must be desired for N consecutive
    // quanta before it commits; LRU commits immediately — recency churn
    // is the baseline's designed weakness.
    const int needed = config_.policy == TierPolicy::kClosedLoop
                           ? std::max(config_.hysteresis_quanta, 1)
                           : 1;
    std::vector<size_t> candidates;
    for (size_t i = 0; i < extents_.size(); ++i) {
      Extent& extent = extents_[i];
      if (desired[i] == extent.tier) {
        extent.pending = extent.tier;
        extent.streak = 0;
        continue;
      }
      if (desired[i] != extent.pending) {
        extent.pending = desired[i];
        extent.streak = 1;
      } else if (extent.streak < needed) {
        ++extent.streak;
      }
      if (extent.streak >= needed) candidates.push_back(i);
    }

    // Demotions commit before promotions (they free the capacity the
    // promotions move into), coldest first; promotions go hottest-first —
    // with uniform extents that IS benefit-density order, since the
    // per-byte rate delta of a tier pair is a constant. Capacity and the
    // per-quantum migration budget gate each commit; deferred moves keep
    // their streak and retry next quantum.
    auto is_promotion = [&](size_t i) {
      return static_cast<int>(extents_[i].pending) <
             static_cast<int>(extents_[i].tier);
    };
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](size_t a, size_t b) {
                       bool pa = is_promotion(a);
                       bool pb = is_promotion(b);
                       if (pa != pb) return !pa;  // demotions first
                       if (extents_[a].heat != extents_[b].heat) {
                         return pa ? extents_[a].heat > extents_[b].heat
                                   : extents_[a].heat < extents_[b].heat;
                       }
                       return a < b;
                     });
    uint64_t used[3] = {0, 0, 0};
    for (const Extent& extent : extents_) {
      used[static_cast<int>(extent.tier)] +=
          extent.tuples() * bytes_per_tuple_;
    }
    const uint64_t budget[3] = {config_.dram_budget_bytes,
                                config_.pmem_budget_bytes, ~uint64_t{0}};
    for (size_t i : candidates) {
      Extent& extent = extents_[i];
      Tier to = extent.pending;
      uint64_t bytes = extent.tuples() * bytes_per_tuple_;
      if (config_.migration_budget_bytes > 0 &&
          migrated_bytes + bytes > config_.migration_budget_bytes) {
        continue;  // deferred: streak persists, retries next quantum
      }
      if (used[static_cast<int>(to)] + bytes > budget[static_cast<int>(to)]) {
        continue;  // target tier full until a deferred demotion lands
      }
      used[static_cast<int>(extent.tier)] -= bytes;
      used[static_cast<int>(to)] += bytes;
      migrated_bytes += bytes;
      ++moves;
      CommitMigration(i, to);
    }
  }

  size_t counts[3] = {0, 0, 0};
  double heat_max = 0.0;
  for (const Extent& extent : extents_) {
    ++counts[static_cast<int>(extent.tier)];
    heat_max = std::max(heat_max, extent.heat);
  }
  char line[192];
  std::snprintf(
      line, sizeof(line),
      "q=%d policy=%s tiers d=%zu p=%zu s=%zu moves=%zu migrated=%llu "
      "heat_max=%.3f",
      quanta_, TierPolicyName(config_.policy), counts[0], counts[1],
      counts[2], moves, static_cast<unsigned long long>(migrated_bytes),
      heat_max);
  log_.push_back(line);
}

std::vector<TrafficRecord> TierManager::standing_traffic() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return standing_;
}

std::vector<std::string> TierManager::actuator_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

int TierManager::quanta_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quanta_;
}

std::vector<Tier> TierManager::extent_tiers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Tier> tiers;
  tiers.reserve(extents_.size());
  for (const Extent& extent : extents_) tiers.push_back(extent.tier);
  return tiers;
}

std::vector<double> TierManager::extent_heats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> heats;
  heats.reserve(extents_.size());
  for (const Extent& extent : extents_) heats.push_back(extent.heat);
  return heats;
}

double TierManager::TierReadGbps(Tier tier) const {
  return tier_gbps_[static_cast<int>(tier)];
}

HybridPlacement PlanStructures(const SystemTopology& topology,
                               const StructureSizes& sizes,
                               uint64_t dram_budget_bytes) {
  return HybridPlacer(topology).Place(sizes, dram_budget_bytes);
}

}  // namespace tiering
}  // namespace pmemolap
