#include "sim/timeline.h"

#include <cmath>

namespace pmemolap {

Result<std::vector<TimelineSample>> TimelineSimulator::Run(
    const std::vector<TimelineStep>& steps) {
  if (tick_seconds_ <= 0.0) {
    return Status::InvalidArgument("tick must be positive");
  }
  std::vector<TimelineSample> samples;
  elapsed_seconds_ = 0.0;

  for (const TimelineStep& step : steps) {
    if (step.duration_seconds <= 0.0 && step.total_bytes == 0) {
      return Status::InvalidArgument(
          "step needs a duration or a byte target: " + step.label);
    }
    double phase_elapsed = 0.0;
    uint64_t bytes_moved = 0;
    while (true) {
      if (step.duration_seconds > 0.0 &&
          phase_elapsed >= step.duration_seconds - 1e-12) {
        break;
      }
      if (step.total_bytes > 0 && bytes_moved >= step.total_bytes) break;

      // Stateful evaluation: the first tick of a far phase runs cold, the
      // next ones warm.
      BandwidthResult result = model_->Evaluate(step.spec);
      double tick = tick_seconds_;
      if (step.duration_seconds > 0.0) {
        tick = std::min(tick, step.duration_seconds - phase_elapsed);
      }
      double tick_bytes = result.total_gbps * 1e9 * tick;
      if (step.total_bytes > 0) {
        uint64_t remaining = step.total_bytes - bytes_moved;
        if (tick_bytes >= static_cast<double>(remaining)) {
          // Partial tick to finish the work.
          if (result.total_gbps > 0.0) {
            tick = static_cast<double>(remaining) / 1e9 / result.total_gbps;
          }
          tick_bytes = static_cast<double>(remaining);
        }
      }

      double begin = elapsed_seconds_;
      double end = begin + tick;
      uint64_t moved = static_cast<uint64_t>(std::llround(tick_bytes));
      // Merge with the previous sample when nothing changed.
      if (!samples.empty() && samples.back().label == step.label &&
          std::abs(samples.back().gbps - result.total_gbps) < 1e-9) {
        samples.back().end_seconds = end;
        samples.back().bytes_moved += moved;
      } else {
        samples.push_back(TimelineSample{begin, end, result.total_gbps,
                                         moved, step.label});
      }
      elapsed_seconds_ = end;
      phase_elapsed += tick;
      bytes_moved += moved;
      if (result.total_gbps <= 0.0 && step.total_bytes > 0) {
        return Status::Internal("zero bandwidth with outstanding work: " +
                                step.label);
      }
    }
  }
  return samples;
}

}  // namespace pmemolap
