// TimelineSimulator — time-series execution of workload phases against the
// stateful memory-system model.
//
// The steady-state model answers "what bandwidth does this workload
// sustain?"; the timeline simulator answers "what happens over time":
// the cold->warm far-read transition (paper Fig. 5's first vs second run),
// phase changes (a write burst arriving during a scan), and how long a
// fixed amount of work takes across those transitions.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "memsys/mem_system.h"

namespace pmemolap {

/// One workload phase on the timeline.
struct TimelineStep {
  WorkloadSpec spec;
  /// Run the phase for this long (seconds of simulated time)...
  double duration_seconds = 0.0;
  /// ...or until this many bytes were moved (whichever is set; if both,
  /// the earlier condition ends the phase).
  uint64_t total_bytes = 0;
  std::string label;
};

/// One sampled interval of the simulation.
struct TimelineSample {
  double begin_seconds = 0.0;
  double end_seconds = 0.0;
  GigabytesPerSecond gbps = 0.0;
  uint64_t bytes_moved = 0;
  std::string label;
};

/// Drives a MemSystemModel tick by tick. Each tick evaluates the current
/// phase's spec *statefully* (far touches warm the coherence directory),
/// so transient effects appear in the sample series. Consecutive ticks
/// with the same bandwidth are merged into one sample.
class TimelineSimulator {
 public:
  explicit TimelineSimulator(MemSystemModel* model,
                             double tick_seconds = 0.1)
      : model_(model), tick_seconds_(tick_seconds) {}

  /// Runs the steps back to back from t = 0. Fails on a step with neither
  /// a duration nor a byte target, or a non-positive tick.
  Result<std::vector<TimelineSample>> Run(
      const std::vector<TimelineStep>& steps);

  /// Total simulated time of the last Run.
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  MemSystemModel* model_;
  double tick_seconds_;
  double elapsed_seconds_ = 0.0;
};

}  // namespace pmemolap
