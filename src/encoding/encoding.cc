#include "encoding/encoding.h"

#include <algorithm>
#include <bit>
#include <cstddef>

namespace pmemolap::encoding {
namespace {

/// Code mask for a width (0..32 bits).
uint64_t MaskOf(int width) {
  return width == 0 ? 0 : (uint64_t{1} << width) - 1;
}

/// Conservative per-frame value maximum: ref + largest representable code.
int64_t FrameMax(int32_t ref, int width) {
  return static_cast<int64_t>(ref) + static_cast<int64_t>(MaskOf(width));
}

}  // namespace

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kRaw:
      return "raw";
    case Scheme::kForBitPack:
      return "for-bitpack";
    case Scheme::kDictionary:
      return "dictionary";
  }
  return "?";
}

// --- PackedArray ------------------------------------------------------------

PackedArray PackedArray::Pack(const int32_t* values, uint64_t n) {
  PackedArray packed;
  packed.size_ = n;
  const uint64_t frames = (n + kFrameValues - 1) / kFrameValues;
  packed.refs_.reserve(frames);
  packed.widths_.reserve(frames);
  packed.offsets_.reserve(frames);
  for (uint64_t frame = 0; frame < frames; ++frame) {
    const uint64_t begin = frame * kFrameValues;
    const uint64_t end = std::min(n, begin + kFrameValues);
    int32_t lo = values[begin];
    int32_t hi = values[begin];
    for (uint64_t i = begin + 1; i < end; ++i) {
      lo = std::min(lo, values[i]);
      hi = std::max(hi, values[i]);
    }
    const uint64_t range = static_cast<uint64_t>(
        static_cast<int64_t>(hi) - static_cast<int64_t>(lo));
    const int width = range == 0 ? 0 : std::bit_width(range);
    packed.refs_.push_back(lo);
    packed.widths_.push_back(static_cast<uint8_t>(width));
    packed.offsets_.push_back(static_cast<uint32_t>(packed.words_.size()));
    if (width == 0) continue;  // constant frame: directory only
    // Word-padded frame: codes packed LSB-first from a fresh 64-bit word.
    const uint64_t frame_words =
        ((end - begin) * static_cast<uint64_t>(width) + 63) / 64;
    const size_t base = packed.words_.size();
    packed.words_.resize(base + frame_words, 0);
    for (uint64_t i = begin; i < end; ++i) {
      const uint64_t code = static_cast<uint64_t>(
          static_cast<int64_t>(values[i]) - static_cast<int64_t>(lo));
      const uint64_t bit = (i - begin) * static_cast<uint64_t>(width);
      const size_t word = base + bit / 64;
      const int shift = static_cast<int>(bit % 64);
      packed.words_[word] |= code << shift;
      if (shift + width > 64) {
        packed.words_[word + 1] |= code >> (64 - shift);
      }
    }
  }
  return packed;
}

uint64_t PackedArray::FrameCount(uint64_t frame) const {
  return std::min<uint64_t>(kFrameValues, size_ - frame * kFrameValues);
}

int32_t PackedArray::Get(uint64_t index) const {
  const uint64_t frame = index / kFrameValues;
  const int width = widths_[frame];
  if (width == 0) return refs_[frame];
  const uint64_t bit = (index % kFrameValues) * static_cast<uint64_t>(width);
  const size_t word = offsets_[frame] + bit / 64;
  const int shift = static_cast<int>(bit % 64);
  uint64_t code = words_[word] >> shift;
  if (shift + width > 64) code |= words_[word + 1] << (64 - shift);
  code &= MaskOf(width);
  return static_cast<int32_t>(static_cast<int64_t>(refs_[frame]) +
                              static_cast<int64_t>(code));
}

uint64_t PackedArray::DecodeFrame(uint64_t frame, int32_t* out) const {
  const uint64_t count = FrameCount(frame);
  const int32_t ref = refs_[frame];
  const int width = widths_[frame];
  if (width == 0) {
    for (uint64_t i = 0; i < count; ++i) out[i] = ref;
    return count;
  }
  const uint64_t* words = words_.data() + offsets_[frame];
  const uint64_t mask = MaskOf(width);
  uint64_t bit = 0;
  for (uint64_t i = 0; i < count; ++i, bit += width) {
    const int shift = static_cast<int>(bit % 64);
    uint64_t code = words[bit / 64] >> shift;
    if (shift + width > 64) code |= words[bit / 64 + 1] << (64 - shift);
    out[i] = static_cast<int32_t>(static_cast<int64_t>(ref) +
                                  static_cast<int64_t>(code & mask));
  }
  return count;
}

void PackedArray::Decode(uint64_t begin, uint64_t end, int32_t* out) const {
  uint64_t at = begin;
  while (at < end) {
    const uint64_t frame = at / kFrameValues;
    const uint64_t frame_begin = frame * kFrameValues;
    const uint64_t count = FrameCount(frame);
    if (at == frame_begin && end - at >= count) {
      // Whole frame lands in the output: decode in place.
      at += DecodeFrame(frame, out + (at - begin));
      continue;
    }
    int32_t buffer[kFrameValues];
    DecodeFrame(frame, buffer);
    const uint64_t stop = std::min(end, frame_begin + count);
    for (uint64_t i = at; i < stop; ++i) {
      out[i - begin] = buffer[i - frame_begin];
    }
    at = stop;
  }
}

void PackedArray::AppendMatchingRange(int64_t lo, int64_t hi, uint64_t begin,
                                      uint64_t end,
                                      std::vector<uint64_t>* sel) const {
  if (begin >= end || lo > hi) return;
  const uint64_t first = begin / kFrameValues;
  const uint64_t last = (end - 1) / kFrameValues;
  int32_t buffer[kFrameValues];
  for (uint64_t frame = first; frame <= last; ++frame) {
    const uint64_t frame_begin = frame * kFrameValues;
    const uint64_t slice_begin = std::max(begin, frame_begin);
    const uint64_t slice_end =
        std::min(end, frame_begin + FrameCount(frame));
    const int32_t ref = refs_[frame];
    const int width = widths_[frame];
    const int64_t frame_hi = FrameMax(ref, width);
    // Frame-skip: the frame's conservative value bounds miss the range.
    if (frame_hi < lo || static_cast<int64_t>(ref) > hi) continue;
    if (static_cast<int64_t>(ref) >= lo && frame_hi <= hi) {
      // Frame entirely inside the range: qualify without decoding.
      for (uint64_t i = slice_begin; i < slice_end; ++i) sel->push_back(i);
      continue;
    }
    DecodeFrame(frame, buffer);
    for (uint64_t i = slice_begin; i < slice_end; ++i) {
      const int64_t value = buffer[i - frame_begin];
      if (value >= lo && value <= hi) sel->push_back(i);
    }
  }
}

uint64_t PackedArray::Bytes() const {
  return words_.size() * sizeof(uint64_t) + refs_.size() * sizeof(int32_t) +
         widths_.size() * sizeof(uint8_t) +
         offsets_.size() * sizeof(uint32_t);
}

// --- EncodedColumn ----------------------------------------------------------

EncodedColumn EncodedColumn::EncodeWith(Scheme scheme,
                                        const std::vector<int32_t>& values) {
  EncodedColumn column;
  column.size_ = values.size();
  column.scheme_ = scheme;
  switch (scheme) {
    case Scheme::kRaw:
      column.raw_ = values;
      break;
    case Scheme::kForBitPack:
      column.packed_ = PackedArray::Pack(values.data(), values.size());
      break;
    case Scheme::kDictionary: {
      column.dict_ = values;
      std::sort(column.dict_.begin(), column.dict_.end());
      column.dict_.erase(
          std::unique(column.dict_.begin(), column.dict_.end()),
          column.dict_.end());
      std::vector<int32_t> codes(values.size());
      for (size_t i = 0; i < values.size(); ++i) {
        codes[i] = static_cast<int32_t>(
            std::lower_bound(column.dict_.begin(), column.dict_.end(),
                             values[i]) -
            column.dict_.begin());
      }
      column.packed_ = PackedArray::Pack(codes.data(), codes.size());
      break;
    }
  }
  return column;
}

EncodedColumn EncodedColumn::Encode(const std::vector<int32_t>& values) {
  if (values.empty()) return EncodedColumn();
  EncodedColumn for_packed = EncodeWith(Scheme::kForBitPack, values);
  EncodedColumn dict = EncodeWith(Scheme::kDictionary, values);
  const uint64_t raw_bytes = values.size() * sizeof(int32_t);
  // Ties prefer FoR (cheapest decode), then dictionary, then raw.
  if (for_packed.EncodedBytes() <= dict.EncodedBytes() &&
      for_packed.EncodedBytes() <= raw_bytes) {
    return for_packed;
  }
  if (dict.EncodedBytes() <= raw_bytes) return dict;
  return EncodeWith(Scheme::kRaw, values);
}

int32_t EncodedColumn::Get(uint64_t index) const {
  switch (scheme_) {
    case Scheme::kRaw:
      return raw_[index];
    case Scheme::kForBitPack:
      return packed_.Get(index);
    case Scheme::kDictionary:
      return dict_[static_cast<size_t>(packed_.Get(index))];
  }
  return 0;
}

void EncodedColumn::Decode(uint64_t begin, uint64_t end, int32_t* out) const {
  switch (scheme_) {
    case Scheme::kRaw:
      std::copy(raw_.begin() + static_cast<ptrdiff_t>(begin),
                raw_.begin() + static_cast<ptrdiff_t>(end), out);
      return;
    case Scheme::kForBitPack:
      packed_.Decode(begin, end, out);
      return;
    case Scheme::kDictionary:
      packed_.Decode(begin, end, out);
      for (uint64_t i = 0; i < end - begin; ++i) {
        out[i] = dict_[static_cast<size_t>(out[i])];
      }
      return;
  }
}

void EncodedColumn::GatherInto(const std::vector<uint64_t>& sel,
                               std::vector<int32_t>* out) const {
  out->resize(sel.size());
  if (scheme_ == Scheme::kRaw) {
    for (size_t i = 0; i < sel.size(); ++i) (*out)[i] = raw_[sel[i]];
    return;
  }
  // Selection vectors are ascending, so each touched frame is decoded
  // exactly once into the cache.
  int32_t buffer[kFrameValues];
  uint64_t cached = ~uint64_t{0};
  for (size_t i = 0; i < sel.size(); ++i) {
    const uint64_t frame = sel[i] / kFrameValues;
    if (frame != cached) {
      packed_.DecodeFrame(frame, buffer);
      cached = frame;
    }
    int32_t value = buffer[sel[i] % kFrameValues];
    if (scheme_ == Scheme::kDictionary) {
      value = dict_[static_cast<size_t>(value)];
    }
    (*out)[i] = value;
  }
}

void EncodedColumn::AppendMatchingRange(int32_t lo, int32_t hi,
                                        uint64_t begin, uint64_t end,
                                        std::vector<uint64_t>* sel) const {
  switch (scheme_) {
    case Scheme::kRaw:
      for (uint64_t i = begin; i < end && i < size_; ++i) {
        if (raw_[i] >= lo && raw_[i] <= hi) sel->push_back(i);
      }
      return;
    case Scheme::kForBitPack:
      packed_.AppendMatchingRange(lo, hi, begin, end, sel);
      return;
    case Scheme::kDictionary: {
      // The dictionary is sorted, so the value range [lo, hi] maps to the
      // contiguous code range of the entries it covers.
      const auto code_lo =
          std::lower_bound(dict_.begin(), dict_.end(), lo) - dict_.begin();
      const auto code_hi =
          std::upper_bound(dict_.begin(), dict_.end(), hi) - dict_.begin() -
          1;
      if (code_lo > code_hi) return;  // no dictionary entry in range
      packed_.AppendMatchingRange(code_lo, code_hi, begin, end, sel);
      return;
    }
  }
}

void EncodedColumn::AppendMatchingEquals(int32_t value, uint64_t begin,
                                         uint64_t end,
                                         std::vector<uint64_t>* sel) const {
  if (scheme_ == Scheme::kDictionary) {
    const auto it = std::lower_bound(dict_.begin(), dict_.end(), value);
    if (it == dict_.end() || *it != value) return;  // absent: zero matches
    const int64_t code = it - dict_.begin();
    packed_.AppendMatchingRange(code, code, begin, end, sel);
    return;
  }
  AppendMatchingRange(value, value, begin, end, sel);
}

uint64_t EncodedColumn::EncodedBytes() const {
  switch (scheme_) {
    case Scheme::kRaw:
      return size_ * sizeof(int32_t);
    case Scheme::kForBitPack:
      return packed_.Bytes();
    case Scheme::kDictionary:
      return packed_.Bytes() + dict_.size() * sizeof(int32_t);
  }
  return 0;
}

double EncodedColumn::CompressionRatio() const {
  const uint64_t encoded = EncodedBytes();
  if (encoded == 0) return 1.0;
  return static_cast<double>(RawBytes()) / static_cast<double>(encoded);
}

}  // namespace pmemolap::encoding
