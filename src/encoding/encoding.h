// Encoded columnar storage — lightweight compression for scan-bound OLAP.
//
// The paper's thesis is that OLAP on PMEM is bandwidth-bound; every byte
// a scan does not move is effective bandwidth gained. This layer shrinks
// the int32 SSB columns with two classic light-weight encodings plus a
// pass-through:
//
//   kForBitPack  — frame-of-reference bit-packing: 32 values per frame,
//                  per-frame minimum (the reference) and code width; codes
//                  value - ref packed LSB-first into 64-bit words. Each
//                  frame starts on a fresh word ("lane-aligned"), so block
//                  decode is a branch-free shift/mask loop.
//   kDictionary  — sorted-dictionary encoding for low-cardinality columns:
//                  value -> code via binary search at load, codes packed
//                  with the same frame machinery. The dictionary is sorted,
//                  so code order equals value order and range predicates
//                  map to code ranges.
//   kRaw         — pass-through for incompressible columns.
//
// EncodedColumn::Encode picks the scheme with the smallest encoded size at
// load time; EncodedBytes() reports that size (words + frame directory +
// dictionary) for device-model placement and scan pricing.
//
// Predicate-on-encoded fast paths: a range predicate is evaluated against
// each frame's conservative value bounds [ref, ref + (2^width - 1)] first —
// frames entirely outside the range are skipped without decode, frames
// entirely inside append their indexes without decode. Equality against a
// dictionary column binary-searches the dictionary once; an absent value
// matches nothing without touching the codes.
#pragma once

#include <cstdint>
#include <vector>

namespace pmemolap::encoding {

/// Values per frame. One frame decodes into half a 256 B XPLine of int32s;
/// morsels sized in whole frames keep decode blocks boundary-aligned.
inline constexpr uint64_t kFrameValues = 32;

enum class Scheme {
  kRaw,
  kForBitPack,
  kDictionary,
};

const char* SchemeName(Scheme scheme);

/// Frame-packed code storage shared by the FoR and dictionary schemes:
/// per-frame reference + width directory over word-padded packed codes.
/// Kept public for the encoding tests; engine code goes through
/// EncodedColumn.
class PackedArray {
 public:
  PackedArray() = default;

  /// Packs `n` values into 32-value frames (last frame may be short).
  static PackedArray Pack(const int32_t* values, uint64_t n);

  uint64_t size() const { return size_; }
  uint64_t frames() const { return refs_.size(); }

  int32_t Get(uint64_t index) const;
  /// Decodes values [begin, end) into out[0 .. end-begin).
  void Decode(uint64_t begin, uint64_t end, int32_t* out) const;

  /// Appends (in ascending order) every index in [begin, end) whose value
  /// lies in [lo, hi] — skipping frames whose conservative bounds miss the
  /// range and bulk-appending frames entirely inside it.
  void AppendMatchingRange(int64_t lo, int64_t hi, uint64_t begin,
                           uint64_t end, std::vector<uint64_t>* sel) const;

  /// Storage bytes: packed words plus the per-frame ref/width/offset
  /// directory. This is what a scan of the full array must read.
  uint64_t Bytes() const;

  /// Per-frame code width in bits (tests/bench introspection).
  int WidthOfFrame(uint64_t frame) const { return widths_[frame]; }

  /// Decodes one whole frame (kFrameValues values, short at the tail)
  /// into `out`; returns the number of values decoded.
  uint64_t DecodeFrame(uint64_t frame, int32_t* out) const;

 private:
  uint64_t size_ = 0;
  std::vector<uint64_t> words_;   ///< packed codes, frames word-padded
  std::vector<int32_t> refs_;     ///< per-frame reference (minimum)
  std::vector<uint8_t> widths_;   ///< per-frame code width in bits (0..32)
  std::vector<uint32_t> offsets_; ///< per-frame first index into words_

  /// Values in `frame` (kFrameValues except a short tail frame).
  uint64_t FrameCount(uint64_t frame) const;
};

/// One encoded column: scheme picked at load time by encoded size.
class EncodedColumn {
 public:
  EncodedColumn() = default;

  /// Encodes with the cheapest scheme (ties prefer FoR over dictionary
  /// over raw — cheaper decode at equal size).
  static EncodedColumn Encode(const std::vector<int32_t>& values);
  /// Forces a scheme (tests and the bench's per-scheme comparisons).
  static EncodedColumn EncodeWith(Scheme scheme,
                                  const std::vector<int32_t>& values);

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Scheme scheme() const { return scheme_; }
  /// Dictionary entry count (0 unless kDictionary).
  uint64_t dictionary_size() const { return dict_.size(); }

  int32_t Get(uint64_t index) const;
  /// Block decode of values [begin, end) into out[0 .. end-begin).
  void Decode(uint64_t begin, uint64_t end, int32_t* out) const;
  /// out[i] = value at sel[i] (sel ascending). Decodes each touched frame
  /// once into a cached buffer — post-selection gather without full
  /// decode.
  void GatherInto(const std::vector<uint64_t>& sel,
                  std::vector<int32_t>* out) const;

  /// Range predicate on encoded data: appends every index in [begin, end)
  /// with value in [lo, hi]. FoR skips non-qualifying frames without
  /// decode; dictionary rewrites [lo, hi] to a code range first.
  void AppendMatchingRange(int32_t lo, int32_t hi, uint64_t begin,
                           uint64_t end, std::vector<uint64_t>* sel) const;
  /// Equality predicate: dictionary columns binary-search the value once
  /// (absent value = no matches without scanning); others take the range
  /// path with lo == hi.
  void AppendMatchingEquals(int32_t value, uint64_t begin, uint64_t end,
                            std::vector<uint64_t>* sel) const;

  /// Encoded storage bytes (packed words + frame directory + dictionary;
  /// raw scheme: 4 B per value). The scan-pricing size.
  uint64_t EncodedBytes() const;
  uint64_t RawBytes() const { return size_ * sizeof(int32_t); }
  double CompressionRatio() const;

 private:
  Scheme scheme_ = Scheme::kRaw;
  uint64_t size_ = 0;
  std::vector<int32_t> raw_;    ///< kRaw payload
  PackedArray packed_;          ///< kForBitPack values or kDictionary codes
  std::vector<int32_t> dict_;   ///< sorted distinct values (kDictionary)
};

}  // namespace pmemolap::encoding
