// Byte-size and bandwidth units used throughout the library and benches.
#pragma once

#include <cstdint>
#include <string>

namespace pmemolap {

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;
inline constexpr uint64_t kTiB = 1024ULL * kGiB;

/// CPU cache line size on the modeled Xeon platform.
inline constexpr uint64_t kCacheLineBytes = 64;

/// Intel Optane internal access granularity ("XPLine").
inline constexpr uint64_t kOptaneLineBytes = 256;

/// DIMM interleaving stripe size across the 6 PMEM DIMMs of one socket.
inline constexpr uint64_t kInterleaveBytes = 4 * kKiB;

/// Bandwidths are carried as double GB/s (decimal gigabytes, as in the
/// paper's figures).
using GigabytesPerSecond = double;

/// Formats a byte count compactly, e.g. "64B", "4KB", "2.5GB".
/// Uses binary units but the conventional K/M/G/T suffixes, matching the
/// paper's axis labels.
std::string FormatBytes(uint64_t bytes);

/// Formats a bandwidth as e.g. "40.1 GB/s".
std::string FormatBandwidth(GigabytesPerSecond gbps);

/// Parses sizes like "64", "4K", "2M", "1G" into bytes. Returns 0 on parse
/// failure.
uint64_t ParseBytes(const std::string& text);

}  // namespace pmemolap
