// CRC-32 (IEEE 802.3 polynomial, reflected) for torn-write detection in
// persistent structures. Table-driven, no hardware dependency, stable
// across platforms.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pmemolap {

/// CRC-32 of `size` bytes starting at `data`, seeded with `seed` (pass the
/// previous result to continue a running checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace pmemolap
