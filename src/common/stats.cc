#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace pmemolap {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double GeoMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  ++count_;
}

}  // namespace pmemolap
