// Deterministic pseudo-random number generation.
//
// All data generation (SSB dbgen, random-access workloads) uses this
// splitmix64/xoshiro-style generator so that results are reproducible across
// platforms and standard-library versions (std::mt19937 distributions are not
// portable across implementations).
#pragma once

#include <cstdint>

namespace pmemolap {

/// A small, fast, deterministic 64-bit PRNG (splitmix64 core).
///
/// Not cryptographically secure; intended for workload and data generation.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce the
  /// same sequence on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Returns the next 64 uniformly distributed bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Derives an independent child generator; used to give each table /
  /// column / thread its own stream.
  Rng Fork(uint64_t stream_id) {
    return Rng(Next() ^ (stream_id * 0xD2B74407B1CE6E93ULL + 0x9E3779B9ULL));
  }

 private:
  uint64_t state_;
};

}  // namespace pmemolap
