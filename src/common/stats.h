// Small statistics helpers shared by model code, tests, and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace pmemolap {

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Geometric mean; values must be positive. Returns 0 for an empty vector.
double GeoMean(const std::vector<double>& values);

/// Sample standard deviation; returns 0 for fewer than two values.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated percentile, p in [0, 100]. Returns 0 for an empty
/// vector. The input does not need to be sorted.
double Percentile(std::vector<double> values, double p);

/// Online accumulator for mean / min / max / count without storing samples.
class RunningStats {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pmemolap
