#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace pmemolap {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Cell(double value, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Cell(uint64_t value) {
  return std::to_string(value);
}

std::string TablePrinter::Cell(int value) { return std::to_string(value); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      if (c > 0) line += " | ";
      line += cell;
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "-+-";
    out += std::string(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace pmemolap
