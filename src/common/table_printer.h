// Fixed-width table printing used by every bench binary so that reproduced
// figures/tables come out as aligned, copy-pasteable text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmemolap {

/// Collects rows of string cells and renders them as an aligned text table.
///
/// Example output:
///   Threads | 64B  | 256B | 4KB
///   --------+------+------+-----
///   1       | 2.1  | 2.4  | 2.6
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Cell(double value, int precision = 1);
  static std::string Cell(uint64_t value);
  static std::string Cell(int value);

  /// Renders the table with ' | ' separators and a header underline.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmemolap
