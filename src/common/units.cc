#include "common/units.h"

#include <cctype>
#include <cstdio>

namespace pmemolap {

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  auto emit = [&](double v, const char* suffix) {
    if (v == static_cast<uint64_t>(v)) {
      std::snprintf(buf, sizeof(buf), "%llu%s",
                    static_cast<unsigned long long>(v), suffix);
    } else {
      std::snprintf(buf, sizeof(buf), "%.1f%s", v, suffix);
    }
  };
  if (bytes >= kTiB) {
    emit(static_cast<double>(bytes) / kTiB, "TB");
  } else if (bytes >= kGiB) {
    emit(static_cast<double>(bytes) / kGiB, "GB");
  } else if (bytes >= kMiB) {
    emit(static_cast<double>(bytes) / kMiB, "MB");
  } else if (bytes >= kKiB) {
    emit(static_cast<double>(bytes) / kKiB, "KB");
  } else {
    emit(static_cast<double>(bytes), "B");
  }
  return buf;
}

std::string FormatBandwidth(GigabytesPerSecond gbps) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f GB/s", gbps);
  return buf;
}

uint64_t ParseBytes(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) return 0;
  uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K':
        multiplier = kKiB;
        break;
      case 'M':
        multiplier = kMiB;
        break;
      case 'G':
        multiplier = kGiB;
        break;
      case 'T':
        multiplier = kTiB;
        break;
      case 'B':
        multiplier = 1;
        break;
      default:
        return 0;
    }
  }
  return static_cast<uint64_t>(value * static_cast<double>(multiplier));
}

}  // namespace pmemolap
