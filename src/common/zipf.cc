#include "common/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pmemolap {

ZipfSampler::ZipfSampler(uint64_t n, double s) : exponent_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::MassOf(uint64_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace pmemolap
