// Zipf-distributed sampling for skewed workload generation.
//
// Used by the SSB data generator's skew option and the skew-aware
// partitioning benches: real OLAP key distributions are rarely uniform
// (the paper: "storing data in such a manner and creating optimal
// partitions is not always possible ... e.g., due to skewed data").
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pmemolap {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s via a
/// precomputed CDF and binary search. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  /// n must be >= 1; s must be >= 0.
  ZipfSampler(uint64_t n, double s);

  uint64_t n() const { return static_cast<uint64_t>(cdf_.size()); }
  double exponent() const { return exponent_; }

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng& rng) const;

  /// Probability mass of rank k.
  double MassOf(uint64_t k) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace pmemolap
