// Lightweight Status / Result error handling, modeled after the
// absl::Status / arrow::Result idiom. Library code in pmemolap does not throw
// exceptions; fallible operations return Status or Result<T>.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pmemolap {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// Unrecoverable data corruption or loss (e.g. a poisoned PMEM line that
  /// survived retry, scrub, and failover).
  kDataLoss,
  /// Data is present but wrong: a CRC-verified structure (guarded chunk,
  /// redo-log record) failed its checksum — torn writes and bit rot,
  /// distinct from kDataLoss's "the media cannot serve the bytes at all".
  kCorruption,
  /// The resource is temporarily unusable (e.g. a DIMM in a thermal
  /// throttle window, a degraded UPI link); retrying later may succeed.
  kUnavailable,
  /// The operation's deadline expired before it completed (a query
  /// cancelled between morsels; partial-progress stats accompany it).
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no message and no allocation. Error statuses carry a
/// code and a message describing what went wrong.
///
/// [[nodiscard]]: silently dropping a Status hides failures the fault
/// path depends on. Route results through PMEMOLAP_RETURN_NOT_OK /
/// PMEMOLAP_ASSIGN_OR_RETURN; a genuinely ignorable call must cast to
/// void with a `// lint:allow(discarded-status): <reason>` comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Holds either a T (status is OK) or an error
/// Status. Accessing the value of an errored Result aborts in debug builds.
/// [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}

  /// Implicit from error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates an error Status from an expression, mirroring
/// ARROW_RETURN_NOT_OK.
#define PMEMOLAP_RETURN_NOT_OK(expr)           \
  do {                                         \
    ::pmemolap::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (false)

#define PMEMOLAP_CONCAT_INNER_(a, b) a##b
#define PMEMOLAP_CONCAT_(a, b) PMEMOLAP_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns its Status (works in
/// functions returning Status or Result<U>), on success move-assigns the
/// value to `lhs`, which may declare a new variable:
///
///   PMEMOLAP_ASSIGN_OR_RETURN(Allocation region,
///                             space->Allocate(size, placement));
#define PMEMOLAP_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  PMEMOLAP_ASSIGN_OR_RETURN_IMPL_(                                         \
      PMEMOLAP_CONCAT_(_pmemolap_result_, __LINE__), lhs, rexpr)
#define PMEMOLAP_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr)                \
  auto result = (rexpr);                                                   \
  if (!result.ok()) return result.status();                                \
  lhs = std::move(result).value()

}  // namespace pmemolap
