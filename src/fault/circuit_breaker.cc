#include "fault/circuit_breaker.h"

#include <algorithm>

namespace pmemolap {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::PruneWindow(double now) {
  while (!escalation_times_.empty() &&
         escalation_times_.front() < now - options_.window_seconds) {
    escalation_times_.pop_front();
  }
}

BreakerDecision CircuitBreaker::Decide(double now) {
  switch (state_) {
    case BreakerState::kClosed:
      return BreakerDecision::kNormal;
    case BreakerState::kOpen:
      if (now - opened_at_ >= options_.cooldown_seconds) {
        state_ = BreakerState::kHalfOpen;
        ++counters_.probes;
        return BreakerDecision::kProbe;
      }
      ++counters_.bypasses;
      return BreakerDecision::kBypass;
    case BreakerState::kHalfOpen:
      ++counters_.probes;
      return BreakerDecision::kProbe;
  }
  return BreakerDecision::kNormal;
}

void CircuitBreaker::RecordEscalation(double now) {
  ++counters_.escalations;
  if (state_ != BreakerState::kClosed) return;
  escalation_times_.push_back(now);
  PruneWindow(now);
  if (static_cast<int>(escalation_times_.size()) >=
      std::max(1, options_.trip_threshold)) {
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    escalation_times_.clear();
    ++counters_.trips;
  }
}

void CircuitBreaker::RecordProbe(bool healthy, double now) {
  if (state_ != BreakerState::kHalfOpen) return;
  if (healthy) {
    state_ = BreakerState::kClosed;
    escalation_times_.clear();
    ++counters_.restores;
  } else {
    state_ = BreakerState::kOpen;
    opened_at_ = now;
    ++counters_.reopens;
  }
}

BreakerBoard::BreakerBoard(const FaultInjector* injector, int sockets,
                           BreakerOptions options)
    : injector_(injector) {
  const int n = std::max(1, sockets);
  breakers_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) breakers_.emplace_back(options);
}

BreakerDecision BreakerBoard::Decide(int socket) {
  std::lock_guard<std::mutex> lock(mutex_);
  return breakers_[DomainOf(socket)].Decide(injector_->now());
}

void BreakerBoard::RecordEscalation(int socket) {
  std::lock_guard<std::mutex> lock(mutex_);
  breakers_[DomainOf(socket)].RecordEscalation(injector_->now());
}

void BreakerBoard::RecordProbe(int socket, bool healthy) {
  std::lock_guard<std::mutex> lock(mutex_);
  breakers_[DomainOf(socket)].RecordProbe(healthy, injector_->now());
}

bool BreakerBoard::Quarantined(int socket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breakers_[DomainOf(socket)].state() == BreakerState::kOpen;
}

BreakerState BreakerBoard::state(int socket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breakers_[DomainOf(socket)].state();
}

std::vector<bool> BreakerBoard::HealthySockets() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<bool> healthy(breakers_.size(), true);
  for (size_t s = 0; s < breakers_.size(); ++s) {
    healthy[s] = breakers_[s].state() != BreakerState::kOpen;
  }
  return healthy;
}

BreakerCounters BreakerBoard::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BreakerCounters total;
  for (const CircuitBreaker& breaker : breakers_) {
    const BreakerCounters& c = breaker.counters();
    total.escalations += c.escalations;
    total.trips += c.trips;
    total.bypasses += c.bypasses;
    total.probes += c.probes;
    total.restores += c.restores;
    total.reopens += c.reopens;
  }
  return total;
}

BreakerCounters BreakerBoard::domain_counters(int socket) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return breakers_[DomainOf(socket)].counters();
}

}  // namespace pmemolap
