// FaultDomain — the bundle the engine needs to run in fault mode: the
// armed PmemSpace to materialize guarded state in, the injector that owns
// the scenario, and the guard options for the fact table.
#pragma once

#include "core/pmem_space.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "fault/guarded_table.h"

namespace pmemolap {

struct FaultDomain {
  /// Space the guarded fact/dimension state is allocated from; the
  /// injector should already be armed on it.
  PmemSpace* space = nullptr;
  FaultInjector* injector = nullptr;
  /// Optional per-socket circuit breakers. When set, the engine attaches
  /// them to the guarded state it materializes, and quarantined sockets
  /// are re-planned away from during morsel execution.
  BreakerBoard* breakers = nullptr;
  /// Guard options for the fact-table byte image.
  GuardedTable::Options fact_options;
};

}  // namespace pmemolap
