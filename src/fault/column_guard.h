// GuardedColumnStore — the ssb::ColumnStore projection materialized onto
// guarded PMEM, one CRC-chunked GuardedTable per column. Scans run
// chunk-wise through the guarded read path, so poisoned columns are
// retried, scrubbed or repaired transparently and the scan result stays
// bit-identical to the in-DRAM ColumnStore. Irreparable CRC mismatches
// surface as kCorruption (bytes present but provably wrong); kDataLoss is
// reserved for media that cannot serve the bytes at all.
#pragma once

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "core/pmem_space.h"
#include "fault/fault_injector.h"
#include "fault/guarded_table.h"
// lint:allow(layering): GuardedColumnStore is the fault-hardened mirror
// of the SSB column store, so it names ssb types; ssb itself depends
// only on common, keeping the include graph acyclic. Pending a split of
// the column layout into a lower layer, this edge is audited.
#include "ssb/column_store.h"

namespace pmemolap {

class GuardedColumnStore {
 public:
  /// Materializes each of `store`'s nine columns as a GuardedTable on
  /// `space`. `store` is the repair source and must outlive this object.
  static Result<std::unique_ptr<GuardedColumnStore>> Create(
      PmemSpace* space, FaultInjector* injector,
      const ssb::ColumnStore* store,
      const GuardedTable::Options& options = GuardedTable::Options());

  size_t size() const { return rows_; }

  /// ColumnStore::ScanDiscountedRevenue through the guarded read path —
  /// touches the quantity, discount and extendedprice columns chunk-wise.
  Result<int64_t> ScanDiscountedRevenue(int32_t discount_lo,
                                        int32_t discount_hi,
                                        int32_t quantity_below);

  /// Scrubs every chunk of every column; returns chunks repaired.
  Result<uint64_t> ScrubAll();

  GuardedTable& quantity() { return *quantity_; }
  GuardedTable& discount() { return *discount_; }
  GuardedTable& extendedprice() { return *extendedprice_; }

 private:
  GuardedColumnStore() = default;

  size_t rows_ = 0;
  // Nine columns, same order as the ColumnStore accessors.
  std::unique_ptr<GuardedTable> orderdate_;
  std::unique_ptr<GuardedTable> custkey_;
  std::unique_ptr<GuardedTable> partkey_;
  std::unique_ptr<GuardedTable> suppkey_;
  std::unique_ptr<GuardedTable> quantity_;
  std::unique_ptr<GuardedTable> discount_;
  std::unique_ptr<GuardedTable> extendedprice_;
  std::unique_ptr<GuardedTable> revenue_;
  std::unique_ptr<GuardedTable> supplycost_;
};

}  // namespace pmemolap
