// Bounded retry-with-backoff for reads of poisoned PMEM regions.
//
// Real platforms surface a poisoned line as a machine-check on load; a
// robust engine catches it, backs off, and retries — transient errors
// (ECC eventually corrects) clear after a few attempts, permanent ones do
// not and must be repaired by the scrub layer. Backoff is *modeled*, not
// slept: the accumulated microseconds are charged to the injector's
// recovery-overhead account.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/status.h"
#include "core/pmem_space.h"
#include "fault/fault_injector.h"

namespace pmemolap {

/// Cancellation probe threaded into retry loops: non-OK aborts the loop
/// with that status. Kept as a plain function so the fault layer stays
/// below qos in the DAG — the engine binds it to CancelToken::Check.
using CancelCheck = std::function<Status()>;

struct RetryPolicy {
  /// Read attempts before giving up (the first read plus retries).
  int max_attempts = 4;
  /// Modeled backoff before the first retry, microseconds.
  double initial_backoff_us = 2.0;
  /// Exponential backoff multiplier per retry.
  double backoff_multiplier = 2.0;
  /// Cap on any single retry's modeled backoff: the exponential curve
  /// saturates here instead of growing without bound when max_attempts
  /// is raised (a deep retry loop should cost linear, not exponential,
  /// modeled time past the cap).
  double max_backoff_us = 1000.0;
  /// Deterministic backoff jitter: 0 disables (exact exponential curve).
  /// Any other value seeds a splitmix64 stream per reader, and each
  /// charged backoff is scaled by a factor in
  /// [1 - jitter_fraction, 1 + jitter_fraction) — same seed, same
  /// charges, every run (no wall-clock entropy enters the model).
  uint64_t jitter_seed = 0;
  /// Half-width of the jitter scale band; only read when jitter_seed is
  /// non-zero. Clamped to [0, 1].
  double jitter_fraction = 0.1;
};

/// Reads bytes out of an Allocation with bounded retry on poisoned lines.
/// Returns kDataLoss on exhaustion — the caller escalates to scrub/repair
/// or failover. Not internally synchronized: callers serialize access to
/// the region (GuardedTable / GuardedDimension hold their own mutexes).
class FaultAwareReader {
 public:
  explicit FaultAwareReader(FaultInjector* injector,
                            RetryPolicy policy = RetryPolicy())
      : injector_(injector), policy_(policy) {}

  const RetryPolicy& policy() const { return policy_; }

  /// Copies [offset, offset + size) of `region` into `dst`. Retries
  /// poisoned lines per the policy (transient poisons clear); fails with
  /// kDataLoss when poison survives every attempt. A non-OK `cancel`
  /// between attempts aborts the loop with that status *before* the next
  /// backoff is charged — a deadline that has already fired never pays
  /// for more modeled waiting.
  Status Read(Allocation* region, uint64_t offset, uint64_t size,
              std::byte* dst, const CancelCheck& cancel = CancelCheck());

 private:
  FaultInjector* injector_;
  RetryPolicy policy_;
};

}  // namespace pmemolap
