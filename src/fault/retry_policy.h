// Bounded retry-with-backoff for reads of poisoned PMEM regions.
//
// Real platforms surface a poisoned line as a machine-check on load; a
// robust engine catches it, backs off, and retries — transient errors
// (ECC eventually corrects) clear after a few attempts, permanent ones do
// not and must be repaired by the scrub layer. Backoff is *modeled*, not
// slept: the accumulated microseconds are charged to the injector's
// recovery-overhead account.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/pmem_space.h"
#include "fault/fault_injector.h"

namespace pmemolap {

struct RetryPolicy {
  /// Read attempts before giving up (the first read plus retries).
  int max_attempts = 4;
  /// Modeled backoff before the first retry, microseconds.
  double initial_backoff_us = 2.0;
  /// Exponential backoff multiplier per retry.
  double backoff_multiplier = 2.0;
};

/// Reads bytes out of an Allocation with bounded retry on poisoned lines.
/// Returns kDataLoss on exhaustion — the caller escalates to scrub/repair
/// or failover. Not internally synchronized: callers serialize access to
/// the region (GuardedTable / GuardedDimension hold their own mutexes).
class FaultAwareReader {
 public:
  explicit FaultAwareReader(FaultInjector* injector,
                            RetryPolicy policy = RetryPolicy())
      : injector_(injector), policy_(policy) {}

  const RetryPolicy& policy() const { return policy_; }

  /// Copies [offset, offset + size) of `region` into `dst`. Retries
  /// poisoned lines per the policy (transient poisons clear); fails with
  /// kDataLoss when poison survives every attempt.
  Status Read(Allocation* region, uint64_t offset, uint64_t size,
              std::byte* dst);

 private:
  FaultInjector* injector_;
  RetryPolicy policy_;
};

}  // namespace pmemolap
