#include "fault/retry_policy.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pmemolap {

Status FaultAwareReader::Read(Allocation* region, uint64_t offset,
                              uint64_t size, std::byte* dst,
                              const CancelCheck& cancel) {
  if (offset + size > region->size()) {
    return Status::OutOfRange("read past end of region");
  }
  if (size == 0) return Status::OK();

  bool counted = false;
  double backoff_us = policy_.initial_backoff_us;
  Rng jitter(policy_.jitter_seed);
  const double fraction =
      std::clamp(policy_.jitter_fraction, 0.0, 1.0);
  for (int attempt = 1;; ++attempt) {
    if (!region->IsPoisoned(offset, size)) {
      std::memcpy(dst, region->data() + offset, size);
      return Status::OK();
    }
    if (!counted) {
      injector_->CountPoisonedRead();
      counted = true;
    }
    if (attempt >= policy_.max_attempts) {
      return Status::DataLoss("poison survived " +
                              std::to_string(policy_.max_attempts) +
                              " read attempts");
    }
    if (cancel) {
      // Deadline precedence over backoff: an expired token aborts here,
      // before this retry's backoff is charged — the model never "sleeps"
      // past a deadline that has already fired.
      Status cancelled = cancel();
      if (!cancelled.ok()) return cancelled;
    }
    double charged_us = std::min(backoff_us, policy_.max_backoff_us);
    if (policy_.jitter_seed != 0 && fraction > 0.0) {
      // Scale in [1 - f, 1 + f): decorrelates concurrent retry storms in
      // the model without wall-clock entropy (same seed, same charges).
      const double unit = jitter.NextDouble() * 2.0 - 1.0;
      charged_us = std::max(0.0, charged_us * (1.0 + fraction * unit));
    }
    injector_->CountRetry(charged_us);
    backoff_us = std::min(backoff_us * policy_.backoff_multiplier,
                          policy_.max_backoff_us);
    for (uint64_t line : region->PoisonedLinesIn(offset, size)) {
      if (region->RetryLine(line)) injector_->CountTransientClear();
    }
  }
}

}  // namespace pmemolap
