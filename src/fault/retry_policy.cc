#include "fault/retry_policy.h"

#include <cstring>
#include <string>
#include <vector>

namespace pmemolap {

Status FaultAwareReader::Read(Allocation* region, uint64_t offset,
                              uint64_t size, std::byte* dst) {
  if (offset + size > region->size()) {
    return Status::OutOfRange("read past end of region");
  }
  if (size == 0) return Status::OK();

  bool counted = false;
  double backoff_us = policy_.initial_backoff_us;
  for (int attempt = 1;; ++attempt) {
    if (!region->IsPoisoned(offset, size)) {
      std::memcpy(dst, region->data() + offset, size);
      return Status::OK();
    }
    if (!counted) {
      injector_->CountPoisonedRead();
      counted = true;
    }
    if (attempt >= policy_.max_attempts) {
      return Status::DataLoss("poison survived " +
                              std::to_string(policy_.max_attempts) +
                              " read attempts");
    }
    injector_->CountRetry(backoff_us);
    backoff_us *= policy_.backoff_multiplier;
    for (uint64_t line : region->PoisonedLinesIn(offset, size)) {
      if (region->RetryLine(line)) injector_->CountTransientClear();
    }
  }
}

}  // namespace pmemolap
