#include "fault/column_guard.h"

#include <algorithm>
#include <vector>

namespace pmemolap {

namespace {

Result<std::unique_ptr<GuardedTable>> GuardColumn(
    PmemSpace* space, FaultInjector* injector,
    const std::vector<int32_t>& column, const GuardedTable::Options& options) {
  return GuardedTable::Create(
      space, injector, reinterpret_cast<const std::byte*>(column.data()),
      column.size() * sizeof(int32_t), options);
}

}  // namespace

Result<std::unique_ptr<GuardedColumnStore>> GuardedColumnStore::Create(
    PmemSpace* space, FaultInjector* injector, const ssb::ColumnStore* store,
    const GuardedTable::Options& options) {
  if (store == nullptr || store->empty()) {
    return Status::InvalidArgument("column store must be non-empty");
  }
  std::unique_ptr<GuardedColumnStore> guarded(new GuardedColumnStore());
  guarded->rows_ = store->size();
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->orderdate_,
      GuardColumn(space, injector, store->orderdate(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->custkey_,
      GuardColumn(space, injector, store->custkey(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->partkey_,
      GuardColumn(space, injector, store->partkey(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->suppkey_,
      GuardColumn(space, injector, store->suppkey(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->quantity_,
      GuardColumn(space, injector, store->quantity(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->discount_,
      GuardColumn(space, injector, store->discount(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->extendedprice_,
      GuardColumn(space, injector, store->extendedprice(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->revenue_,
      GuardColumn(space, injector, store->revenue(), options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      guarded->supplycost_,
      GuardColumn(space, injector, store->supplycost(), options));
  return guarded;
}

Result<int64_t> GuardedColumnStore::ScanDiscountedRevenue(
    int32_t discount_lo, int32_t discount_hi, int32_t quantity_below) {
  // Chunked column-at-a-time scan (the flight-1 shape): each column is
  // pulled through the guarded read path one batch at a time.
  constexpr size_t kBatchRows = 16 * 1024;
  std::vector<int32_t> quantity(kBatchRows);
  std::vector<int32_t> discount(kBatchRows);
  std::vector<int32_t> extendedprice(kBatchRows);
  int64_t sum = 0;
  for (size_t row = 0; row < rows_; row += kBatchRows) {
    const size_t n = std::min(kBatchRows, rows_ - row);
    const uint64_t offset = row * sizeof(int32_t);
    const uint64_t bytes = n * sizeof(int32_t);
    PMEMOLAP_RETURN_NOT_OK(quantity_->Read(
        offset, bytes, reinterpret_cast<std::byte*>(quantity.data())));
    PMEMOLAP_RETURN_NOT_OK(discount_->Read(
        offset, bytes, reinterpret_cast<std::byte*>(discount.data())));
    PMEMOLAP_RETURN_NOT_OK(extendedprice_->Read(
        offset, bytes, reinterpret_cast<std::byte*>(extendedprice.data())));
    for (size_t i = 0; i < n; ++i) {
      if (discount[i] >= discount_lo && discount[i] <= discount_hi &&
          quantity[i] < quantity_below) {
        sum += static_cast<int64_t>(extendedprice[i]) *
               static_cast<int64_t>(discount[i]);
      }
    }
  }
  return sum;
}

Result<uint64_t> GuardedColumnStore::ScrubAll() {
  uint64_t repaired = 0;
  GuardedTable* columns[] = {orderdate_.get(), custkey_.get(),
                             partkey_.get(),   suppkey_.get(),
                             quantity_.get(),  discount_.get(),
                             extendedprice_.get(), revenue_.get(),
                             supplycost_.get()};
  for (GuardedTable* column : columns) {
    PMEMOLAP_ASSIGN_OR_RETURN(uint64_t fixed, column->ScrubAll());
    repaired += fixed;
  }
  return repaired;
}

}  // namespace pmemolap
