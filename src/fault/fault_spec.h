// FaultSpec — declarative description of the faults to inject into the
// modeled PMEM platform.
//
// The fault classes follow what early Optane deployments actually report
// (Izraelevitz et al.; Wu et al., "Lessons learned ... Optane DC in DBMS"):
//  - poisoned 256 B internal lines (uncorrectable media errors surfacing
//    as machine-check poison on read),
//  - thermal throttling windows in which a DIMM's media service rates are
//    scaled down,
//  - UPI link degradation (fewer active lanes / reduced transfer rate),
//  - allocation failures (interleave-set regions temporarily unavailable).
//
// A FaultSpec is pure data; the seeded FaultInjector turns it into
// deterministic injections so every fault scenario replays bit-identically
// from a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

namespace pmemolap {

/// One thermal-throttle window: between `start_seconds` and `end_seconds`
/// of platform time, `socket`'s PMEM DIMMs serve at `service_factor` of
/// their healthy rates.
struct ThrottleWindow {
  int socket = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  double service_factor = 0.5;

  bool Contains(double now) const {
    return now >= start_seconds && now < end_seconds;
  }
};

struct FaultSpec {
  /// Seed for all randomized choices (poisoned line placement, transient
  /// vs permanent, probabilistic allocation failures).
  uint64_t seed = 0xF001;

  // --- Media poison --------------------------------------------------------
  /// Expected poisoned 256 B lines per MiB of each PMEM region tagged by
  /// the injector (0 = no poison).
  double poison_lines_per_mib = 0.0;
  /// Fraction of injected poisons that are transient (the DIMM's ECC
  /// corrects them after retries; data survives). The rest are permanent:
  /// the line's bytes are corrupted and only a scrub/rewrite recovers.
  double transient_fraction = 0.5;
  /// Retry attempts after which a transient poison clears.
  int transient_clear_attempts = 2;

  // --- Thermal throttling --------------------------------------------------
  std::vector<ThrottleWindow> throttle_windows;

  // --- UPI degradation -----------------------------------------------------
  /// Multiplier on per-direction UPI payload capacity (1.0 = healthy).
  double upi_capacity_factor = 1.0;

  // --- Allocation failures -------------------------------------------------
  /// Fail every Nth allocation deterministically (0 = off).
  int alloc_failure_period = 0;
  /// Additional independent probability that any allocation fails.
  double alloc_failure_rate = 0.0;

  // --- Recovery cost model -------------------------------------------------
  /// Modeled media rate at which scrub-repairs rewrite chunks, charged to
  /// the recovery-overhead account.
  double repair_gbps = 2.0;

  bool InjectsPoison() const { return poison_lines_per_mib > 0.0; }
  bool InjectsAllocFailures() const {
    return alloc_failure_period > 0 || alloc_failure_rate > 0.0;
  }

  /// A spec that injects nothing (intensity 0).
  static FaultSpec Healthy();
  /// Graduated presets: 0 = healthy, 1 = light, 2 = moderate, 3 = heavy,
  /// 4 = extreme. Used by bench_fault_degradation and the fault tests.
  static FaultSpec Preset(int intensity);
};

inline constexpr int kNumFaultIntensities = 5;

/// Stable name for a Preset intensity ("healthy", "light", ...).
const char* FaultIntensityName(int intensity);

}  // namespace pmemolap
