#include "fault/fault_spec.h"

namespace pmemolap {

FaultSpec FaultSpec::Healthy() { return FaultSpec{}; }

FaultSpec FaultSpec::Preset(int intensity) {
  FaultSpec spec;
  spec.seed = 0xF001 + static_cast<uint64_t>(intensity);
  switch (intensity) {
    case 1:  // light: rare transient poisons, platform otherwise healthy
      spec.poison_lines_per_mib = 0.1;
      spec.transient_fraction = 0.75;
      spec.transient_clear_attempts = 1;
      break;
    case 2:  // moderate: denser poison, one socket throttles, mild UPI loss
      spec.poison_lines_per_mib = 0.5;
      spec.transient_fraction = 0.5;
      spec.transient_clear_attempts = 2;
      spec.throttle_windows.push_back({0, 0.0, 3600.0, 0.8});
      spec.upi_capacity_factor = 0.95;
      break;
    case 3:  // heavy: both sockets throttle, degraded UPI, alloc failures
      spec.poison_lines_per_mib = 2.0;
      spec.transient_fraction = 0.4;
      spec.transient_clear_attempts = 2;
      spec.throttle_windows.push_back({0, 0.0, 3600.0, 0.65});
      spec.throttle_windows.push_back({1, 0.0, 3600.0, 0.75});
      spec.upi_capacity_factor = 0.8;
      spec.alloc_failure_period = 97;
      break;
    case 4:  // extreme: dense permanent poison, hard throttling, flaky
             // allocations
      spec.poison_lines_per_mib = 8.0;
      spec.transient_fraction = 0.25;
      spec.transient_clear_attempts = 3;
      spec.throttle_windows.push_back({0, 0.0, 3600.0, 0.4});
      spec.throttle_windows.push_back({1, 0.0, 3600.0, 0.5});
      spec.upi_capacity_factor = 0.6;
      spec.alloc_failure_period = 23;
      spec.alloc_failure_rate = 0.02;
      break;
    default:  // 0 or out of range: healthy
      break;
  }
  return spec;
}

const char* FaultIntensityName(int intensity) {
  switch (intensity) {
    case 0:
      return "healthy";
    case 1:
      return "light";
    case 2:
      return "moderate";
    case 3:
      return "heavy";
    case 4:
      return "extreme";
  }
  return "unknown";
}

}  // namespace pmemolap
