#include "fault/guarded_table.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace pmemolap {

Result<std::unique_ptr<GuardedTable>> GuardedTable::Create(
    PmemSpace* space, FaultInjector* injector, const std::byte* source,
    uint64_t bytes, const Options& options) {
  if (space == nullptr || injector == nullptr || source == nullptr) {
    return Status::InvalidArgument(
        "GuardedTable needs a space, an injector and a source");
  }
  if (bytes == 0) {
    return Status::InvalidArgument("table must be non-empty");
  }
  if (options.chunk_bytes == 0 ||
      options.chunk_bytes % kOptaneLineBytes != 0) {
    return Status::InvalidArgument(
        "chunk_bytes must be a positive multiple of the 256 B line");
  }

  std::unique_ptr<GuardedTable> table(new GuardedTable());
  table->space_ = space;
  table->injector_ = injector;
  table->source_ = source;
  table->bytes_ = bytes;
  table->options_ = options;

  // Injected allocation failures are periodic or probabilistic, so a
  // bounded number of fresh attempts rides out the failure schedule.
  Status last = Status::OK();
  const int attempts = std::max(1, options.alloc_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Result<StripedAllocation> stripes =
        space->AllocateStriped(bytes, options.media);
    if (stripes.ok()) {
      table->stripes_ = std::move(stripes.value());
      last = Status::OK();
      break;
    }
    last = stripes.status();
    if (last.code() != StatusCode::kUnavailable) return last;
  }
  if (!last.ok()) return last;

  const int n = table->stripes_.num_stripes();
  table->per_stripe_ = bytes / static_cast<uint64_t>(n);
  table->chunk_crcs_.resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    const uint64_t base = table->StripeBase(s);
    const uint64_t len = table->StripeLen(s);
    Allocation& stripe = table->stripes_.stripe(s);
    if (len > 0) std::memcpy(stripe.data(), source + base, len);
    // Checksums come from the true data at ingest time, so a later CRC
    // mismatch is evidence of media corruption, not a stale checksum.
    const uint64_t chunks = table->ChunksInStripe(s);
    std::vector<uint32_t>& crcs = table->chunk_crcs_[static_cast<size_t>(s)];
    crcs.reserve(chunks);
    for (uint64_t c = 0; c < chunks; ++c) {
      const uint64_t begin = c * options.chunk_bytes;
      const uint64_t clen = std::min(options.chunk_bytes, len - begin);
      crcs.push_back(Crc32(source + base + begin, clen));
    }
    injector->CorruptPermanentLines(&stripe);
  }
  return table;
}

uint64_t GuardedTable::num_chunks() const {
  uint64_t total = 0;
  for (int s = 0; s < num_stripes(); ++s) total += ChunksInStripe(s);
  return total;
}

int GuardedTable::StripeOf(uint64_t offset) const {
  const int n = stripes_.num_stripes();
  if (per_stripe_ == 0) return n - 1;
  return static_cast<int>(
      std::min(offset / per_stripe_, static_cast<uint64_t>(n - 1)));
}

uint64_t GuardedTable::StripeBase(int stripe) const {
  return per_stripe_ * static_cast<uint64_t>(stripe);
}

uint64_t GuardedTable::StripeLen(int stripe) const {
  const int n = stripes_.num_stripes();
  return stripe + 1 == n ? bytes_ - per_stripe_ * static_cast<uint64_t>(n - 1)
                         : per_stripe_;
}

uint64_t GuardedTable::ChunksInStripe(int stripe) const {
  return (StripeLen(stripe) + options_.chunk_bytes - 1) / options_.chunk_bytes;
}

Status GuardedTable::Read(uint64_t offset, uint64_t size, std::byte* dst,
                          const CancelCheck& cancel) {
  if (offset + size > bytes_) {
    return Status::OutOfRange("read past end of guarded table");
  }
  if (size == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  return ReadLocked(offset, size, dst, cancel);
}

Status GuardedTable::ReadLocked(uint64_t offset, uint64_t size,
                                std::byte* dst, const CancelCheck& cancel) {
  FaultAwareReader reader(injector_, options_.retry);
  uint64_t done = 0;
  while (done < size) {
    const uint64_t pos = offset + done;
    const int s = StripeOf(pos);
    const uint64_t local = pos - StripeBase(s);
    const uint64_t len = std::min(size - done, StripeLen(s) - local);
    Allocation& stripe = stripes_.stripe(s);
    const uint64_t first = local / options_.chunk_bytes;
    const uint64_t last = (local + len - 1) / options_.chunk_bytes;
    const BreakerDecision decision = breakers_ == nullptr
                                         ? BreakerDecision::kNormal
                                         : breakers_->Decide(s);
    Status status;
    if (decision == BreakerDecision::kBypass) {
      // Quarantined stripe: the breaker has already seen this domain
      // exhaust its retries repeatedly, so skip the retry loop (which
      // would charge backoff on every touch) and scrub straight away.
      if (stripe.IsPoisoned(local, len)) {
        for (uint64_t c = first; c <= last; ++c) {
          Result<bool> scrub = ScrubChunkLocked(s, c);
          if (!scrub.ok()) return scrub.status();
        }
      }
      status = reader.Read(&stripe, local, len, dst + done, cancel);
    } else {
      status = reader.Read(&stripe, local, len, dst + done, cancel);
      const bool first_read_clean = status.ok();
      if (status.code() == StatusCode::kDataLoss) {
        // Retry exhausted (permanent poison, or a transient budget larger
        // than the retry policy) — escalate to the chunk scrubber, then
        // read the repaired bytes.
        if (breakers_ != nullptr) breakers_->RecordEscalation(s);
        for (uint64_t c = first; c <= last; ++c) {
          Result<bool> scrub = ScrubChunkLocked(s, c);
          if (!scrub.ok()) return scrub.status();
        }
        status = reader.Read(&stripe, local, len, dst + done, cancel);
      }
      if (decision == BreakerDecision::kProbe && breakers_ != nullptr) {
        breakers_->RecordProbe(s, first_read_clean);
      }
    }
    PMEMOLAP_RETURN_NOT_OK(status);
    done += len;
  }
  return Status::OK();
}

bool GuardedTable::VerifyChunk(int stripe, uint64_t chunk) const {
  const Allocation& region = stripes_.stripe(stripe);
  const uint64_t begin = chunk * options_.chunk_bytes;
  const uint64_t len = std::min(options_.chunk_bytes, StripeLen(stripe) - begin);
  return Crc32(region.data() + begin, len) ==
         chunk_crcs_[static_cast<size_t>(stripe)][chunk];
}

Result<bool> GuardedTable::ScrubChunkLocked(int stripe, uint64_t chunk) {
  injector_->CountScrub();
  Allocation& region = stripes_.stripe(stripe);
  const uint64_t begin = chunk * options_.chunk_bytes;
  const uint64_t len = std::min(options_.chunk_bytes, StripeLen(stripe) - begin);
  const bool crc_ok = VerifyChunk(stripe, chunk);
  std::vector<uint64_t> lines = region.PoisonedLinesIn(begin, len);
  if (crc_ok) {
    // Bytes are intact (transient poison never corrupts data): a rewrite
    // in place clears the poison without touching the source.
    for (uint64_t line : lines) region.ScrubLine(line);
    return false;
  }
  injector_->CountCrcFailure();
  if (source_ != nullptr) {
    // Per-XPLine forensics for the scrub report: which 256 B lines of the
    // failed chunk actually diverge from the truth.
    const std::byte* truth = source_ + StripeBase(stripe) + begin;
    uint64_t corrupt_lines = 0;
    for (uint64_t pos = 0; pos < len; pos += kOptaneLineBytes) {
      const uint64_t line_len = std::min(kOptaneLineBytes, len - pos);
      if (std::memcmp(region.data() + begin + pos, truth + pos, line_len) !=
          0) {
        ++corrupt_lines;
      }
    }
    injector_->CountCorruptLines(corrupt_lines);
  } else {
    // No truth to diff against: every permanently poisoned line of the
    // chunk is presumed corrupt (transient poison never mutates bytes).
    uint64_t corrupt_lines = 0;
    for (uint64_t line : region.PermanentPoisonedLines()) {
      const uint64_t line_begin = line * kOptaneLineBytes;
      if (line_begin >= begin && line_begin < begin + len) ++corrupt_lines;
    }
    injector_->CountCorruptLines(corrupt_lines);
    return Status::Corruption("chunk CRC mismatch and no repair source");
  }
  // lint:allow(persist-raw-write): scrub repair rewrites the fault
  // layer's media image from the replication source; this sits below
  // the persistence model — the bytes were already persisted once, and
  // FaultRegion has no Store/NtStore ladder to route the rewrite
  // through.
  std::memcpy(region.data() + begin, source_ + StripeBase(stripe) + begin,
              len);
  for (uint64_t line : lines) region.ScrubLine(line);
  injector_->CountRepair(len);
  return true;
}

Result<uint64_t> GuardedTable::ScrubAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t repaired = 0;
  for (int s = 0; s < num_stripes(); ++s) {
    const uint64_t chunks = ChunksInStripe(s);
    for (uint64_t c = 0; c < chunks; ++c) {
      PMEMOLAP_ASSIGN_OR_RETURN(bool fixed, ScrubChunkLocked(s, c));
      if (fixed) ++repaired;
    }
  }
  return repaired;
}

Result<std::unique_ptr<GuardedDimension>> GuardedDimension::Create(
    PmemSpace* space, FaultInjector* injector, std::vector<uint64_t> payloads,
    Media media, int alloc_attempts) {
  if (space == nullptr || injector == nullptr) {
    return Status::InvalidArgument(
        "GuardedDimension needs a space and an injector");
  }
  if (payloads.empty()) {
    return Status::InvalidArgument("dimension payloads must be non-empty");
  }
  std::unique_ptr<GuardedDimension> dim(new GuardedDimension());
  dim->injector_ = injector;
  dim->source_ = std::move(payloads);
  const std::byte* data =
      reinterpret_cast<const std::byte*>(dim->source_.data());
  const uint64_t bytes = dim->source_.size() * sizeof(uint64_t);

  DimensionReplicator replicator(space);
  Status last = Status::OK();
  const int attempts = std::max(1, alloc_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    Result<ReplicatedTable> table = replicator.Replicate(data, bytes, media);
    if (table.ok()) {
      dim->table_ = std::move(table.value());
      last = Status::OK();
      break;
    }
    last = table.status();
    if (last.code() != StatusCode::kUnavailable) return last;
  }
  if (!last.ok()) return last;

  for (int i = 0; i < dim->table_.num_copies(); ++i) {
    injector->CorruptPermanentLines(&dim->table_.copy(i));
  }
  return dim;
}

Result<uint64_t> GuardedDimension::Payload(int socket, uint64_t pos) {
  if (pos >= source_.size()) {
    return Status::OutOfRange("dimension position out of range");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t offset = pos * sizeof(uint64_t);
  const int n = table_.num_copies();
  const int local = ((socket % n) + n) % n;
  const BreakerDecision decision = breakers_ == nullptr
                                       ? BreakerDecision::kNormal
                                       : breakers_->Decide(local);
  if (decision == BreakerDecision::kBypass) {
    // Quarantined local replica: don't probe it (every probe found it
    // poisoned, which is why the breaker tripped) — serve directly from
    // the first clean non-quarantined remote copy. No failover is
    // charged; the breaker already paid the trip_threshold failovers.
    for (int i = 1; i < n; ++i) {
      const int r = (local + i) % n;
      if (breakers_->Quarantined(r)) continue;
      const Allocation& copy = table_.copy(r);
      if (copy.IsPoisoned(offset, sizeof(uint64_t))) continue;
      uint64_t value = 0;
      std::memcpy(&value, copy.data() + offset, sizeof(value));
      return value;
    }
    // No clean remote replica — fall through to the normal path, which
    // ends in repair from the source.
  }
  Result<int> healthy =
      table_.HealthyCopyIndex(socket, offset, sizeof(uint64_t));
  if (healthy.ok()) {
    const bool local_healthy = healthy.value() == local;
    if (!local_healthy) {
      injector_->CountFailover();
      if (breakers_ != nullptr) breakers_->RecordEscalation(local);
    }
    if (decision == BreakerDecision::kProbe && breakers_ != nullptr) {
      breakers_->RecordProbe(local, local_healthy);
    }
    uint64_t value = 0;
    std::memcpy(&value, table_.copy(healthy.value()).data() + offset,
                sizeof(value));
    return value;
  }
  if (healthy.status().code() != StatusCode::kDataLoss) {
    return healthy.status();
  }
  if (breakers_ != nullptr) {
    breakers_->RecordEscalation(local);
    if (decision == BreakerDecision::kProbe) {
      breakers_->RecordProbe(local, false);
    }
  }
  // Every replica is poisoned over this payload — rewrite the local
  // copy's affected lines from the retained source and serve from it.
  Allocation& copy = table_.copy(local);
  const std::byte* source =
      reinterpret_cast<const std::byte*>(source_.data());
  uint64_t repaired_bytes = 0;
  for (uint64_t line : copy.PoisonedLinesIn(offset, sizeof(uint64_t))) {
    const uint64_t begin = line * kOptaneLineBytes;
    const uint64_t len = std::min(kOptaneLineBytes, copy.size() - begin);
    std::memcpy(copy.data() + begin, source + begin, len);
    copy.ScrubLine(line);
    repaired_bytes += len;
  }
  injector_->CountReplicaRepair(repaired_bytes);
  uint64_t value = 0;
  std::memcpy(&value, copy.data() + offset, sizeof(value));
  return value;
}

}  // namespace pmemolap
