// Fault-domain circuit breakers — stop paying per-access recovery cost
// for a domain that keeps failing.
//
// The recovery layer (GuardedTable / GuardedDimension) heals individual
// poisoned reads: bounded retry, scrub, failover. That is the right
// response to *isolated* faults, but a dying DIMM or a throttled socket
// fails on every touch, and retry-every-touch multiplies the modeled
// backoff and failover cost by the access count. A breaker watches the
// escalation rate per fault domain (one domain per socket): after
// `trip_threshold` escalations-to-scrub inside `window_seconds` of
// modeled platform time it trips open and quarantines the domain —
// readers bypass the local probe/retry path entirely and go straight to
// healthy replicas or the scrubber. After `cooldown_seconds` the breaker
// half-opens and lets one probe access through the normal path; a healthy
// probe restores the domain, a failed one reopens it.
//
// Clocked on FaultInjector::now() (modeled platform time), so breaker
// trajectories are deterministic and replayable like everything else in
// the fault layer.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "fault/fault_injector.h"

namespace pmemolap {

enum class BreakerState {
  kClosed,    ///< healthy: accesses take the normal recovery path
  kOpen,      ///< quarantined: accesses bypass the domain
  kHalfOpen,  ///< cooling down: probe accesses test the domain
};

const char* BreakerStateName(BreakerState state);

/// What the breaker tells an access to do.
enum class BreakerDecision {
  kNormal,  ///< take the usual retry/failover path
  kBypass,  ///< domain quarantined: skip local probe, use replicas/scrub
  kProbe,   ///< half-open: take the normal path and report the outcome
};

struct BreakerOptions {
  /// Escalations-to-scrub (or failovers) within the window that trip the
  /// breaker.
  int trip_threshold = 3;
  /// Sliding escalation-counting window, modeled seconds.
  double window_seconds = 1.0;
  /// Open dwell time before the breaker half-opens for a probe.
  double cooldown_seconds = 5.0;
};

/// Evidence of breaker activity; the overload bench compares these
/// against the raw retry/failover counters with breakers disabled.
struct BreakerCounters {
  uint64_t escalations = 0;  ///< recovery escalations reported
  uint64_t trips = 0;        ///< Closed -> Open transitions
  uint64_t bypasses = 0;     ///< accesses served around the quarantine
  uint64_t probes = 0;       ///< half-open accesses let through
  uint64_t restores = 0;     ///< HalfOpen -> Closed (probe healthy)
  uint64_t reopens = 0;      ///< HalfOpen -> Open (probe failed)
};

/// One domain's breaker state machine. Not internally synchronized —
/// BreakerBoard serializes access through its own mutex.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = BreakerOptions())
      : options_(options) {}

  /// Routes one access at modeled time `now`. Open breakers whose
  /// cooldown elapsed transition to half-open here (and return kProbe).
  BreakerDecision Decide(double now);

  /// Reports a recovery escalation (retry exhaustion on this domain's
  /// stripe, or a failover off this domain's replica). Trips the breaker
  /// when the windowed count reaches the threshold.
  void RecordEscalation(double now);

  /// Reports the outcome of a kProbe access: healthy closes the breaker,
  /// unhealthy reopens it for another cooldown.
  void RecordProbe(bool healthy, double now);

  BreakerState state() const { return state_; }
  const BreakerCounters& counters() const { return counters_; }

 private:
  void PruneWindow(double now);

  const BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  double opened_at_ = 0.0;
  std::deque<double> escalation_times_;
  BreakerCounters counters_;
};

/// Per-socket breakers for one modeled platform, clocked by its
/// injector. Thread-safe (one board mutex; breaker decisions are cheap).
class BreakerBoard {
 public:
  /// One breaker per socket in [0, sockets). The injector provides the
  /// modeled clock and must outlive the board.
  BreakerBoard(const FaultInjector* injector, int sockets,
               BreakerOptions options = BreakerOptions());

  BreakerBoard(const BreakerBoard&) = delete;
  BreakerBoard& operator=(const BreakerBoard&) = delete;

  int num_domains() const { return static_cast<int>(breakers_.size()); }

  /// Routes one access to `socket`'s domain (out-of-range sockets wrap,
  /// mirroring replica indexing).
  BreakerDecision Decide(int socket);

  void RecordEscalation(int socket);
  void RecordProbe(int socket, bool healthy);

  /// True while `socket`'s breaker is open (decisions bypass it).
  bool Quarantined(int socket) const;
  BreakerState state(int socket) const;

  /// healthy[s] == !Quarantined(s) — the executor's quarantine re-plan
  /// input (ReassignQuarantinedQueues).
  std::vector<bool> HealthySockets() const;

  /// Sum over all domains.
  BreakerCounters counters() const;
  BreakerCounters domain_counters(int socket) const;

 private:
  size_t DomainOf(int socket) const {
    const int n = num_domains();
    return static_cast<size_t>(((socket % n) + n) % n);
  }

  const FaultInjector* injector_;
  mutable std::mutex mutex_;
  std::vector<CircuitBreaker> breakers_;
};

}  // namespace pmemolap
