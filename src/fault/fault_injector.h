// FaultInjector — seeded, deterministic realization of a FaultSpec.
//
// One injector owns all fault state for a scenario: it tags PmemSpace
// allocations with poisoned lines (via the space's allocation hook),
// injects allocation failures, answers read-time poison checks, models
// transient-poison clearing on retry, and derives a degraded
// MemSystemConfig (throttle windows + UPI degradation) for any platform
// time. Two injectors built from the same spec replay identical faults.
//
// Thread safety: counters are atomics; the RNG and region counter are
// mutex-guarded. Poison state itself lives on each Allocation and must be
// externally synchronized by its owner (GuardedTable / GuardedDimension
// serialize through their own mutexes).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/rng.h"
#include "common/status.h"
#include "core/pmem_space.h"
#include "fault/fault_spec.h"
#include "memsys/mem_system.h"

namespace pmemolap {

/// Snapshot of everything the injector injected and the recovery layer
/// survived — the evidence table of bench_fault_degradation.
struct FaultCounters {
  uint64_t allocations = 0;
  uint64_t allocations_failed = 0;
  uint64_t lines_poisoned = 0;
  uint64_t transient_lines_poisoned = 0;
  uint64_t poisoned_reads = 0;
  uint64_t retries = 0;
  uint64_t transient_clears = 0;
  uint64_t crc_failures = 0;
  /// 256 B XPLines whose bytes diverged from the repair source (or, with
  /// the source dropped, permanently poisoned lines) inside CRC-failed
  /// chunks — the per-line forensics of the scrub report.
  uint64_t corrupt_lines = 0;
  uint64_t chunks_scrubbed = 0;
  uint64_t chunks_repaired = 0;
  uint64_t bytes_repaired = 0;
  uint64_t failovers = 0;
  uint64_t replica_repairs = 0;
  /// Modeled retry backoff, microseconds.
  uint64_t backoff_us = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  const FaultSpec& spec() const { return spec_; }

  /// Installs this injector as `space`'s allocation hook (allocation
  /// failures + poison tagging on fresh PMEM regions). The injector must
  /// outlive the space's use of it.
  void Arm(PmemSpace* space);

  /// The allocation hook body: fails the allocation per the spec's
  /// failure schedule (kUnavailable), otherwise poison-tags PMEM regions.
  Status OnAllocation(Allocation* region);

  /// Deterministically poisons `region` at the spec density (tags lines;
  /// transient poisons get the spec's clear budget, permanent ones none).
  /// Bytes are not touched here — the region is still uninitialized at
  /// hook time; owners call CorruptPermanentLines after loading data.
  void InjectPoison(Allocation* region);

  /// Corrupts the bytes of every permanently poisoned line of `region`
  /// (XOR pattern inside the line). Called by the recovery layer after
  /// real data is in place, so CRC verification genuinely fails until the
  /// line is rewritten from a healthy source. Transient poisons stay
  /// byte-intact (ECC recovers them).
  void CorruptPermanentLines(Allocation* region) const;

  /// Read-time check of [offset, offset + size): OK when no poisoned line
  /// overlaps, kDataLoss otherwise.
  Status CheckRead(const Allocation& region, uint64_t offset,
                   uint64_t size) const;

  // --- Platform time and degradation ---------------------------------------
  /// Advances the platform clock (used to evaluate throttle windows).
  void AdvanceTo(double seconds) { now_seconds_ = seconds; }
  double now() const { return now_seconds_; }

  /// Combined service factor of `socket`'s active throttle windows at the
  /// current platform time (1.0 = healthy).
  double DimmServiceFactor(int socket) const;
  bool ThrottleActive(int socket) const;
  bool AnyThrottleActive() const;
  double UpiCapacityFactor() const { return spec_.upi_capacity_factor; }

  /// `base` with the current throttle windows and UPI degradation applied
  /// — feed to MemSystemModel to evaluate bandwidth on the faulty
  /// platform.
  MemSystemConfig Degrade(const MemSystemConfig& base) const;

  // --- Recovery accounting (bumped by the recovery layer) ------------------
  void CountPoisonedRead() { poisoned_reads_.fetch_add(1, kRelaxed); }
  void CountRetry(double backoff_us) {
    retries_.fetch_add(1, kRelaxed);
    backoff_us_.fetch_add(static_cast<uint64_t>(backoff_us), kRelaxed);
  }
  void CountTransientClear() { transient_clears_.fetch_add(1, kRelaxed); }
  void CountCrcFailure() { crc_failures_.fetch_add(1, kRelaxed); }
  void CountCorruptLines(uint64_t lines) {
    corrupt_lines_.fetch_add(lines, kRelaxed);
  }
  void CountScrub() { chunks_scrubbed_.fetch_add(1, kRelaxed); }
  void CountRepair(uint64_t bytes) {
    chunks_repaired_.fetch_add(1, kRelaxed);
    bytes_repaired_.fetch_add(bytes, kRelaxed);
  }
  void CountFailover() { failovers_.fetch_add(1, kRelaxed); }
  void CountReplicaRepair(uint64_t bytes) {
    replica_repairs_.fetch_add(1, kRelaxed);
    bytes_repaired_.fetch_add(bytes, kRelaxed);
  }

  FaultCounters counters() const;

  /// Modeled wall-clock cost of all recovery so far: retry backoff plus
  /// repair rewrites at the spec's repair rate.
  double ModeledRecoverySeconds() const;

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;

  FaultSpec spec_;
  double now_seconds_ = 0.0;

  std::mutex mutex_;  // guards rng_ and the allocation schedule
  Rng rng_;
  uint64_t allocation_counter_ = 0;
  uint64_t region_counter_ = 0;

  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> allocations_failed_{0};
  std::atomic<uint64_t> lines_poisoned_{0};
  std::atomic<uint64_t> transient_lines_poisoned_{0};
  std::atomic<uint64_t> poisoned_reads_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> transient_clears_{0};
  std::atomic<uint64_t> crc_failures_{0};
  std::atomic<uint64_t> corrupt_lines_{0};
  std::atomic<uint64_t> chunks_scrubbed_{0};
  std::atomic<uint64_t> chunks_repaired_{0};
  std::atomic<uint64_t> bytes_repaired_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> replica_repairs_{0};
  std::atomic<uint64_t> backoff_us_{0};
};

}  // namespace pmemolap
