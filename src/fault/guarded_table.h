// GuardedTable / GuardedDimension — the recovery half of the fault layer.
//
// GuardedTable: a byte table striped across the sockets' PMEM (the fact
// layout of best practice #4), cut into fixed-size chunks each protected
// by a CRC32 (reusing common/crc32). Reads are poison-aware: bounded
// retry first (transient errors clear), then the chunk scrubber — CRC
// verification and a rewrite from the retained source — and only when no
// source is available does the read surface kDataLoss.
//
// GuardedDimension: the per-socket replicated payload store of §6.2's
// dimension tables, with failover — a reader whose near replica is
// poisoned is served from a healthy socket's copy, and when every replica
// is poisoned the local copy is repaired from the retained source.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/pmem_space.h"
#include "core/replicator.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "fault/retry_policy.h"

namespace pmemolap {

class GuardedTable {
 public:
  struct Options {
    /// Chunk granularity of the CRC protection (per stripe).
    uint64_t chunk_bytes = 64 * kKiB;
    Media media = Media::kPmem;
    RetryPolicy retry;
    /// Attempts per stripe when the space's armed hook injects allocation
    /// failures (each attempt advances the injector's failure schedule).
    int alloc_attempts = 8;
  };

  /// Materializes `bytes` of `source` striped across the sockets of
  /// `space`'s topology, computing per-chunk CRCs. The source pointer is
  /// retained as the repair origin (a stand-in for re-fetching from
  /// primary storage) and must outlive the table; the armed injector
  /// poisons the fresh stripes per its spec.
  static Result<std::unique_ptr<GuardedTable>> Create(
      PmemSpace* space, FaultInjector* injector, const std::byte* source,
      uint64_t bytes, const Options& options);

  uint64_t size() const { return bytes_; }
  int num_stripes() const { return stripes_.num_stripes(); }
  uint64_t num_chunks() const;

  /// Copies [offset, offset + size) into `dst`: bounded retry, then
  /// scrub-and-repair of the affected chunks, then a final read. Fails
  /// with kDataLoss only when corrupt data cannot be repaired (source
  /// dropped). A non-OK `cancel` aborts the retry loop between attempts
  /// with that status (the engine binds its query's CancelToken here, so
  /// a deadline cuts a retry storm short instead of charging backoff past
  /// it). Thread-safe.
  Status Read(uint64_t offset, uint64_t size, std::byte* dst,
              const CancelCheck& cancel = CancelCheck());

  /// CRC32 check of one chunk of one stripe against its stored checksum.
  bool VerifyChunk(int stripe, uint64_t chunk) const;

  /// Verifies every chunk, rewriting corrupt or poisoned ones from the
  /// source; returns the number of chunks repaired. Thread-safe.
  Result<uint64_t> ScrubAll();

  /// Forgets the repair source: subsequent unrecoverable reads surface
  /// kDataLoss (exercises the terminal path in tests).
  void DropSource() { source_ = nullptr; }

  /// Routes reads through per-stripe circuit breakers: retry exhaustion
  /// escalations feed the breaker of the stripe's socket, and reads of a
  /// quarantined stripe skip the retry loop (straight to scrub). The
  /// board must outlive the table; nullptr detaches.
  void AttachBreakers(BreakerBoard* breakers) { breakers_ = breakers; }

 private:
  GuardedTable() = default;

  /// Stripe index holding global byte `offset`.
  int StripeOf(uint64_t offset) const;
  /// First global byte of `stripe`.
  uint64_t StripeBase(int stripe) const;
  /// Logical bytes held by `stripe`.
  uint64_t StripeLen(int stripe) const;
  uint64_t ChunksInStripe(int stripe) const;

  /// Scrubs one chunk (caller holds mutex_): clears poison on intact
  /// data, rewrites from source when the CRC fails. Returns whether the
  /// chunk was repaired from the source.
  Result<bool> ScrubChunkLocked(int stripe, uint64_t chunk);
  Status ReadLocked(uint64_t offset, uint64_t size, std::byte* dst,
                    const CancelCheck& cancel);

  PmemSpace* space_ = nullptr;
  FaultInjector* injector_ = nullptr;
  BreakerBoard* breakers_ = nullptr;
  const std::byte* source_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t per_stripe_ = 0;  ///< bytes per stripe (last stripe: remainder)
  StripedAllocation stripes_;
  std::vector<std::vector<uint32_t>> chunk_crcs_;  ///< [stripe][chunk]
  Options options_;
  std::mutex mutex_;
};

class GuardedDimension {
 public:
  /// Replicates `payloads` onto every socket's `media` through
  /// `replicator` (retrying injected allocation failures) and retains the
  /// payload vector as the repair source.
  static Result<std::unique_ptr<GuardedDimension>> Create(
      PmemSpace* space, FaultInjector* injector,
      std::vector<uint64_t> payloads, Media media, int alloc_attempts = 8);

  size_t size() const { return source_.size(); }
  int num_copies() const { return table_.num_copies(); }

  /// Payload at `pos`, read from the healthy replica nearest `socket`:
  /// local copy when clean, failover to another socket's copy otherwise,
  /// repair of the local copy from the source as the last resort.
  /// Thread-safe.
  Result<uint64_t> Payload(int socket, uint64_t pos);

  /// Routes reads through per-socket circuit breakers: failovers off a
  /// replica escalate its breaker, and reads against a quarantined
  /// replica bypass the local health probe (served straight from a clean
  /// remote copy). The board must outlive the dimension; nullptr
  /// detaches.
  void AttachBreakers(BreakerBoard* breakers) { breakers_ = breakers; }

  const ReplicatedTable& table() const { return table_; }
  ReplicatedTable& table() { return table_; }

 private:
  GuardedDimension() = default;

  FaultInjector* injector_ = nullptr;
  BreakerBoard* breakers_ = nullptr;
  std::vector<uint64_t> source_;
  ReplicatedTable table_;
  std::mutex mutex_;
};

}  // namespace pmemolap
