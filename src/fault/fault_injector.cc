#include "fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace pmemolap {

FaultInjector::FaultInjector(FaultSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {}

void FaultInjector::Arm(PmemSpace* space) {
  space->set_allocation_hook(
      [this](Allocation* region) { return OnAllocation(region); });
}

Status FaultInjector::OnAllocation(Allocation* region) {
  allocations_.fetch_add(1, kRelaxed);
  bool fail = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++allocation_counter_;
    if (spec_.alloc_failure_period > 0 &&
        allocation_counter_ %
                static_cast<uint64_t>(spec_.alloc_failure_period) ==
            0) {
      fail = true;
    }
    if (!fail && spec_.alloc_failure_rate > 0.0 &&
        rng_.NextBool(spec_.alloc_failure_rate)) {
      fail = true;
    }
  }
  if (fail) {
    allocations_failed_.fetch_add(1, kRelaxed);
    return Status::Unavailable(
        "injected allocation failure on socket " +
        std::to_string(region->placement().socket));
  }
  InjectPoison(region);
  return Status::OK();
}

void FaultInjector::InjectPoison(Allocation* region) {
  // Poison models Optane media errors; DRAM-backed regions stay clean.
  if (!spec_.InjectsPoison() ||
      region->placement().media != Media::kPmem || region->empty()) {
    return;
  }
  const uint64_t lines = (region->size() + kOptaneLineBytes - 1) /
                         kOptaneLineBytes;
  Rng rng(0);
  {
    // Each region gets its own deterministic stream keyed by registration
    // order, so the poison layout replays exactly across runs.
    std::lock_guard<std::mutex> lock(mutex_);
    rng = rng_.Fork(++region_counter_);
  }
  const double size_mib =
      static_cast<double>(region->size()) / (1024.0 * 1024.0);
  double expected = spec_.poison_lines_per_mib * size_mib;
  uint64_t count = static_cast<uint64_t>(expected);
  if (rng.NextBool(expected - static_cast<double>(count))) ++count;
  count = std::min(count, lines);

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t line = rng.NextBelow(lines);
    bool transient = rng.NextBool(spec_.transient_fraction);
    region->PoisonLine(line,
                       transient ? spec_.transient_clear_attempts : 0);
    lines_poisoned_.fetch_add(1, kRelaxed);
    if (transient) transient_lines_poisoned_.fetch_add(1, kRelaxed);
  }
}

void FaultInjector::CorruptPermanentLines(Allocation* region) const {
  // Permanent poison is real corruption: flip bytes inside the line so
  // only a rewrite from a healthy source restores the data (and CRC
  // verification genuinely detects the damage).
  for (uint64_t line : region->PermanentPoisonedLines()) {
    uint64_t begin = line * kOptaneLineBytes;
    uint64_t end = std::min(begin + kOptaneLineBytes, region->size());
    for (uint64_t b = begin; b < end; b += 16) {
      region->data()[b] ^= std::byte{0xA5};
    }
  }
}

Status FaultInjector::CheckRead(const Allocation& region, uint64_t offset,
                                uint64_t size) const {
  if (!region.IsPoisoned(offset, size)) return Status::OK();
  return Status::DataLoss("poisoned line in read of " +
                          std::to_string(size) + " bytes at offset " +
                          std::to_string(offset));
}

double FaultInjector::DimmServiceFactor(int socket) const {
  double factor = 1.0;
  for (const ThrottleWindow& window : spec_.throttle_windows) {
    if (window.socket == socket && window.Contains(now_seconds_)) {
      factor = std::min(factor, window.service_factor);
    }
  }
  return factor;
}

bool FaultInjector::ThrottleActive(int socket) const {
  return DimmServiceFactor(socket) < 1.0;
}

bool FaultInjector::AnyThrottleActive() const {
  for (const ThrottleWindow& window : spec_.throttle_windows) {
    if (window.Contains(now_seconds_) && window.service_factor < 1.0) {
      return true;
    }
  }
  return false;
}

MemSystemConfig FaultInjector::Degrade(const MemSystemConfig& base) const {
  MemSystemConfig degraded = base;
  int sockets = base.topology.sockets();
  degraded.pmem_service_factor.assign(static_cast<size_t>(sockets), 1.0);
  for (int socket = 0; socket < sockets; ++socket) {
    degraded.pmem_service_factor[static_cast<size_t>(socket)] =
        DimmServiceFactor(socket);
  }
  degraded.upi_capacity_factor =
      base.upi_capacity_factor * spec_.upi_capacity_factor;
  return degraded;
}

FaultCounters FaultInjector::counters() const {
  FaultCounters c;
  c.allocations = allocations_.load(kRelaxed);
  c.allocations_failed = allocations_failed_.load(kRelaxed);
  c.lines_poisoned = lines_poisoned_.load(kRelaxed);
  c.transient_lines_poisoned = transient_lines_poisoned_.load(kRelaxed);
  c.poisoned_reads = poisoned_reads_.load(kRelaxed);
  c.retries = retries_.load(kRelaxed);
  c.transient_clears = transient_clears_.load(kRelaxed);
  c.crc_failures = crc_failures_.load(kRelaxed);
  c.corrupt_lines = corrupt_lines_.load(kRelaxed);
  c.chunks_scrubbed = chunks_scrubbed_.load(kRelaxed);
  c.chunks_repaired = chunks_repaired_.load(kRelaxed);
  c.bytes_repaired = bytes_repaired_.load(kRelaxed);
  c.failovers = failovers_.load(kRelaxed);
  c.replica_repairs = replica_repairs_.load(kRelaxed);
  c.backoff_us = backoff_us_.load(kRelaxed);
  return c;
}

double FaultInjector::ModeledRecoverySeconds() const {
  FaultCounters c = counters();
  double backoff = static_cast<double>(c.backoff_us) * 1e-6;
  double repair =
      spec_.repair_gbps > 0.0
          ? static_cast<double>(c.bytes_repaired) / (spec_.repair_gbps * 1e9)
          : 0.0;
  return backoff + repair;
}

}  // namespace pmemolap
