// Model of a single Intel Optane DC Persistent Memory DIMM.
//
// Mechanisms modeled (paper Sections 2.1, 3.1, 4.1):
//  - 256 B internal access granularity ("XPLine"): the CPU issues 64 B cache
//    lines, the DIMM reads/writes 256 B internally. Sub-line *sequential*
//    accesses are served from the internal line buffer without
//    amplification; sub-line *random* accesses amplify by 256/size.
//  - Writes smaller than 256 B that cannot be combined trigger a
//    read-modify-write of the full internal line.
//  - Per-DIMM sequential service rates: the 6 DIMMs of a socket together
//    give the paper's ~40 GB/s read and ~12.6 GB/s write peaks.
//  - Device-internal prefetch: sequential streams are detected per DIMM and
//    achieve the full sequential rate; random access loses the prefetch.
//  - Wear: media writes (after amplification) are accounted per DIMM.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace pmemolap {

/// Tunable Optane DIMM parameters. Defaults are calibrated so that a socket
/// of six DIMMs reproduces the paper's aggregate numbers.
struct OptaneDimmSpec {
  /// Sequential read service rate per DIMM. 6 x 6.75 ~= 40.5 GB/s socket
  /// peak (paper Fig. 3).
  GigabytesPerSecond seq_read_gbps = 6.75;
  /// Sequential write service rate per DIMM after ideal write-combining.
  /// 6 x 2.1 ~= 12.6 GB/s socket peak (paper Fig. 7).
  GigabytesPerSecond seq_write_gbps = 2.1;
  /// Random-read service ceiling per DIMM for >= 256 B accesses; the paper
  /// measures random reads at ~2/3 of the sequential peak for large
  /// accesses (Fig. 12a).
  GigabytesPerSecond random_read_gbps = 4.5;
  /// Random-write service ceiling per DIMM for >= 256 B accesses; ~2/3 of
  /// the sequential write peak (Fig. 13a).
  GigabytesPerSecond random_write_gbps = 1.4;
  /// Internal access granularity.
  uint64_t internal_line_bytes = kOptaneLineBytes;
  /// Capacity of the internal write-combining buffer (XPBuffer).
  uint64_t write_buffer_bytes = 16 * kKiB;
  /// Media endurance of one 128 GB DIMM (total petabytes written; Optane
  /// 100-series datasheet order of magnitude). PMEM "wears out over time"
  /// like SSDs (paper §2.1).
  double endurance_petabytes = 292.0;
};

/// Per-DIMM amplification math and wear accounting.
class OptaneDimm {
 public:
  explicit OptaneDimm(const OptaneDimmSpec& spec = OptaneDimmSpec())
      : spec_(spec) {}

  const OptaneDimmSpec& spec() const { return spec_; }

  /// Media bytes read per useful byte for a read of `access_size`.
  /// Sequential streams never amplify (consecutive requests hit the
  /// buffered internal line); random sub-line reads fetch a full 256 B line.
  double ReadAmplification(uint64_t access_size, bool sequential) const;

  /// Media bytes written per useful byte for a write of `access_size`,
  /// given the fraction [0,1] of sub-line writes that the write-combining
  /// buffer managed to merge into full internal lines. Uncombined sub-line
  /// writes pay a read-modify-write of the full line (counted as 2x line
  /// traffic: one read + one write).
  double WriteAmplification(uint64_t access_size,
                            double combine_fraction) const;

  /// Useful-byte service rate for reads at the given amplification.
  GigabytesPerSecond ReadServiceRate(bool sequential,
                                     double amplification) const;

  /// Useful-byte service rate for writes at the given amplification.
  GigabytesPerSecond WriteServiceRate(bool sequential,
                                      double amplification) const;

  /// Records `useful_bytes` of writes at `amplification`; accumulates media
  /// wear.
  void RecordWrite(uint64_t useful_bytes, double amplification);

  /// Total media bytes written (wear metric).
  uint64_t media_bytes_written() const { return media_bytes_written_; }

  /// Years until this DIMM's endurance budget is exhausted at a sustained
  /// media write rate (after amplification). Returns +inf for rate 0.
  double LifetimeYears(GigabytesPerSecond media_write_gbps) const;

 private:
  OptaneDimmSpec spec_;
  uint64_t media_bytes_written_ = 0;
};

}  // namespace pmemolap
