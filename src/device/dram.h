// Model of the DDR4 DRAM subsystem of one socket (paper baseline).
//
// Six channels per socket (16 GB DIMM each). Key behaviours from the paper:
//  - Sequential read peaks ~100 GB/s per socket, ~185 GB/s for two sockets
//    (Fig. 6b); far access is capped by the UPI at ~33 GB/s.
//  - Small allocations (e.g. the 2 GB random-access region of Fig. 12b)
//    land on ONE NUMA node, so only 3 of 6 channels serve requests; large
//    (~90 GB) regions use all channels and nearly reach sequential
//    bandwidth even for random access (§5.2).
//  - Random access below ~4 KB does not reach peak bandwidth (Figs. 12b/13b).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace pmemolap {

/// Tunable DRAM parameters; defaults calibrated to the paper's DRAM curves.
struct DramSpec {
  /// Sequential read service rate per channel: 6 x 16.8 ~= 101 GB/s socket.
  GigabytesPerSecond channel_seq_read_gbps = 16.8;
  /// Sequential write service rate per channel: 6 x 14.8 ~= 89 GB/s socket
  /// (calibrated so the 2 GB-region random writes of Fig. 13b reach
  /// ~40 GB/s on 3 channels).
  GigabytesPerSecond channel_seq_write_gbps = 14.8;
  /// Random service ceiling per channel at >= 4 KB accesses (~90% of
  /// sequential, §5.2 "this scaling reaches 90% of DRAM's sequential
  /// performance" on large regions).
  double random_peak_fraction = 0.95;
  /// Random efficiency floor for 64 B accesses (~50% of sequential peak).
  double random_small_fraction = 0.5;
  /// Region size below which an allocation stays on a single NUMA node
  /// (half the channels). The paper's 2 GB hash-index region shows this.
  uint64_t single_node_region_bytes = 4 * kGiB;
};

/// Channel-level DRAM service model for one socket.
class DramSocket {
 public:
  DramSocket(const DramSpec& spec, int channels)
      : spec_(spec), channels_(channels) {}

  const DramSpec& spec() const { return spec_; }
  int channels() const { return channels_; }

  /// Channels actually serving a region of `region_bytes` (half for small
  /// single-NUMA-node allocations).
  double ActiveChannels(uint64_t region_bytes) const;

  /// Socket-level sequential service rate.
  GigabytesPerSecond SequentialRate(bool is_read) const;

  /// Socket-level random-access service rate for the given access size and
  /// region size. Interpolates the per-size efficiency between the 64 B
  /// floor and the >= 4 KB peak.
  GigabytesPerSecond RandomRate(bool is_read, uint64_t access_size,
                                uint64_t region_bytes) const;

 private:
  DramSpec spec_;
  int channels_;
};

}  // namespace pmemolap
