#include "device/write_combining.h"

#include <algorithm>
#include <cmath>

namespace pmemolap {

WriteCombineResult WriteCombiningModel::Evaluate(int threads,
                                                 uint64_t access_size,
                                                 bool grouped,
                                                 double concurrent_dimms,
                                                 uint64_t buffer_bytes) const {
  WriteCombineResult result;
  if (threads < 1 || access_size == 0) return result;
  concurrent_dimms = std::max(concurrent_dimms, 1.0);

  // --- Sub-line combine success -------------------------------------------
  if (grouped) {
    // Interleaved stores from other threads interrupt line fills; success
    // decays with the number of contending threads.
    result.combine_fraction =
        spec_.individual_combine /
        (1.0 + spec_.grouped_interference_rate *
                   static_cast<double>(threads - 1));
  } else {
    result.combine_fraction = spec_.individual_combine;
  }

  // --- Stream interleaving --------------------------------------------------
  // Accesses of one internal line or less are atomic; larger accesses from
  // more streams than DIMMs interleave partial streams in the buffer.
  double streams_per_dimm =
      static_cast<double>(threads) / concurrent_dimms;
  double excess = std::max(0.0, streams_per_dimm - 1.0);
  double z = 0.0;
  if (access_size > 256) {
    z = std::clamp(std::log2(static_cast<double>(access_size) / 256.0) / 8.0,
                   0.0, 1.0);
  }
  result.buffer_efficiency = std::max(
      spec_.min_efficiency,
      1.0 / (1.0 + spec_.stream_alpha * std::sqrt(excess) * z));

  double in_flight_per_thread = static_cast<double>(
      std::min<uint64_t>(access_size, spec_.per_thread_window_bytes));
  result.buffered_bytes_per_dimm =
      static_cast<double>(threads) * in_flight_per_thread / concurrent_dimms;
  (void)buffer_bytes;
  return result;
}

}  // namespace pmemolap
