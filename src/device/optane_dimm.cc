#include "device/optane_dimm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pmemolap {

double OptaneDimm::ReadAmplification(uint64_t access_size,
                                     bool sequential) const {
  if (access_size == 0) return 1.0;
  if (sequential) {
    // Consecutive requests are resolved from the buffered 256 B internal
    // line; no read amplification regardless of access size (paper §3.1:
    // "accesses smaller than Optane's 256 Byte granularity still achieve
    // 30+ GB/s").
    return 1.0;
  }
  // A random access always fetches whole internal lines.
  const uint64_t line = spec_.internal_line_bytes;
  uint64_t lines = (access_size + line - 1) / line;
  return static_cast<double>(lines * line) / static_cast<double>(access_size);
}

double OptaneDimm::WriteAmplification(uint64_t access_size,
                                      double combine_fraction) const {
  if (access_size == 0) return 1.0;
  combine_fraction = std::clamp(combine_fraction, 0.0, 1.0);
  const uint64_t line = spec_.internal_line_bytes;
  if (access_size >= line) {
    // Full lines dominate; only the (at most two) partial boundary lines
    // can amplify. Approximate with the combined fraction applied to the
    // partial remainder.
    uint64_t remainder = access_size % line;
    if (remainder == 0) return 1.0;
    double partial_fraction =
        static_cast<double>(remainder) / static_cast<double>(access_size);
    double rmw_cost = 2.0 * static_cast<double>(line) /
                      static_cast<double>(remainder);
    return (1.0 - partial_fraction) +
           partial_fraction *
               (combine_fraction * 1.0 + (1.0 - combine_fraction) * rmw_cost);
  }
  // Sub-line write: if combined into a full line with neighbors, it costs
  // its own bytes; otherwise the DIMM performs a read-modify-write of the
  // full internal line (read line + write line = 2 lines of media traffic).
  double rmw_cost =
      2.0 * static_cast<double>(line) / static_cast<double>(access_size);
  return combine_fraction * 1.0 + (1.0 - combine_fraction) * rmw_cost;
}

GigabytesPerSecond OptaneDimm::ReadServiceRate(bool sequential,
                                               double amplification) const {
  amplification = std::max(amplification, 1.0);
  GigabytesPerSecond media_rate =
      sequential ? spec_.seq_read_gbps : spec_.random_read_gbps;
  return media_rate / amplification;
}

GigabytesPerSecond OptaneDimm::WriteServiceRate(bool sequential,
                                                double amplification) const {
  amplification = std::max(amplification, 1.0);
  GigabytesPerSecond media_rate =
      sequential ? spec_.seq_write_gbps : spec_.random_write_gbps;
  return media_rate / amplification;
}

double OptaneDimm::LifetimeYears(GigabytesPerSecond media_write_gbps) const {
  if (media_write_gbps <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  constexpr double kSecondsPerYear = 365.25 * 24 * 3600;
  double endurance_gb = spec_.endurance_petabytes * 1e6;  // PB -> GB
  return endurance_gb / (media_write_gbps * kSecondsPerYear);
}

void OptaneDimm::RecordWrite(uint64_t useful_bytes, double amplification) {
  amplification = std::max(amplification, 1.0);
  media_bytes_written_ += static_cast<uint64_t>(
      std::llround(static_cast<double>(useful_bytes) * amplification));
}

}  // namespace pmemolap
