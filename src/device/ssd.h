// NVMe SSD model for the "traditional OLAP system" comparison (paper §6.2).
//
// Matches the Intel SSD DC P4610: 3.20 GB/s sequential read, 2.08 GB/s
// sequential write. Only the table-scan path uses it (hash indexes and
// intermediates stay in DRAM in that setup).
#pragma once

#include <cstdint>

#include "common/units.h"

namespace pmemolap {

struct SsdSpec {
  GigabytesPerSecond seq_read_gbps = 3.20;
  GigabytesPerSecond seq_write_gbps = 2.08;
  /// 4 KB random read IOPS (device datasheet ballpark).
  double random_read_iops_4k = 640000.0;
  /// 4 KB random write IOPS.
  double random_write_iops_4k = 220000.0;
};

/// Service-rate model of one NVMe SSD.
class SsdDevice {
 public:
  explicit SsdDevice(const SsdSpec& spec = SsdSpec()) : spec_(spec) {}

  const SsdSpec& spec() const { return spec_; }

  /// Sequential throughput in GB/s.
  GigabytesPerSecond SequentialRate(bool is_read) const {
    return is_read ? spec_.seq_read_gbps : spec_.seq_write_gbps;
  }

  /// Random throughput in GB/s for the given access size: IOPS-bound for
  /// small accesses, bandwidth-bound for large ones.
  GigabytesPerSecond RandomRate(bool is_read, uint64_t access_size) const;

 private:
  SsdSpec spec_;
};

}  // namespace pmemolap
