#include "device/ssd.h"

#include <algorithm>

namespace pmemolap {

GigabytesPerSecond SsdDevice::RandomRate(bool is_read,
                                         uint64_t access_size) const {
  if (access_size == 0) return 0.0;
  double iops =
      is_read ? spec_.random_read_iops_4k : spec_.random_write_iops_4k;
  // IOPS-bound below ~4 KB (sub-page reads pay for the whole page, so the
  // useful throughput scales with access_size), bandwidth-bound above.
  double iops_bound_gbps = iops * static_cast<double>(access_size) / 1e9;
  GigabytesPerSecond seq = SequentialRate(is_read);
  return std::min(iops_bound_gbps, seq);
}

}  // namespace pmemolap
