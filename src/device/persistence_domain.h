// Persistence-domain state for one modeled PMEM region.
//
// On the modeled platform (Cascade Lake + Optane DC, ADR) a store is
// durable only once it has left the CPU caches and reached the iMC's
// write-pending queue — the ADR domain flushes the WPQ on power loss, the
// caches are lost. This tracker mirrors that three-stage journey per 64 B
// cache line:
//
//   kClean        the persisted image matches the volatile image
//   kDirtyCache   stored but still in a (modeled) CPU cache — lost on crash
//   kAcceptedWpq  flushed/nt-stored into the WPQ — survives crash, but the
//                 drain is asynchronous until an sfence retires it
//
// The tracker holds no data bytes; PersistentRegion (durability layer)
// pairs it with the volatile/persisted images and applies crash semantics.
// Per-256B-XPLine aggregation serves scrub reports and crash statistics,
// since Optane tears at XPLine granularity internally.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace pmemolap {

enum class PersistLineState : uint8_t {
  kClean = 0,
  kDirtyCache = 1,
  kAcceptedWpq = 2,
};

class PersistenceTracker {
 public:
  /// Tracks `bytes` of region space, rounded up to whole cache lines.
  explicit PersistenceTracker(uint64_t bytes);

  uint64_t bytes() const { return bytes_; }
  uint64_t lines() const { return static_cast<uint64_t>(state_.size()); }

  PersistLineState state(uint64_t line) const { return state_[line]; }

  /// A cached store: every line touched by [offset, offset+size) becomes
  /// dirty. Lines already accepted into the WPQ drop back to dirty — the
  /// new store re-dirties the cache line and the earlier write-back no
  /// longer covers it.
  void MarkDirty(uint64_t offset, uint64_t size);

  /// clwb over the range: dirty lines move to accepted; clean and
  /// already-accepted lines are untouched. Returns lines moved (the count
  /// the flush actually pays for).
  uint64_t AcceptDirtyRange(uint64_t offset, uint64_t size);

  /// ntstore over the range: lines go straight to accepted, bypassing the
  /// dirty stage.
  void MarkAccepted(uint64_t offset, uint64_t size);

  /// sfence: drains the WPQ. All accepted lines become clean; their
  /// indexes are appended to `drained` (if non-null) so the caller can
  /// promote those lines into the persisted image. Returns lines drained.
  uint64_t DrainAccepted(std::vector<uint64_t>* drained);

  uint64_t dirty_lines() const;
  uint64_t accepted_lines() const;

  /// Line indexes currently in the given state, ascending.
  std::vector<uint64_t> LinesInState(PersistLineState state) const;

  /// 256 B XPLines containing at least one line in the given state —
  /// the granularity at which torn writes surface.
  uint64_t XPLinesInState(PersistLineState state) const;

  /// Forgets all in-flight state (crash handled, images reconciled).
  void Reset();

 private:
  uint64_t LineBegin(uint64_t offset) const { return offset / kCacheLineBytes; }
  uint64_t LineEnd(uint64_t offset, uint64_t size) const;

  uint64_t bytes_ = 0;
  std::vector<PersistLineState> state_;
};

}  // namespace pmemolap
