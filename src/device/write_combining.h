// Model of the Optane DIMM internal write-combining buffer (XPBuffer).
//
// The buffer groups neighboring 64 B CPU stores into full 256 B internal
// lines before flushing to media. Two failure modes (paper Section 4):
//
//  1. Sub-line writes that are NOT completed into a full line before the
//     buffer evicts them pay a read-modify-write. In *grouped* access,
//     interleaved stores from many threads land out of order on shared
//     lines and often miss the combine window; in *individual* access each
//     thread fills its own lines back-to-back and combining almost always
//     succeeds. This is the 2.6 vs 9.6 GB/s gap at 64 B / 36 threads.
//
//  2. Stream interleaving: once a DIMM serves more concurrent write
//     streams than it has buffer locality for (more streams than DIMMs in
//     the socket-level view), multi-line accesses from different threads
//     interleave in the WPQ, the buffer must hold many partially-flushed
//     streams, and it flushes early. The loss grows with both the number
//     of excess streams and the access size — producing the Fig. 8
//     "boomerang": scaling threads OR access size is fine, scaling both
//     collapses bandwidth. Accesses of <= 256 B are atomic at line
//     granularity and never interleave mid-line.
#pragma once

#include <cstdint>

namespace pmemolap {

/// Output of the combining model for one workload point.
struct WriteCombineResult {
  /// Fraction [0,1] of sub-line writes merged into full internal lines.
  double combine_fraction = 1.0;
  /// Throughput multiplier (0,1] of the line-granular write path due to
  /// buffer stream interleaving.
  double buffer_efficiency = 1.0;
  /// Diagnostic: modeled buffered bytes per DIMM.
  double buffered_bytes_per_dimm = 0.0;
};

/// Parameters of the combining model; defaults calibrated to Figs. 7/8.
struct WriteCombiningSpec {
  /// Per-thread in-flight write window (bounded by WPQ depth): a thread
  /// writing one huge block only keeps its active tail buffered.
  uint64_t per_thread_window_bytes = 16 * 1024;
  /// Loss coefficient: efficiency = 1 / (1 + alpha * sqrt(excess) * z)
  /// where excess = max(0, streams_per_dimm - 1) and z in [0,1] scales
  /// log-linearly from 256 B to 64 KB access size.
  double stream_alpha = 1.0;
  /// Sub-line combine success for threads filling their own lines
  /// (individual access).
  double individual_combine = 0.96;
  /// Per-extra-thread degradation of grouped sub-line combining:
  /// combine = individual_combine / (1 + rate * (threads - 1)).
  double grouped_interference_rate = 0.033;
  /// Combine success for random sub-line writes (no spatial neighbors).
  double random_combine = 0.25;
  /// Floor on the stream-interleaving efficiency (the paper observes high
  /// thread counts stabilizing around 5-6 GB/s, not collapsing to zero).
  double min_efficiency = 0.40;
};

/// Evaluates combining success and stream-interleaving efficiency for a
/// write workload on one socket's DIMM set.
class WriteCombiningModel {
 public:
  explicit WriteCombiningModel(const WriteCombiningSpec& spec =
                                   WriteCombiningSpec())
      : spec_(spec) {}

  const WriteCombiningSpec& spec() const { return spec_; }

  /// \param threads          writer threads targeting this DIMM set
  /// \param access_size      bytes per write operation
  /// \param grouped          one global stream (true) vs disjoint regions
  /// \param concurrent_dimms DIMMs concurrently absorbing the stream
  /// \param buffer_bytes     XPBuffer capacity per DIMM (diagnostic scale)
  WriteCombineResult Evaluate(int threads, uint64_t access_size, bool grouped,
                              double concurrent_dimms,
                              uint64_t buffer_bytes) const;

 private:
  WriteCombiningSpec spec_;
};

}  // namespace pmemolap
