#include "device/dram.h"

#include <algorithm>
#include <cmath>

namespace pmemolap {

double DramSocket::ActiveChannels(uint64_t region_bytes) const {
  if (region_bytes != 0 && region_bytes < spec_.single_node_region_bytes) {
    return static_cast<double>(channels_) / 2.0;
  }
  return static_cast<double>(channels_);
}

GigabytesPerSecond DramSocket::SequentialRate(bool is_read) const {
  GigabytesPerSecond per_channel =
      is_read ? spec_.channel_seq_read_gbps : spec_.channel_seq_write_gbps;
  return per_channel * static_cast<double>(channels_);
}

GigabytesPerSecond DramSocket::RandomRate(bool is_read, uint64_t access_size,
                                          uint64_t region_bytes) const {
  GigabytesPerSecond per_channel =
      is_read ? spec_.channel_seq_read_gbps : spec_.channel_seq_write_gbps;
  // Efficiency ramps log-linearly from the 64 B floor to the 4 KB peak.
  double lo = spec_.random_small_fraction;
  double hi = spec_.random_peak_fraction;
  double size = static_cast<double>(std::max<uint64_t>(access_size, 64));
  double t = (std::log2(size) - 6.0) / (12.0 - 6.0);  // 64 B..4 KB
  t = std::clamp(t, 0.0, 1.0);
  double efficiency = lo + (hi - lo) * t;
  return per_channel * ActiveChannels(region_bytes) * efficiency;
}

}  // namespace pmemolap
