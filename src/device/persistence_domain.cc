#include "device/persistence_domain.h"

#include <algorithm>

namespace pmemolap {

PersistenceTracker::PersistenceTracker(uint64_t bytes)
    : bytes_(bytes),
      state_((bytes + kCacheLineBytes - 1) / kCacheLineBytes,
             PersistLineState::kClean) {}

uint64_t PersistenceTracker::LineEnd(uint64_t offset, uint64_t size) const {
  if (size == 0) return LineBegin(offset);
  uint64_t last = (offset + size - 1) / kCacheLineBytes;
  return std::min<uint64_t>(last + 1, state_.size());
}

void PersistenceTracker::MarkDirty(uint64_t offset, uint64_t size) {
  for (uint64_t l = LineBegin(offset), e = LineEnd(offset, size); l < e; ++l) {
    state_[l] = PersistLineState::kDirtyCache;
  }
}

uint64_t PersistenceTracker::AcceptDirtyRange(uint64_t offset, uint64_t size) {
  uint64_t moved = 0;
  for (uint64_t l = LineBegin(offset), e = LineEnd(offset, size); l < e; ++l) {
    if (state_[l] == PersistLineState::kDirtyCache) {
      state_[l] = PersistLineState::kAcceptedWpq;
      ++moved;
    }
  }
  return moved;
}

void PersistenceTracker::MarkAccepted(uint64_t offset, uint64_t size) {
  for (uint64_t l = LineBegin(offset), e = LineEnd(offset, size); l < e; ++l) {
    state_[l] = PersistLineState::kAcceptedWpq;
  }
}

uint64_t PersistenceTracker::DrainAccepted(std::vector<uint64_t>* drained) {
  uint64_t count = 0;
  for (uint64_t l = 0; l < state_.size(); ++l) {
    if (state_[l] == PersistLineState::kAcceptedWpq) {
      state_[l] = PersistLineState::kClean;
      if (drained != nullptr) drained->push_back(l);
      ++count;
    }
  }
  return count;
}

uint64_t PersistenceTracker::dirty_lines() const {
  uint64_t count = 0;
  for (PersistLineState s : state_) {
    if (s == PersistLineState::kDirtyCache) ++count;
  }
  return count;
}

uint64_t PersistenceTracker::accepted_lines() const {
  uint64_t count = 0;
  for (PersistLineState s : state_) {
    if (s == PersistLineState::kAcceptedWpq) ++count;
  }
  return count;
}

std::vector<uint64_t> PersistenceTracker::LinesInState(
    PersistLineState state) const {
  std::vector<uint64_t> lines;
  for (uint64_t l = 0; l < state_.size(); ++l) {
    if (state_[l] == state) lines.push_back(l);
  }
  return lines;
}

uint64_t PersistenceTracker::XPLinesInState(PersistLineState state) const {
  constexpr uint64_t kPerXPLine = kOptaneLineBytes / kCacheLineBytes;
  uint64_t count = 0;
  for (uint64_t l = 0; l < state_.size();) {
    uint64_t xp_end = std::min<uint64_t>(
        (l / kPerXPLine + 1) * kPerXPLine, state_.size());
    bool hit = false;
    for (; l < xp_end; ++l) {
      if (state_[l] == state) hit = true;
    }
    if (hit) ++count;
  }
  return count;
}

void PersistenceTracker::Reset() {
  std::fill(state_.begin(), state_.end(), PersistLineState::kClean);
}

}  // namespace pmemolap
