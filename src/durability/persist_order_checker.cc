#include "durability/persist_order_checker.h"

#include <algorithm>

#include "common/units.h"
#include "durability/persistent_region.h"

namespace pmemolap {

namespace {
/// Keep the detail list bounded — a broken protocol inside a crash
/// sweep would otherwise record one violation per boundary. The total
/// counter still counts everything.
constexpr uint64_t kMaxRecordedViolations = 64;

uint64_t LineBegin(uint64_t offset) { return offset / kCacheLineBytes; }
uint64_t LineEnd(uint64_t offset, uint64_t size) {
  return size == 0 ? LineBegin(offset)
                   : (offset + size - 1) / kCacheLineBytes + 1;
}
}  // namespace

void PersistOrderChecker::AttachRegion(const PersistentRegion* region,
                                       std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror& mirror = mirrors_[region];
  mirror.name = std::move(name);
  mirror.states.assign(LineEnd(0, region->size()), LineState::kClean);
  mirror.touched.clear();
}

PersistOrderChecker::Mirror* PersistOrderChecker::Find(
    const PersistentRegion* region) {
  auto it = mirrors_.find(region);
  return it == mirrors_.end() ? nullptr : &it->second;
}

const char* PersistOrderChecker::StateName(LineState state) {
  switch (state) {
    case LineState::kClean:
      return "clean";
    case LineState::kDirtyCached:
      return "dirty-cached";
    case LineState::kAcceptedNt:
      return "accepted-ntstore";
    case LineState::kAcceptedCached:
      return "accepted-cached";
  }
  return "?";
}

void PersistOrderChecker::Record(const std::string& rule,
                                 const Mirror& mirror, uint64_t line,
                                 std::string detail) {
  ++total_violations_;
  if (violations_.size() < kMaxRecordedViolations) {
    violations_.push_back(
        Violation{rule, mirror.name, line, std::move(detail)});
  }
}

void PersistOrderChecker::OnStore(const PersistentRegion* region,
                                  uint64_t offset, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  for (uint64_t line = LineBegin(offset); line < LineEnd(offset, size);
       ++line) {
    if (mirror->states[line] == LineState::kAcceptedNt) {
      Record("persist-mixed-store", *mirror, line,
             "cached Store over line " + std::to_string(line) +
                 " whose NtStore is still un-fenced");
    }
    // A cached store re-dirties the line: an earlier write-back no
    // longer covers it (mirrors PersistenceTracker::MarkDirty).
    mirror->states[line] = LineState::kDirtyCached;
    mirror->touched.insert(line);
  }
}

void PersistOrderChecker::OnNtStore(const PersistentRegion* region,
                                    uint64_t offset, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  for (uint64_t line = LineBegin(offset); line < LineEnd(offset, size);
       ++line) {
    if (mirror->states[line] == LineState::kDirtyCached) {
      Record("persist-mixed-store", *mirror, line,
             "NtStore over line " + std::to_string(line) +
                 " still dirty from a cached Store");
    }
    mirror->states[line] = LineState::kAcceptedNt;
    mirror->touched.insert(line);
  }
}

void PersistOrderChecker::OnFlush(const PersistentRegion* region,
                                  uint64_t offset, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  for (uint64_t line = LineBegin(offset); line < LineEnd(offset, size);
       ++line) {
    switch (mirror->states[line]) {
      case LineState::kDirtyCached:
        mirror->states[line] = LineState::kAcceptedCached;
        break;
      case LineState::kAcceptedNt:
      case LineState::kAcceptedCached:
        // Re-flushing an in-flight line: wasted clwb (the runtime
        // analog of the static persist-double-flush diagnostic).
        ++redundant_flush_lines_;
        break;
      case LineState::kClean:
        break;  // wide flushes legitimately cover clean lines
    }
  }
}

void PersistOrderChecker::OnFence(const PersistentRegion* region,
                                  uint64_t drained_lines) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  ++fences_checked_;
  uint64_t mirror_drained = 0;
  const PersistenceTracker& tracker = region->tracker();
  for (auto it = mirror->touched.begin(); it != mirror->touched.end();) {
    uint64_t line = *it;
    LineState state = mirror->states[line];
    if (state == LineState::kAcceptedNt ||
        state == LineState::kAcceptedCached) {
      ++mirror_drained;
      mirror->states[line] = LineState::kClean;
      it = mirror->touched.erase(it);
      continue;
    }
    // Dirty lines ride out the fence — the tracker must agree, or the
    // two models have diverged.
    if (tracker.state(line) != PersistLineState::kDirtyCache) {
      Record("oracle-drift", *mirror, line,
             "after Fence() the mirror holds line " +
                 std::to_string(line) + " as " + StateName(state) +
                 " but the tracker reports state " +
                 std::to_string(static_cast<int>(tracker.state(line))) +
                 " — a write path bypassed the primitives or the "
                 "lattice changed");
    }
    ++it;
  }
  if (mirror_drained != drained_lines) {
    Record("oracle-drift", *mirror, 0,
           "Fence() drained " + std::to_string(drained_lines) +
               " line(s) per the tracker but " +
               std::to_string(mirror_drained) +
               " per the mirror — in-flight state the checker never "
               "saw (late attach, or a primitive bypass)");
  }
}

void PersistOrderChecker::OnTruncate(const PersistentRegion* region,
                                     uint64_t offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  // TruncateTo zeroes both images past `offset` without touching the
  // tracker: any still-in-flight line there keeps its tracker state, so
  // the mirror keeps it too (the drift check stays honest). Nothing to
  // do — the hook exists so the boundary is visible in traces.
  (void)offset;
}

void PersistOrderChecker::OnCrash(const PersistentRegion* region) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  // volatile := persisted and tracker.Reset(): all in-flight state is
  // resolved (lost or survived); the mirror starts clean like a restart.
  for (uint64_t line : mirror->touched) {
    mirror->states[line] = LineState::kClean;
  }
  mirror->touched.clear();
}

void PersistOrderChecker::OnCommitRecord(const PersistentRegion* region,
                                         uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  ++commit_records_checked_;
  for (uint64_t line : mirror->touched) {
    Record("persist-order", *mirror, line,
           "commit record of epoch " + std::to_string(epoch) +
               " written while line " + std::to_string(line) + " is " +
               StateName(mirror->states[line]) +
               " — the payload must be fully fenced before the marker");
    break;  // one violation per marker
  }
}

void PersistOrderChecker::OnPublish(const PersistentRegion* region,
                                    uint64_t begin, uint64_t end,
                                    const std::string& what) {
  std::lock_guard<std::mutex> lock(mutex_);
  Mirror* mirror = Find(region);
  if (mirror == nullptr) return;
  ++publishes_checked_;
  uint64_t first = LineBegin(begin);
  uint64_t past = LineEnd(begin, end - begin);
  auto it = mirror->touched.lower_bound(first);
  for (; it != mirror->touched.end() && *it < past; ++it) {
    Record("persist-order", *mirror, *it,
           what + " publishes while line " + std::to_string(*it) +
               " is " + StateName(mirror->states[*it]) +
               " — a crash now exposes bytes the publish promised were "
               "durable");
  }
}

bool PersistOrderChecker::clean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_violations_ == 0;
}

std::vector<PersistOrderChecker::Violation>
PersistOrderChecker::violations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return violations_;
}

uint64_t PersistOrderChecker::total_violations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_violations_;
}

uint64_t PersistOrderChecker::fences_checked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fences_checked_;
}

uint64_t PersistOrderChecker::publishes_checked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return publishes_checked_;
}

uint64_t PersistOrderChecker::commit_records_checked() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return commit_records_checked_;
}

uint64_t PersistOrderChecker::redundant_flush_lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return redundant_flush_lines_;
}

}  // namespace pmemolap
