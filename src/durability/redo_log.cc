#include "durability/redo_log.h"

#include <cstring>

#include "common/crc32.h"

namespace pmemolap {

namespace {

uint32_t RecordCrc(LogRecordHeader header, const std::byte* payload,
                   uint32_t payload_bytes) {
  header.crc = 0;
  uint32_t crc = Crc32(&header, sizeof(header));
  if (payload_bytes > 0) crc = Crc32(payload, payload_bytes, crc);
  return crc;
}

std::vector<std::byte> Encode(LogRecordHeader header,
                              const std::byte* payload) {
  header.crc = RecordCrc(header, payload, header.payload_bytes);
  std::vector<std::byte> bytes(LogRecordFootprint(header.payload_bytes));
  std::memcpy(bytes.data(), &header, sizeof(header));
  if (header.payload_bytes > 0) {
    std::memcpy(bytes.data() + sizeof(header), payload, header.payload_bytes);
  }
  return bytes;  // padding bytes stay zero
}

}  // namespace

uint64_t LogRecordFootprint(uint64_t payload_bytes) {
  uint64_t raw = sizeof(LogRecordHeader) + payload_bytes;
  return (raw + kLogRecordAlign - 1) / kLogRecordAlign * kLogRecordAlign;
}

std::vector<std::byte> EncodeDataRecord(uint64_t epoch, uint64_t table_offset,
                                        const std::byte* payload,
                                        uint32_t payload_bytes) {
  LogRecordHeader header;
  header.magic = kLogMagic;
  header.type = static_cast<uint16_t>(LogRecordType::kData);
  header.epoch = epoch;
  header.table_offset = table_offset;
  header.payload_bytes = payload_bytes;
  return Encode(header, payload);
}

std::vector<std::byte> EncodeCommitRecord(uint64_t epoch) {
  LogRecordHeader header;
  header.magic = kLogMagic;
  header.type = static_cast<uint16_t>(LogRecordType::kCommit);
  header.epoch = epoch;
  return Encode(header, nullptr);
}

LogScan ScanLog(const std::byte* data, uint64_t size) {
  LogScan scan;
  uint64_t cursor = 0;
  uint64_t records_since_commit = 0;
  while (cursor + sizeof(LogRecordHeader) <= size) {
    LogRecordHeader header;
    std::memcpy(&header, data + cursor, sizeof(header));
    if (header.magic == 0 && header.crc == 0 && header.payload_bytes == 0) {
      break;  // clean zeroed tail: end of log
    }
    if (header.magic != kLogMagic) {
      scan.torn_tail = true;  // garbage where a header should be
      break;
    }
    uint64_t footprint = LogRecordFootprint(header.payload_bytes);
    if (cursor + footprint > size) {
      scan.torn_tail = true;  // truncated tail: payload runs off the log
      break;
    }
    const std::byte* payload = data + cursor + sizeof(header);
    if (RecordCrc(header, payload, header.payload_bytes) != header.crc) {
      scan.torn_tail = true;  // torn write or bit rot inside the record
      break;
    }
    ScannedRecord record;
    record.type = static_cast<LogRecordType>(header.type);
    record.epoch = header.epoch;
    record.table_offset = header.table_offset;
    record.payload_bytes = header.payload_bytes;
    record.payload_offset = cursor + sizeof(header);
    if (record.type == LogRecordType::kCommit) {
      if (record.epoch <= scan.committed_epoch) {
        ++scan.duplicate_commits;
      } else {
        scan.committed_epoch = record.epoch;
        scan.committed_bytes = cursor + footprint;
      }
      records_since_commit = 0;
    } else {
      ++records_since_commit;
    }
    scan.records.push_back(record);
    cursor += footprint;
    scan.valid_bytes = cursor;
  }
  scan.uncommitted_records = records_since_commit;
  return scan;
}

}  // namespace pmemolap
