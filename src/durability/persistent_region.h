// PersistentRegion — a PMEM allocation with an explicit persistence
// domain.
//
// Real App Direct code sees one pointer; durability is a property of
// *which bytes made it past the CPU caches*. The model makes that
// distinction physical: the Allocation's bytes are the volatile image
// (what loads see), a shadow buffer is the persisted image (what a crash
// leaves behind), and a PersistenceTracker records where every 64 B line
// sits in between. The four primitives mirror the instructions the paper
// prices:
//
//   Store      cached store: volatile write, line dirty in cache
//   NtStore    non-temporal store: volatile write, line accepted into WPQ
//   FlushRange clwb: dirty lines accepted into WPQ
//   Fence      sfence: accepted lines drained — promoted to persisted
//
// Each primitive is one crash boundary (CrashInjector) and accrues
// modeled seconds from PersistCostModel, so a commit protocol's cost and
// its crash surface come from the same call sites — the persist-
// discipline lint rule checks those call sites lexically.
//
// Threading: primitives and ApplyCrash are single-writer (the ingest
// thread); data() is safe for concurrent readers only on ranges the
// writer no longer mutates (the committed prefix DurableTable exposes).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/pmem_space.h"
#include "device/persistence_domain.h"
#include "memsys/persist.h"

namespace pmemolap {

class CrashInjector;
struct CrashReport;
class PersistOrderChecker;

class PersistentRegion {
 public:
  /// Allocates `size` bytes of PMEM on `socket`, XPLine-aligned, and
  /// registers with `crash` (which may be nullptr: no crash surface).
  /// `cost` must outlive the region.
  static Result<std::unique_ptr<PersistentRegion>> Create(
      PmemSpace* space, uint64_t size, int socket, CrashInjector* crash,
      const PersistCostModel* cost);

  ~PersistentRegion();

  // --- Primitives (each a crash boundary) ----------------------------------
  Status Store(uint64_t offset, const void* src, uint64_t size);
  Status NtStore(uint64_t offset, const void* src, uint64_t size);
  Status FlushRange(uint64_t offset, uint64_t size);
  Status Fence();

  /// Durable truncation: everything at and past `offset` reverts to zero
  /// in both images. Models a redo log's O(1) tail-pointer update (one
  /// line store + flush + fence), not a media wipe — but the model zeroes
  /// the suffix so stale records can never be re-scanned. One crash
  /// boundary; if the crash fires here, the truncation never happened.
  Status TruncateTo(uint64_t offset);

  /// Volatile image — what loads (and post-crash recovery) read.
  const std::byte* data() const { return allocation_.data(); }
  /// Persisted image — what a crash preserves. Tests compare against it.
  const std::byte* persisted() const { return persisted_.data(); }
  uint64_t size() const { return allocation_.size(); }

  const PersistenceTracker& tracker() const { return tracker_; }
  /// Accumulated modeled cost of all primitives issued so far.
  double modeled_seconds() const { return modeled_seconds_; }
  uint64_t store_lines() const { return store_lines_; }
  uint64_t flush_lines() const { return flush_lines_; }
  uint64_t fences() const { return fences_; }

  /// Crash semantics (called by CrashInjector::TriggerCrash): dirty lines
  /// revert to the persisted image; accepted lines survive with
  /// probability `survival_p`; volatile := persisted afterwards. Updates
  /// `report` if non-null.
  void ApplyCrash(Rng* survival, double survival_p, CrashReport* report);

  /// Mirrors every subsequent primitive into the runtime durability
  /// oracle (persist_order_checker.h) under `name`. Attach before the
  /// first primitive or the oracle's drift check will (correctly) fire.
  /// `checker` may be nullptr to detach; it must outlive the region's
  /// primitive calls.
  void AttachOrderChecker(PersistOrderChecker* checker, std::string name);

 private:
  PersistentRegion(PmemSpace* space, Allocation allocation,
                   CrashInjector* crash, const PersistCostModel* cost);

  /// Fails fast once the injector fired: the modeled process is dead.
  Status CheckAlive() const;
  Status BoundsCheck(uint64_t offset, uint64_t size) const;

  /// Stages the partial effect of a write primitive cut mid-flight: a
  /// seeded prefix of [offset, offset+size) lands in the volatile image
  /// with its lines accepted (ntstore path only), then the crash fires.
  Status CrashDuringWrite(uint64_t offset, const void* src, uint64_t size,
                          bool accepted);
  Status CrashNow();

  PmemSpace* space_;
  Allocation allocation_;
  std::vector<std::byte> persisted_;
  PersistenceTracker tracker_;
  CrashInjector* crash_;
  const PersistCostModel* cost_;
  PersistOrderChecker* order_ = nullptr;
  double modeled_seconds_ = 0.0;
  uint64_t store_lines_ = 0;
  uint64_t flush_lines_ = 0;
  uint64_t fences_ = 0;
};

}  // namespace pmemolap
