#include "durability/crash_injector.h"

#include "durability/persistent_region.h"

namespace pmemolap {

bool CrashInjector::HitsNextBoundary() {
  if (crashed_) return false;  // already dead; primitives fail fast
  uint64_t boundary = boundary_counter_++;
  return plan_.boundary_index >= 0 &&
         boundary == static_cast<uint64_t>(plan_.boundary_index);
}

Rng CrashInjector::BoundaryRng(uint64_t stream) const {
  // Keyed strictly by (seed, boundary): any failure reproduces from the
  // pair alone, independent of how many draws earlier boundaries made.
  Rng base(seed_);
  return base.Fork(static_cast<uint64_t>(plan_.boundary_index) + 1)
      .Fork(stream);
}

void CrashInjector::TriggerCrash() {
  if (crashed_) return;
  crashed_ = true;
  report_ = CrashReport();
  report_.boundary = plan_.boundary_index;
  Rng survival = BoundaryRng(/*stream=*/2);
  for (PersistentRegion* region : regions_) {
    region->ApplyCrash(&survival, plan_.accepted_survival_p, &report_);
  }
}

void CrashInjector::AcknowledgeCrash() {
  crashed_ = false;
  plan_.boundary_index = -1;
}

}  // namespace pmemolap
