// RecoveryManager — restart-time reconstruction of a DurableTable.
//
// After a modeled crash only the persisted images remain. Recovery scans
// the redo log (CRC-validating every record, truncating at the first torn
// or corrupt one), durably truncates the abandoned uncommitted suffix,
// then replays every committed epoch's payload into the table image with
// the same persistence primitives the ingest path uses — so a crash
// *during* recovery is just another crash: acknowledge and run Recover()
// again, and the state converges (replay is idempotent: it rewrites the
// same bytes at the same offsets).
#pragma once

#include <cstdint>

#include "common/status.h"

namespace pmemolap {

class DurableTable;

/// What recovery found and did; surfaced to benches and the scrub report.
struct RecoveryStats {
  uint64_t committed_epoch = 0;   ///< highest epoch with a valid commit
  uint64_t replayed_epochs = 0;   ///< epochs re-applied to the table image
  uint64_t replayed_bytes = 0;    ///< payload bytes re-applied
  uint64_t scanned_records = 0;   ///< valid records CRC-checked
  uint64_t log_bytes_scanned = 0;
  bool torn_tail = false;         ///< scan stopped on a torn/corrupt record
  uint64_t truncated_bytes = 0;   ///< abandoned suffix dropped from the log
  uint64_t duplicate_commits = 0; ///< redundant commit markers tolerated
  uint64_t uncommitted_records = 0;
  double modeled_seconds = 0.0;   ///< scan + replay persistence cost
};

class RecoveryManager {
 public:
  explicit RecoveryManager(DurableTable* table) : table_(table) {}

  /// Acknowledges a pending crash (if any) and recovers. Returns the
  /// stats on success; a crash mid-recovery surfaces as Unavailable and
  /// the next Run() picks up from the persisted state.
  Result<RecoveryStats> Run();

 private:
  DurableTable* table_;
};

}  // namespace pmemolap
