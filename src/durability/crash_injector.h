// CrashInjector — deterministic modeled process kills at persistence
// boundaries.
//
// Every PersistentRegion primitive (Store, NtStore, FlushRange, Fence) is
// one *persistence boundary*: a point where the modeled process can die
// with that primitive's durable effect not (or only partially) applied.
// Boundaries are numbered globally across all registered regions in
// program order, so an exhaustive sweep is just "for b in 0..B: run the
// workload with the crash armed at b" — B comes from a dry run with the
// injector disarmed.
//
// Crash semantics at the fired boundary:
//   - the in-flight primitive partially executes (an ntstore/flush keeps a
//     seeded-random prefix, optionally torn mid-cache-line);
//   - every line still dirty in the modeled CPU caches is lost;
//   - every line accepted into a write-pending queue but not yet fenced
//     survives with probability `accepted_survival_p` — the WPQ drain was
//     in flight when power cut;
//   - all registered regions reconcile their volatile image to the
//     persisted image, exactly what a real restart would mmap.
//
// All randomness derives from (seed, boundary_index) — the seed is shared
// with the FaultInjector (FaultSpec::seed) so a whole fault scenario,
// crash schedule included, replays from one number.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "fault/fault_injector.h"

namespace pmemolap {

class PersistentRegion;

/// Where and how the modeled process dies.
struct CrashPlan {
  /// Global boundary index (0-based) at which the crash fires; -1 never
  /// crashes (dry-run mode, used to count boundaries for a sweep).
  int64_t boundary_index = -1;
  /// Probability that a flushed-but-unfenced line had already reached the
  /// persistence domain when power cut.
  double accepted_survival_p = 0.5;
  /// Allow the in-flight primitive's last line to tear mid-line (sub-64 B
  /// prefix); false keeps partial execution cache-line-atomic.
  bool allow_subline_tear = true;
};

/// What the crash destroyed — aggregated over all registered regions.
struct CrashReport {
  int64_t boundary = -1;            ///< boundary that fired, -1 if none yet
  uint64_t dirty_lines_lost = 0;    ///< cached stores that never flushed
  uint64_t accepted_lines_lost = 0; ///< flushed lines whose drain was cut
  uint64_t accepted_lines_survived = 0;
  /// 256 B XPLines left with a mix of new and old 64 B lines — the torn
  /// writes a CRC scan must catch.
  uint64_t torn_xplines = 0;
};

class CrashInjector {
 public:
  explicit CrashInjector(uint64_t seed, CrashPlan plan = CrashPlan())
      : seed_(seed), plan_(plan) {}

  /// Shares the fault layer's seed: one number reproduces poison layout,
  /// allocation failures and the crash schedule together.
  CrashInjector(const FaultInjector& faults, CrashPlan plan = CrashPlan())
      : CrashInjector(faults.spec().seed, plan) {}

  /// Regions the crash applies to. Registration order does not affect the
  /// boundary numbering (primitives number themselves in program order).
  void Register(PersistentRegion* region) { regions_.push_back(region); }

  const CrashPlan& plan() const { return plan_; }
  uint64_t seed() const { return seed_; }

  /// Called by a region primitive at entry. Counts the boundary and
  /// returns true when this one is the armed crash point (the primitive
  /// then stages its partial effect and calls TriggerCrash).
  bool HitsNextBoundary();

  /// Fires the crash: marks the injector crashed and applies crash
  /// semantics to every registered region. Idempotent per arming.
  void TriggerCrash();

  bool crashed() const { return crashed_; }
  uint64_t boundaries_seen() const { return boundary_counter_; }
  const CrashReport& report() const { return report_; }

  /// Deterministic stream for the fired boundary; `stream` separates
  /// independent uses (partial-prefix draw vs survival draws).
  Rng BoundaryRng(uint64_t stream) const;

  /// Recovery has observed the crash: clears the crashed flag and disarms
  /// so the recovery path's own primitives run to completion. Boundary
  /// numbering continues (use boundaries_seen() + Arm for a second crash).
  void AcknowledgeCrash();

  /// Re-arms at an absolute boundary index (>= boundaries_seen() to fire
  /// in the future) — crash-during-recovery tests re-arm after ack.
  void Arm(int64_t boundary_index) { plan_.boundary_index = boundary_index; }

 private:
  uint64_t seed_;
  CrashPlan plan_;
  std::vector<PersistentRegion*> regions_;
  uint64_t boundary_counter_ = 0;
  bool crashed_ = false;
  CrashReport report_;
};

}  // namespace pmemolap
