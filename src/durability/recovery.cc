#include "durability/recovery.h"

#include <algorithm>
#include <vector>

#include "durability/crash_injector.h"
#include "durability/durable_table.h"
#include "durability/redo_log.h"

namespace pmemolap {

Result<RecoveryStats> RecoveryManager::Run() {
  if (table_->crash_ != nullptr && table_->crash_->crashed()) {
    table_->crash_->AcknowledgeCrash();
  }
  PersistentRegion& log = *table_->log_;
  PersistentRegion& image = *table_->table_;
  double seconds_before = log.modeled_seconds() + image.modeled_seconds();

  LogScan scan = ScanLog(log.data(), log.size());
  RecoveryStats stats;
  stats.committed_epoch = scan.committed_epoch;
  stats.scanned_records = scan.records.size();
  stats.log_bytes_scanned = scan.valid_bytes;
  stats.torn_tail = scan.torn_tail;
  stats.duplicate_commits = scan.duplicate_commits;
  stats.uncommitted_records = scan.uncommitted_records;
  stats.truncated_bytes = scan.valid_bytes - scan.committed_bytes;

  // Drop the abandoned suffix first: if we crash past this point, the
  // next scan sees a log that ends exactly at the committed prefix.
  PMEMOLAP_RETURN_NOT_OK(log.TruncateTo(scan.committed_bytes));

  // Replay committed payloads in log order. The ingest path applied them
  // once already when it didn't crash mid-apply — rewriting the same
  // bytes is what makes re-running recovery (after a crash during this
  // loop) converge instead of compounding.
  std::vector<uint64_t> epoch_bytes(scan.committed_epoch + 1, 0);
  for (const ScannedRecord& record : scan.records) {
    if (record.type != LogRecordType::kData) continue;
    if (record.epoch == 0 || record.epoch > scan.committed_epoch) continue;
    PMEMOLAP_RETURN_NOT_OK(image.Store(record.table_offset,
                                       log.data() + record.payload_offset,
                                       record.payload_bytes));
    PMEMOLAP_RETURN_NOT_OK(
        image.FlushRange(record.table_offset, record.payload_bytes));
    ++stats.replayed_epochs;
    stats.replayed_bytes += record.payload_bytes;
    epoch_bytes[record.epoch] =
        std::max(epoch_bytes[record.epoch],
                 record.table_offset + record.payload_bytes);
  }
  PMEMOLAP_RETURN_NOT_OK(image.Fence());

  // Commit-only epochs (a corruption pattern, not producible by the
  // ingest protocol) carry the previous epoch's extent forward.
  for (uint64_t e = 1; e < epoch_bytes.size(); ++e) {
    epoch_bytes[e] = std::max(epoch_bytes[e], epoch_bytes[e - 1]);
  }
  table_->RestoreCommitted(std::move(epoch_bytes), scan.committed_bytes);

  // The scan reads the valid prefix plus the header probe that ended it.
  uint64_t scanned_span =
      std::min<uint64_t>(log.size(),
                         scan.valid_bytes + sizeof(LogRecordHeader));
  const PersistCostModel& cost = table_->cost();
  stats.modeled_seconds =
      cost.ScanSeconds(PersistCostModel::LinesCovering(0, scanned_span)) +
      (log.modeled_seconds() + image.modeled_seconds() - seconds_before);
  return stats;
}

}  // namespace pmemolap
