// DurableTable — crash-consistent append-only ingest over the modeled
// persistence domain.
//
// Two PersistentRegions: the table image (what SSB scans read) and the
// redo log. One Append() is one *epoch* with write-ahead ordering:
//
//   1. data record into the log          (ntstore, or store+clwb)
//   2. sfence                            — payload durable
//   3. commit marker into the log
//   4. sfence                            — epoch committed
//   5. payload applied to the table image (store+clwb+sfence)
//   6. AdvanceCommitted(epoch)           — volatile publish to readers
//
// A crash anywhere before step 4's completion leaves the epoch
// uncommitted; recovery truncates it. A crash after step 4 finds the
// commit marker and replays the payload from the log — the table image is
// a rebuildable cache of the committed log prefix. Readers never see an
// epoch before its bytes are applied (publish is last), and snapshot
// reads pin an epoch so concurrent scans stay consistent while ingest
// runs: epochs are append-only, so epoch e's first epoch_bytes(e) table
// bytes are immutable once published.
//
// Threading: one ingest thread calls Append/Recover; any number of reader
// threads call ReadSnapshot/committed_epoch concurrently (epoch metadata
// is mutex-published, committed table bytes are no longer written).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "core/pmem_space.h"
#include "core/profile.h"
#include "durability/persist_order_checker.h"
#include "durability/persistent_region.h"
#include "memsys/persist.h"

namespace pmemolap {

class CrashInjector;
class RecoveryManager;
struct RecoveryStats;

class DurableTable {
 public:
  struct Options {
    uint64_t capacity_bytes = 16 * kMiB;  ///< table region size
    uint64_t log_bytes = 32 * kMiB;       ///< redo-log region size
    int socket = 0;
    /// ntstore log appends (the paper's pick for streaming writes);
    /// false uses cached stores + clwb — dearer, exercised by tests.
    bool ntstore_log = true;
    /// Runs the runtime durability oracle (persist_order_checker.h)
    /// over both regions: every fence cross-validated against the
    /// tracker, every commit record and publish checked for pending
    /// lines. Cheap (O(in-flight lines) per boundary), so it defaults
    /// on; flip off to measure the protocol without the oracle.
    bool check_order = true;
    PersistSpec persist;  ///< primitive pricing
  };

  /// `crash` may be nullptr (no crash surface — plain durable ingest).
  static Result<std::unique_ptr<DurableTable>> Create(PmemSpace* space,
                                                      CrashInjector* crash,
                                                      Options options);

  /// Reads at the latest committed epoch.
  static constexpr uint64_t kLatestEpoch = ~uint64_t{0};

  /// One crash-consistent ingest epoch; returns the committed epoch id
  /// (1-based). Unavailable once the modeled process crashed.
  Result<uint64_t> Append(const std::byte* data, uint64_t bytes);

  /// Copies [offset, offset+size) of the table image as of `epoch`
  /// (kLatestEpoch = newest). Fails InvalidArgument past the snapshot's
  /// committed bytes and NotFound for an uncommitted epoch.
  Status ReadSnapshot(uint64_t epoch, uint64_t offset, uint64_t size,
                      std::byte* dst) const;

  uint64_t committed_epoch() const;
  /// Table bytes committed as of `epoch` (kLatestEpoch = newest).
  Result<uint64_t> SnapshotBytes(uint64_t epoch) const;

  /// Scans the log, truncates the abandoned suffix, idempotently replays
  /// every committed epoch into the table image and republishes the
  /// epoch map. Safe to call on a healthy table (no-op replay) and again
  /// after a crash *during* recovery.
  Result<RecoveryStats> Recover();

  /// Modeled PMEM write traffic of ingest since the last drain — the log
  /// stream and the table-apply stream, labeled "ingest-log" /
  /// "ingest-apply" for the governor's write-knee telemetry.
  std::vector<TrafficRecord> DrainIngestTraffic();
  /// Same records without resetting (peek for engine background merging).
  std::vector<TrafficRecord> standing_traffic() const;

  /// Modeled seconds spent in persistence primitives so far (both
  /// regions) — the durability tax on ingest.
  double modeled_seconds() const {
    return table_->modeled_seconds() + log_->modeled_seconds();
  }

  const Options& options() const { return options_; }
  PersistentRegion& table_region() { return *table_; }
  PersistentRegion& log_region() { return *log_; }
  const PersistCostModel& cost() const { return cost_; }
  /// The runtime durability oracle, or nullptr when
  /// Options::check_order is off. Tests assert `clean()` on it; the
  /// engine surfaces a non-clean oracle as an internal error.
  PersistOrderChecker* order_checker() const { return order_checker_.get(); }

 private:
  friend class RecoveryManager;

  DurableTable(Options options, CrashInjector* crash)
      : options_(options), crash_(crash), cost_(options.persist) {}

  /// Volatile publish of a committed epoch (readers see it from here on).
  void AdvanceCommitted(uint64_t epoch, uint64_t total_bytes,
                        uint64_t log_tail);
  /// Recovery's republish of the whole epoch map.
  void RestoreCommitted(std::vector<uint64_t> epoch_bytes,
                        uint64_t log_tail);
  void RecordIngestTraffic(uint64_t log_bytes, uint64_t apply_bytes);
  std::vector<TrafficRecord> BuildTraffic(uint64_t log_bytes,
                                          uint64_t apply_bytes) const;

  Options options_;
  CrashInjector* crash_;
  PersistCostModel cost_;
  std::unique_ptr<PersistOrderChecker> order_checker_;
  std::unique_ptr<PersistentRegion> table_;
  std::unique_ptr<PersistentRegion> log_;

  mutable std::mutex mutex_;
  /// epoch_bytes_[e] = committed table bytes through epoch e; [0] = 0.
  std::vector<uint64_t> epoch_bytes_{0};
  uint64_t log_tail_ = 0;
  uint64_t pending_log_bytes_ = 0;
  uint64_t pending_apply_bytes_ = 0;
};

}  // namespace pmemolap
