#include "durability/durable_table.h"

#include <cstring>
#include <string>
#include <utility>

#include "durability/crash_injector.h"
#include "durability/recovery.h"
#include "durability/redo_log.h"
#include "memsys/workload.h"

namespace pmemolap {

Result<std::unique_ptr<DurableTable>> DurableTable::Create(
    PmemSpace* space, CrashInjector* crash, Options options) {
  std::unique_ptr<DurableTable> table(new DurableTable(options, crash));
  PMEMOLAP_ASSIGN_OR_RETURN(
      table->table_,
      PersistentRegion::Create(space, options.capacity_bytes, options.socket,
                               crash, &table->cost_));
  PMEMOLAP_ASSIGN_OR_RETURN(
      table->log_,
      PersistentRegion::Create(space, options.log_bytes, options.socket,
                               crash, &table->cost_));
  if (options.check_order) {
    table->order_checker_ = std::make_unique<PersistOrderChecker>();
    table->table_->AttachOrderChecker(table->order_checker_.get(), "table");
    table->log_->AttachOrderChecker(table->order_checker_.get(), "log");
  }
  return table;
}

Result<uint64_t> DurableTable::Append(const std::byte* data, uint64_t bytes) {
  if (bytes == 0) return Status::InvalidArgument("empty ingest epoch");
  if (bytes > ~uint32_t{0}) {
    return Status::InvalidArgument("ingest epoch exceeds record framing");
  }
  uint64_t epoch;
  uint64_t table_offset;
  uint64_t tail;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = epoch_bytes_.size();  // committed_epoch + 1
    table_offset = epoch_bytes_.back();
    tail = log_tail_;
  }
  if (table_offset + bytes > options_.capacity_bytes) {
    return Status::ResourceExhausted("durable table full at epoch " +
                                     std::to_string(epoch));
  }
  std::vector<std::byte> data_record =
      EncodeDataRecord(epoch, table_offset, data,
                       static_cast<uint32_t>(bytes));
  std::vector<std::byte> commit_record = EncodeCommitRecord(epoch);
  if (tail + data_record.size() + commit_record.size() > options_.log_bytes) {
    return Status::ResourceExhausted("redo log full at epoch " +
                                     std::to_string(epoch));
  }

  // 1+2: the epoch's payload becomes durable in the log.
  if (options_.ntstore_log) {
    PMEMOLAP_RETURN_NOT_OK(
        log_->NtStore(tail, data_record.data(), data_record.size()));
  } else {
    PMEMOLAP_RETURN_NOT_OK(
        log_->Store(tail, data_record.data(), data_record.size()));
    PMEMOLAP_RETURN_NOT_OK(log_->FlushRange(tail, data_record.size()));
  }
  PMEMOLAP_RETURN_NOT_OK(log_->Fence());

  // 3+4: the commit marker becomes durable — the epoch's point of no
  // return. Ordered strictly after the payload by the fence above; the
  // oracle verifies that ordering actually held at runtime.
  if (order_checker_ != nullptr) {
    order_checker_->OnCommitRecord(log_.get(), epoch);
  }
  uint64_t commit_offset = tail + data_record.size();
  if (options_.ntstore_log) {
    PMEMOLAP_RETURN_NOT_OK(log_->NtStore(commit_offset, commit_record.data(),
                                         commit_record.size()));
  } else {
    PMEMOLAP_RETURN_NOT_OK(log_->Store(commit_offset, commit_record.data(),
                                       commit_record.size()));
    PMEMOLAP_RETURN_NOT_OK(
        log_->FlushRange(commit_offset, commit_record.size()));
  }
  PMEMOLAP_RETURN_NOT_OK(log_->Fence());

  // 5: apply to the table image (a crash from here on replays from the
  // log, so this is a durable cache refresh, not a correctness step).
  PMEMOLAP_RETURN_NOT_OK(table_->Store(table_offset, data, bytes));
  PMEMOLAP_RETURN_NOT_OK(table_->FlushRange(table_offset, bytes));
  PMEMOLAP_RETURN_NOT_OK(table_->Fence());

  // 6: publish to readers.
  AdvanceCommitted(epoch, table_offset + bytes,
                   commit_offset + commit_record.size());
  RecordIngestTraffic(data_record.size() + commit_record.size(), bytes);
  return epoch;
}

void DurableTable::AdvanceCommitted(uint64_t epoch, uint64_t total_bytes,
                                    uint64_t log_tail) {
  if (order_checker_ != nullptr) {
    // Readers see [0, total_bytes) of the table and recovery trusts
    // [0, log_tail) of the log from here on: both must be fenced.
    order_checker_->OnPublish(table_.get(), 0, total_bytes,
                              "AdvanceCommitted");
    order_checker_->OnPublish(log_.get(), 0, log_tail, "AdvanceCommitted");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  (void)epoch;  // always epoch_bytes_.size() by construction
  epoch_bytes_.push_back(total_bytes);
  log_tail_ = log_tail;
}

void DurableTable::RestoreCommitted(std::vector<uint64_t> epoch_bytes,
                                    uint64_t log_tail) {
  if (order_checker_ != nullptr) {
    order_checker_->OnPublish(table_.get(), 0, epoch_bytes.back(),
                              "RestoreCommitted");
    order_checker_->OnPublish(log_.get(), 0, log_tail, "RestoreCommitted");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  epoch_bytes_ = std::move(epoch_bytes);
  log_tail_ = log_tail;
}

uint64_t DurableTable::committed_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_bytes_.size() - 1;
}

Result<uint64_t> DurableTable::SnapshotBytes(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t committed = epoch_bytes_.size() - 1;
  if (epoch == kLatestEpoch) epoch = committed;
  if (epoch > committed) {
    return Status::NotFound("epoch " + std::to_string(epoch) +
                            " not committed (latest is " +
                            std::to_string(committed) + ")");
  }
  return epoch_bytes_[epoch];
}

Status DurableTable::ReadSnapshot(uint64_t epoch, uint64_t offset,
                                  uint64_t size, std::byte* dst) const {
  if (crash_ != nullptr && crash_->crashed()) {
    return Status::Unavailable("modeled process crashed; recover first");
  }
  PMEMOLAP_ASSIGN_OR_RETURN(uint64_t limit, SnapshotBytes(epoch));
  if (offset + size > limit || offset + size < offset) {
    return Status::InvalidArgument(
        "snapshot read [" + std::to_string(offset) + ", " +
        std::to_string(offset + size) + ") past committed bytes " +
        std::to_string(limit));
  }
  std::memcpy(dst, table_->data() + offset, size);
  return Status::OK();
}

Result<RecoveryStats> DurableTable::Recover() {
  RecoveryManager manager(this);
  return manager.Run();
}

std::vector<TrafficRecord> DurableTable::BuildTraffic(
    uint64_t log_bytes, uint64_t apply_bytes) const {
  std::vector<TrafficRecord> records;
  if (log_bytes > 0) {
    TrafficRecord log;
    log.op = OpType::kWrite;
    log.pattern = Pattern::kSequentialGrouped;
    log.media = Media::kPmem;
    log.data_socket = options_.socket;
    log.bytes = log_bytes;
    log.access_size = kOptaneLineBytes;
    log.region_bytes = options_.log_bytes;
    log.threads = 1;
    log.label = "ingest-log";
    records.push_back(std::move(log));
  }
  if (apply_bytes > 0) {
    TrafficRecord apply;
    apply.op = OpType::kWrite;
    apply.pattern = Pattern::kSequentialGrouped;
    apply.media = Media::kPmem;
    apply.data_socket = options_.socket;
    apply.bytes = apply_bytes;
    apply.access_size = 4 * kKiB;
    apply.region_bytes = options_.capacity_bytes;
    apply.threads = 1;
    apply.label = "ingest-apply";
    records.push_back(std::move(apply));
  }
  return records;
}

void DurableTable::RecordIngestTraffic(uint64_t log_bytes,
                                       uint64_t apply_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_log_bytes_ += log_bytes;
  pending_apply_bytes_ += apply_bytes;
}

std::vector<TrafficRecord> DurableTable::DrainIngestTraffic() {
  uint64_t log_bytes;
  uint64_t apply_bytes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    log_bytes = pending_log_bytes_;
    apply_bytes = pending_apply_bytes_;
    pending_log_bytes_ = 0;
    pending_apply_bytes_ = 0;
  }
  return BuildTraffic(log_bytes, apply_bytes);
}

std::vector<TrafficRecord> DurableTable::standing_traffic() const {
  uint64_t log_bytes;
  uint64_t apply_bytes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    log_bytes = pending_log_bytes_;
    apply_bytes = pending_apply_bytes_;
  }
  return BuildTraffic(log_bytes, apply_bytes);
}

}  // namespace pmemolap
