#include "durability/persistent_region.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <string>

#include "durability/crash_injector.h"
#include "durability/persist_order_checker.h"

namespace pmemolap {

Result<std::unique_ptr<PersistentRegion>> PersistentRegion::Create(
    PmemSpace* space, uint64_t size, int socket, CrashInjector* crash,
    const PersistCostModel* cost) {
  PMEMOLAP_ASSIGN_OR_RETURN(
      Allocation allocation,
      space->AllocateAligned(size, kOptaneLineBytes,
                             MemPlacement{Media::kPmem, socket}));
  std::unique_ptr<PersistentRegion> region(new PersistentRegion(
      space, std::move(allocation), crash, cost));
  if (crash != nullptr) crash->Register(region.get());
  return region;
}

PersistentRegion::PersistentRegion(PmemSpace* space, Allocation allocation,
                                   CrashInjector* crash,
                                   const PersistCostModel* cost)
    : space_(space),
      allocation_(std::move(allocation)),
      persisted_(allocation_.size()),
      tracker_(allocation_.size()),
      crash_(crash),
      cost_(cost) {
  // A fresh region models newly created storage, so both images start as
  // zeros. The space hands out raw bytes — zero the volatile image
  // explicitly (persisted_ is value-initialized), or a recycled heap
  // block would make an empty log scan as a torn tail.
  std::memset(allocation_.data(), 0, allocation_.size());
}

PersistentRegion::~PersistentRegion() {
  if (space_ != nullptr) space_->Release(allocation_);
}

Status PersistentRegion::CheckAlive() const {
  if (crash_ != nullptr && crash_->crashed()) {
    return Status::Unavailable(
        "modeled process crashed at persistence boundary " +
        std::to_string(crash_->report().boundary));
  }
  return Status::OK();
}

Status PersistentRegion::BoundsCheck(uint64_t offset, uint64_t size) const {
  if (offset + size > allocation_.size() || offset + size < offset) {
    return Status::InvalidArgument(
        "persistent access [" + std::to_string(offset) + ", " +
        std::to_string(offset + size) + ") outside region of " +
        std::to_string(allocation_.size()) + " bytes");
  }
  return Status::OK();
}

Status PersistentRegion::CrashNow() {
  crash_->TriggerCrash();
  return Status::Unavailable(
      "modeled process crashed at persistence boundary " +
      std::to_string(crash_->report().boundary));
}

Status PersistentRegion::CrashDuringWrite(uint64_t offset, const void* src,
                                          uint64_t size, bool accepted) {
  // A cached store cut mid-flight loses everything (the bytes only made
  // it into the modeled caches); an ntstore keeps a seeded prefix that
  // had already been posted to a write-pending queue, torn mid-line when
  // the plan allows sub-line tears.
  if (accepted && size > 0) {
    Rng prefix_rng = crash_->BoundaryRng(/*stream=*/1);
    uint64_t keep = prefix_rng.NextBelow(size + 1);
    if (!crash_->plan().allow_subline_tear) {
      keep = keep / kCacheLineBytes * kCacheLineBytes;
    }
    if (keep > 0) {
      std::memcpy(allocation_.data() + offset, src, keep);
      tracker_.MarkAccepted(offset, keep);
    }
  }
  return CrashNow();
}

Status PersistentRegion::Store(uint64_t offset, const void* src,
                               uint64_t size) {
  PMEMOLAP_RETURN_NOT_OK(CheckAlive());
  PMEMOLAP_RETURN_NOT_OK(BoundsCheck(offset, size));
  if (crash_ != nullptr && crash_->HitsNextBoundary()) {
    return CrashDuringWrite(offset, src, size, /*accepted=*/false);
  }
  std::memcpy(allocation_.data() + offset, src, size);
  tracker_.MarkDirty(offset, size);
  if (order_ != nullptr) order_->OnStore(this, offset, size);
  uint64_t lines = PersistCostModel::LinesCovering(offset, size);
  store_lines_ += lines;
  modeled_seconds_ += cost_->StoreSeconds(lines);
  return Status::OK();
}

Status PersistentRegion::NtStore(uint64_t offset, const void* src,
                                 uint64_t size) {
  PMEMOLAP_RETURN_NOT_OK(CheckAlive());
  PMEMOLAP_RETURN_NOT_OK(BoundsCheck(offset, size));
  if (crash_ != nullptr && crash_->HitsNextBoundary()) {
    return CrashDuringWrite(offset, src, size, /*accepted=*/true);
  }
  std::memcpy(allocation_.data() + offset, src, size);
  tracker_.MarkAccepted(offset, size);
  if (order_ != nullptr) order_->OnNtStore(this, offset, size);
  uint64_t lines = PersistCostModel::LinesCovering(offset, size);
  store_lines_ += lines;
  modeled_seconds_ += cost_->NtStoreSeconds(lines);
  return Status::OK();
}

Status PersistentRegion::FlushRange(uint64_t offset, uint64_t size) {
  PMEMOLAP_RETURN_NOT_OK(CheckAlive());
  PMEMOLAP_RETURN_NOT_OK(BoundsCheck(offset, size));
  if (crash_ != nullptr && crash_->HitsNextBoundary()) {
    // The flush partially issued: a seeded prefix of the range's dirty
    // lines had their write-backs posted before power cut.
    Rng prefix_rng = crash_->BoundaryRng(/*stream=*/1);
    uint64_t keep = prefix_rng.NextBelow(size + 1) / kCacheLineBytes *
                    kCacheLineBytes;
    if (keep > 0) tracker_.AcceptDirtyRange(offset, keep);
    return CrashNow();
  }
  uint64_t moved = tracker_.AcceptDirtyRange(offset, size);
  if (order_ != nullptr) order_->OnFlush(this, offset, size);
  flush_lines_ += moved;
  modeled_seconds_ += cost_->FlushSeconds(moved);
  return Status::OK();
}

Status PersistentRegion::TruncateTo(uint64_t offset) {
  PMEMOLAP_RETURN_NOT_OK(CheckAlive());
  PMEMOLAP_RETURN_NOT_OK(BoundsCheck(offset, 0));
  if (crash_ != nullptr && crash_->HitsNextBoundary()) {
    return CrashNow();  // tail pointer never flipped; suffix still there
  }
  uint64_t tail = allocation_.size() - offset;
  std::memset(allocation_.data() + offset, 0, tail);
  std::memset(persisted_.data() + offset, 0, tail);
  // Priced as the tail-pointer update, not the (modeled-only) zeroing.
  modeled_seconds_ += cost_->StoreSeconds(1) + cost_->FlushSeconds(1) +
                      cost_->FenceSeconds(1);
  ++fences_;
  if (order_ != nullptr) order_->OnTruncate(this, offset);
  return Status::OK();
}

Status PersistentRegion::Fence() {
  PMEMOLAP_RETURN_NOT_OK(CheckAlive());
  if (crash_ != nullptr && crash_->HitsNextBoundary()) {
    // Drain never completed; accepted lines face the survival lottery.
    return CrashNow();
  }
  std::vector<uint64_t> drained;
  uint64_t pending = tracker_.DrainAccepted(&drained);
  for (uint64_t line : drained) {
    uint64_t begin = line * kCacheLineBytes;
    uint64_t bytes = std::min(kCacheLineBytes, allocation_.size() - begin);
    std::memcpy(persisted_.data() + begin, allocation_.data() + begin, bytes);
  }
  ++fences_;
  modeled_seconds_ += cost_->FenceSeconds(pending);
  if (order_ != nullptr) order_->OnFence(this, pending);
  return Status::OK();
}

void PersistentRegion::ApplyCrash(Rng* survival, double survival_p,
                                  CrashReport* report) {
  constexpr uint64_t kPerXPLine = kOptaneLineBytes / kCacheLineBytes;
  uint64_t dirty_lost = 0;
  uint64_t accepted_lost = 0;
  uint64_t accepted_survived = 0;
  // Track which XPLines ended up with a mix of survived and lost in-flight
  // lines — those are the torn XPLines readers must never see raw.
  std::vector<uint64_t> xp_survived;
  std::vector<uint64_t> xp_lost;
  for (uint64_t line = 0; line < tracker_.lines(); ++line) {
    PersistLineState state = tracker_.state(line);
    if (state == PersistLineState::kClean) continue;
    bool survives = state == PersistLineState::kAcceptedWpq &&
                    survival->NextBool(survival_p);
    if (survives) {
      uint64_t begin = line * kCacheLineBytes;
      uint64_t bytes = std::min(kCacheLineBytes, allocation_.size() - begin);
      std::memcpy(persisted_.data() + begin, allocation_.data() + begin,
                  bytes);
      ++accepted_survived;
      xp_survived.push_back(line / kPerXPLine);
    } else if (state == PersistLineState::kAcceptedWpq) {
      ++accepted_lost;
      xp_lost.push_back(line / kPerXPLine);
    } else {
      ++dirty_lost;
      xp_lost.push_back(line / kPerXPLine);
    }
  }
  // Restart: the volatile image IS the persisted image.
  std::memcpy(allocation_.data(), persisted_.data(), allocation_.size());
  tracker_.Reset();
  if (order_ != nullptr) order_->OnCrash(this);
  if (report != nullptr) {
    report->dirty_lines_lost += dirty_lost;
    report->accepted_lines_lost += accepted_lost;
    report->accepted_lines_survived += accepted_survived;
    auto unique_sorted = [](std::vector<uint64_t>* v) {
      std::sort(v->begin(), v->end());
      v->erase(std::unique(v->begin(), v->end()), v->end());
    };
    unique_sorted(&xp_survived);
    unique_sorted(&xp_lost);
    std::vector<uint64_t> torn;
    std::set_intersection(xp_survived.begin(), xp_survived.end(),
                          xp_lost.begin(), xp_lost.end(),
                          std::back_inserter(torn));
    report->torn_xplines += torn.size();
  }
}

void PersistentRegion::AttachOrderChecker(PersistOrderChecker* checker,
                                          std::string name) {
  order_ = checker;
  if (order_ != nullptr) order_->AttachRegion(this, std::move(name));
}

}  // namespace pmemolap
