// PersistOrderChecker — runtime durability oracle.
//
// The static persist-ordering pass (tools/lint/persist_check.h) proves
// the store -> flush -> fence -> publish ladder per *source path*; this
// checker validates the same lattice per *executed operation*. It keeps
// an independent per-64B-line mirror of every attached region's
// persistence state, advanced only by the primitive hooks, and checks
// two kinds of invariants:
//
//   protocol   a commit record or volatile publish must never run while
//              any mirrored line is still dirty (cached store without a
//              flush) or accepted-but-unfenced (WPQ not drained) — the
//              runtime analog of the static persist-order rule; cached
//              and non-temporal writes interleaving on one line without
//              a fence is the analog of persist-mixed-store.
//
//   drift      at every Fence() the mirror must agree with the region's
//              PersistenceTracker line for line, and the number of
//              lines the mirror believes drained must equal what the
//              region reported. If the two models diverge — a primitive
//              grew a side effect the checker (and therefore the static
//              lattice) doesn't know about, or a write path bypassed
//              the primitives — the oracle itself has drifted and the
//              violation says so ("oracle-drift").
//
// Redundant flushes (the static persist-double-flush perf diagnostic)
// are counted, not flagged: re-flushing a clean line is wasted clwb
// cost, never a safety bug.
//
// Violations are recorded, never thrown: crash sweeps assert
// `violations().empty()` after thousands of boundaries, and the engine
// surfaces a non-clean checker as Status::Internal after the fact.
// Hooks are called from the single ingest thread (the same threading
// contract as the primitives themselves); the violation list is
// mutex-guarded so readers may poll concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace pmemolap {

class PersistentRegion;

class PersistOrderChecker {
 public:
  /// The mirrored lattice, one state per 64 B line. Accepted is split
  /// by write kind so the mixed-store hazard is observable at runtime.
  enum class LineState : uint8_t {
    kClean = 0,
    kDirtyCached = 1,
    kAcceptedNt = 2,
    kAcceptedCached = 3,
  };

  struct Violation {
    std::string rule;    ///< "persist-order" | "persist-mixed-store" |
                         ///< "oracle-drift"
    std::string region;  ///< attach-time name
    uint64_t line = 0;   ///< 64 B line index the violation anchors to
    std::string detail;
  };

  /// Starts mirroring `region` (all lines clean) under `name`. The
  /// region must outlive the checker's use of it.
  void AttachRegion(const PersistentRegion* region, std::string name);

  // --- Primitive hooks (called by PersistentRegion on success) -------------
  void OnStore(const PersistentRegion* region, uint64_t offset,
               uint64_t size);
  void OnNtStore(const PersistentRegion* region, uint64_t offset,
                 uint64_t size);
  void OnFlush(const PersistentRegion* region, uint64_t offset,
               uint64_t size);
  /// `drained_lines` is what the region's tracker reported draining —
  /// cross-validated against the mirror (drift detection).
  void OnFence(const PersistentRegion* region, uint64_t drained_lines);
  void OnTruncate(const PersistentRegion* region, uint64_t offset);
  /// Crash applied: volatile := persisted, tracker reset — mirror too.
  void OnCrash(const PersistentRegion* region);

  // --- Protocol boundaries (called by DurableTable) ------------------------
  /// About to write the epoch's commit record: every mirrored line of
  /// `region` must already be fenced (the payload's durability must
  /// dominate the marker).
  void OnCommitRecord(const PersistentRegion* region, uint64_t epoch);
  /// Volatile publish covering [begin, end) of `region`: every mirrored
  /// line in the range must be clean. `what` labels the publish site.
  void OnPublish(const PersistentRegion* region, uint64_t begin,
                 uint64_t end, const std::string& what);

  // --- Results -------------------------------------------------------------
  bool clean() const;
  std::vector<Violation> violations() const;
  uint64_t total_violations() const;
  uint64_t fences_checked() const;
  uint64_t publishes_checked() const;
  uint64_t commit_records_checked() const;
  /// Lines re-flushed while already accepted / clean (wasted clwb).
  uint64_t redundant_flush_lines() const;

 private:
  struct Mirror {
    std::string name;
    std::vector<LineState> states;
    /// Non-clean line indexes — keeps every check O(in-flight lines),
    /// not O(region lines), so exhaustive crash sweeps stay cheap.
    std::set<uint64_t> touched;
  };

  Mirror* Find(const PersistentRegion* region);
  void Record(const std::string& rule, const Mirror& mirror, uint64_t line,
              std::string detail);
  static const char* StateName(LineState state);

  mutable std::mutex mutex_;
  std::map<const PersistentRegion*, Mirror> mirrors_;
  std::vector<Violation> violations_;
  uint64_t total_violations_ = 0;
  uint64_t fences_checked_ = 0;
  uint64_t publishes_checked_ = 0;
  uint64_t commit_records_checked_ = 0;
  uint64_t redundant_flush_lines_ = 0;
};

}  // namespace pmemolap
