// Redo-log record framing and recovery scan.
//
// The log is an append-only byte stream of CRC32-framed records living in
// a PersistentRegion. Two record types drive the ingest protocol:
//
//   kData    epoch's payload plus the table offset it applies at
//   kCommit  the epoch's durability point — once this record's bytes are
//            in the persistence domain, the epoch is committed
//
// Framing is self-validating: a 32-byte header carries a magic, the
// payload length, and a CRC32 (reuse of common/crc32.h) computed over the
// header with the crc field zeroed plus the payload. A crash can tear a
// record anywhere — mid-header, mid-payload, even mid-cache-line — and the
// scan detects it as a CRC mismatch and truncates there. This file only
// encodes and scans bytes; the append *ordering* (store → flush → fence →
// commit) lives in DurableTable where the persist-discipline lint rule
// can see the primitive call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace pmemolap {

enum class LogRecordType : uint16_t {
  kData = 1,
  kCommit = 2,
};

/// On-log record header. Fixed layout, memcpy'd — never cast in place.
struct LogRecordHeader {
  uint32_t magic = 0;         ///< kLogMagic
  uint16_t type = 0;          ///< LogRecordType
  uint16_t reserved = 0;
  uint64_t epoch = 0;         ///< 1-based ingest epoch
  uint64_t table_offset = 0;  ///< where a kData payload applies
  uint32_t payload_bytes = 0;
  uint32_t crc = 0;  ///< CRC32(header with crc=0, then payload)
};
static_assert(sizeof(LogRecordHeader) == 32, "log header layout");

inline constexpr uint32_t kLogMagic = 0x504D4C47;  // "PMLG"
/// Records are padded to this multiple so headers stay line-friendly.
inline constexpr uint64_t kLogRecordAlign = 8;

/// Total on-log footprint of a record with `payload_bytes` of payload.
uint64_t LogRecordFootprint(uint64_t payload_bytes);

/// Serializes a data record (header + payload, padded to kLogRecordAlign).
std::vector<std::byte> EncodeDataRecord(uint64_t epoch, uint64_t table_offset,
                                        const std::byte* payload,
                                        uint32_t payload_bytes);
/// Serializes a commit marker for `epoch`.
std::vector<std::byte> EncodeCommitRecord(uint64_t epoch);

/// One validated record located in the log image.
struct ScannedRecord {
  LogRecordType type = LogRecordType::kData;
  uint64_t epoch = 0;
  uint64_t table_offset = 0;
  uint32_t payload_bytes = 0;
  /// Offset of the payload's first byte within the log image.
  uint64_t payload_offset = 0;
};

/// Result of scanning a (possibly crash-torn) log image.
struct LogScan {
  std::vector<ScannedRecord> records;  ///< valid records, log order
  /// Highest epoch with a valid commit marker (0 = none committed).
  uint64_t committed_epoch = 0;
  /// First byte past that epoch's commit record — recovery truncates the
  /// log here, dropping any abandoned in-flight suffix.
  uint64_t committed_bytes = 0;
  /// First byte past the last valid record — the append tail after
  /// recovery truncates the torn suffix.
  uint64_t valid_bytes = 0;
  /// Scan stopped on a CRC mismatch / impossible header rather than a
  /// clean zeroed tail: a torn or corrupt record was dropped.
  bool torn_tail = false;
  /// Commit markers for an epoch at or below the already-committed one —
  /// a corruption pattern recovery tolerates idempotently.
  uint64_t duplicate_commits = 0;
  /// Valid data records after the last commit marker (the in-flight,
  /// never-committed epoch a crash abandoned).
  uint64_t uncommitted_records = 0;
};

/// Scans `size` bytes of log image. Pure function of the bytes: callers
/// pass either the persisted image (crash recovery) or the volatile one.
LogScan ScanLog(const std::byte* data, uint64_t size);

}  // namespace pmemolap
