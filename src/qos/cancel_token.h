// CancelToken — cooperative cancellation for queries in flight.
//
// The token is armed with any combination of a wall-clock budget, a
// modeled-platform-time deadline, and a fault-retry budget, then checked
// by the executor *between morsels* (WorkStealingPool::RunControl::cancel)
// — never mid-kernel, so a cancelled query leaves no torn per-worker
// state. The first expired limit latches a terminal Status
// (kDeadlineExceeded / kResourceExhausted) that every later Check()
// returns; remaining morsels drain unexecuted and are reported as dropped
// in the query's partial-progress stats.
//
// This layer reads the host clock by design (wall deadlines are a
// wall-clock concept), so src/qos/ is exempt from the lint determinism
// rule the model layers obey; modeled deadlines stay deterministic.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

#include "common/status.h"
#include "qos/query_options.h"

namespace pmemolap::qos {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms the wall deadline `budget_seconds` from now (0 = already
  /// expired at the first Check).
  void ArmWall(double budget_seconds);

  /// Arms the modeled deadline: expires when `clock()` (modeled platform
  /// seconds, e.g. FaultInjector::now) reaches `deadline_seconds`. A null
  /// clock leaves the token unarmed.
  void ArmModeled(double deadline_seconds, std::function<double()> clock);

  /// Arms the retry budget: expires with kResourceExhausted once
  /// `used()` grows more than `budget` beyond its value at arm time.
  /// `used` is typically [injector]{ return injector->counters().retries; }.
  void ArmRetryBudget(uint64_t budget, std::function<uint64_t()> used);

  /// Latches a terminal status directly (external abort). A non-OK
  /// `reason` is latched as-is; an OK reason becomes kUnavailable.
  void Cancel(Status reason);

  /// The cancellation point: OK while the query may continue, else the
  /// latched terminal status. Cheap; safe to call concurrently from pool
  /// workers.
  Status Check();

  /// True once a terminal status has latched.
  bool cancelled() const;

 private:
  mutable std::mutex mutex_;
  Status status_;  // OK until a limit expires or Cancel() latches

  bool wall_armed_ = false;
  std::chrono::steady_clock::time_point wall_deadline_;

  bool modeled_armed_ = false;
  double modeled_deadline_seconds_ = 0.0;
  std::function<double()> modeled_clock_;

  bool retry_armed_ = false;
  uint64_t retry_budget_ = 0;
  uint64_t retries_at_arm_ = 0;
  std::function<uint64_t()> retries_used_;
};

/// Arms `token` from a query's options: the wall budget (measured from
/// now) and the modeled deadline (against options.modeled_clock, falling
/// back to `default_modeled_clock` — typically the engine's injector
/// clock). The retry budget is armed separately because it needs the
/// injector's counter.
void ArmFromOptions(CancelToken* token, const QueryOptions& options,
                    std::function<double()> default_modeled_clock = nullptr);

}  // namespace pmemolap::qos
