#include "qos/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

namespace pmemolap::qos {

void AdmissionTicket::Release() {
  if (controller_ == nullptr) return;
  controller_->Release();
  controller_ = nullptr;
}

AdmissionController::AdmissionController(AdmissionLimits limits)
    : limits_(limits) {}

void AdmissionController::SetLoadSignal(const LoadSignal& signal) {
  std::lock_guard<std::mutex> lock(mutex_);
  signal_ = signal;
}

LoadSignal AdmissionController::load_signal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return signal_;
}

int AdmissionController::EffectiveQueueLimitLocked(
    QueryPriority priority) const {
  int base = 0;
  switch (priority) {
    case QueryPriority::kHigh:
      base = limits_.high_queue;
      break;
    case QueryPriority::kNormal:
      base = limits_.normal_queue;
      if (signal_.degradation < limits_.shed_normal_below) return 0;
      break;
    case QueryPriority::kBatch:
      base = limits_.batch_queue;
      if (signal_.degradation < limits_.shed_batch_below) return 0;
      break;
  }
  // Executor runs queued beyond the concurrency target mean the pool is
  // already behind; each such run eats one slot of queue room.
  const int excess =
      std::max(0, signal_.executor_depth - limits_.max_concurrent);
  return std::max(0, base - excess);
}

int AdmissionController::EffectiveQueueLimit(QueryPriority priority) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return EffectiveQueueLimitLocked(priority);
}

int AdmissionController::StarvedClassLocked() const {
  if (limits_.aging_grants <= 0) return -1;
  for (int p = 0; p < kNumPriorities; ++p) {
    if (waiting_[p] > 0 && bypass_grants_[p] >= limits_.aging_grants) {
      return p;
    }
  }
  return -1;
}

void AdmissionController::NoteGrantLocked(int priority) {
  bypass_grants_[priority] = 0;
  for (int p = priority + 1; p < kNumPriorities; ++p) {
    if (waiting_[p] > 0) ++bypass_grants_[p];
  }
}

bool AdmissionController::CanRunLocked(int priority) const {
  if (recovery_paused_) return false;
  if (running_ >= std::max(1, limits_.max_concurrent)) return false;
  // An aged class holds the reservation for this slot: only it may run,
  // even past higher-priority waiters — this is what bounds every
  // waiter's delay under sustained high-priority traffic.
  const int starved = StarvedClassLocked();
  if (starved >= 0) return priority == starved;
  for (int p = 0; p < priority; ++p) {
    if (waiting_[p] > 0) return false;  // higher-priority waiter first
  }
  return true;
}

Result<AdmissionTicket> AdmissionController::TryAdmit(
    QueryPriority priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  const int p = static_cast<int>(priority);
  if (recovery_paused_) {
    ++counters_.shed;
    return Status::Unavailable("admission paused (recovery in progress)");
  }
  if (!CanRunLocked(p)) {
    ++counters_.shed;
    return Status::ResourceExhausted(
        std::string("admission refused (no free slot, priority ") +
        QueryPriorityName(priority) + ")");
  }
  NoteGrantLocked(p);
  ++running_;
  counters_.peak_running =
      std::max<uint64_t>(counters_.peak_running,
                         static_cast<uint64_t>(running_));
  ++counters_.admitted;
  return AdmissionTicket(this);
}

Result<AdmissionTicket> AdmissionController::Admit(QueryPriority priority,
                                                   CancelToken* token) {
  std::unique_lock<std::mutex> lock(mutex_);
  const int p = static_cast<int>(priority);
  // Deadline precedence: a token that has already expired never admits
  // and never sheds — the deadline, not the queue, is what failed, so the
  // caller gets the token's terminal status (kDeadlineExceeded) even when
  // the class queue is also full.
  if (token != nullptr) {
    Status expired = token->Check();
    if (!expired.ok()) {
      ++counters_.expired_waiting;
      return expired;
    }
  }
  if (!CanRunLocked(p)) {
    if (waiting_[p] >= EffectiveQueueLimitLocked(priority)) {
      ++counters_.shed;
      return Status::ResourceExhausted(
          std::string("admission queue full for priority ") +
          QueryPriorityName(priority) + " (limit " +
          std::to_string(EffectiveQueueLimitLocked(priority)) + ")");
    }
    ++waiting_[p];
    uint64_t total_waiting = 0;
    for (int q = 0; q < kNumPriorities; ++q) {
      total_waiting += static_cast<uint64_t>(waiting_[q]);
    }
    counters_.peak_waiting = std::max(counters_.peak_waiting, total_waiting);
    while (!CanRunLocked(p)) {
      if (token != nullptr) {
        Status expired = token->Check();
        if (!expired.ok()) {
          --waiting_[p];
          // A class with no waiters holds no reservation: a future
          // waiter must age on its own, not inherit this one's credit.
          if (waiting_[p] == 0) bypass_grants_[p] = 0;
          ++counters_.expired_waiting;
          cv_.notify_all();  // a higher-priority hole may have opened
          return expired;
        }
      }
      // Short slices instead of a wait-until: the token may carry a
      // modeled deadline no host time_point can represent.
      cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    --waiting_[p];
    if (limits_.aging_grants > 0 &&
        bypass_grants_[p] >= limits_.aging_grants) {
      ++counters_.aged_grants;  // this grant consumed an aging reservation
    }
  }
  NoteGrantLocked(p);
  ++running_;
  counters_.peak_running = std::max<uint64_t>(
      counters_.peak_running, static_cast<uint64_t>(running_));
  ++counters_.admitted;
  return AdmissionTicket(this);
}

void AdmissionController::PauseForRecovery() {
  std::lock_guard<std::mutex> lock(mutex_);
  recovery_paused_ = true;
}

void AdmissionController::ResumeAfterRecovery() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    recovery_paused_ = false;
  }
  cv_.notify_all();
}

bool AdmissionController::recovery_paused() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovery_paused_;
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    ++counters_.completed;
  }
  cv_.notify_all();
}

AdmissionCounters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

int AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int total = 0;
  for (int p = 0; p < kNumPriorities; ++p) total += waiting_[p];
  return total;
}

double DegradationEstimate(const FaultInjector& injector) {
  double worst_dimm = 1.0;
  for (const ThrottleWindow& window : injector.spec().throttle_windows) {
    if (window.Contains(injector.now())) {
      worst_dimm =
          std::min(worst_dimm, injector.DimmServiceFactor(window.socket));
    }
  }
  return DegradationEstimate(worst_dimm, injector.UpiCapacityFactor());
}

double DegradationEstimate(double dimm_service_factor,
                           double upi_capacity_factor) {
  return std::clamp(std::min(dimm_service_factor, upi_capacity_factor), 0.0,
                    1.0);
}

}  // namespace pmemolap::qos
