// AdmissionController — bounded admission in front of the executor.
//
// PMEM bandwidth collapses under unmanaged concurrency (PAPER.md §4–5):
// past the saturation point every extra query slows *all* queries, so the
// robust move is to refuse work the system cannot absorb. The controller
// keeps a fixed number of queries running, queues a bounded number per
// priority class, and sheds the rest fast with kResourceExhausted. The
// queue bounds shrink under backpressure — executor run-queue depth
// (WorkStealingPool::inflight_runs) plus the fault injector's degradation
// estimate — so a throttled or fault-ridden platform admits less, and
// batch work is shed first.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/status.h"
#include "fault/fault_injector.h"
#include "qos/cancel_token.h"
#include "qos/query_options.h"

namespace pmemolap::qos {

/// Static admission configuration. Defaults suit the tests and the
/// overload bench; a deployment tunes them to its pool size.
struct AdmissionLimits {
  /// Queries holding an execution slot at once.
  int max_concurrent = 2;
  /// Waiters allowed per priority class; a submission beyond its class
  /// bound is shed immediately.
  int high_queue = 8;
  int normal_queue = 4;
  int batch_queue = 2;
  /// Degradation (1.0 healthy … 0.0 dead) below which batch-priority
  /// submissions get a zero-length queue (shed unless a slot is free).
  double shed_batch_below = 0.75;
  /// Below this, normal priority is shed too; only high may still queue.
  double shed_normal_below = 0.40;
  /// Priority aging: once this many execution slots have been granted to
  /// strictly-higher-priority submissions while a class had a waiter
  /// queued, that class holds a *reservation* — the next free slot goes
  /// to its head waiter even though higher-priority waiters remain, and
  /// the class's bypass count resets. Bounds the wait of any queued
  /// submission to aging_grants slot grants per priority level above it;
  /// 0 disables aging (strict priority, the pre-aging behavior).
  int aging_grants = 16;
};

/// Live backpressure inputs, refreshed by the engine before each admit.
struct LoadSignal {
  /// WorkStealingPool::inflight_runs(): submitted-but-unfinished runs.
  /// Depth beyond max_concurrent eats queue room one-for-one.
  int executor_depth = 0;
  /// Platform health estimate (see DegradationEstimate), 1.0 = healthy.
  double degradation = 1.0;
};

/// Evidence of what the gate did — the overload bench's scorecard.
struct AdmissionCounters {
  uint64_t admitted = 0;         ///< tickets granted
  uint64_t shed = 0;             ///< refused with kResourceExhausted
  uint64_t expired_waiting = 0;  ///< deadline fired while queued (or at
                                 ///< the gate, before ever running)
  uint64_t completed = 0;        ///< tickets released
  uint64_t aged_grants = 0;      ///< slots granted via an aging reservation
  uint64_t peak_running = 0;
  uint64_t peak_waiting = 0;
};

class AdmissionController;

/// RAII execution slot: releasing (or destroying) it readmits a waiter.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { Release(); }

  bool valid() const { return controller_ != nullptr; }
  void Release();

 private:
  friend class AdmissionController;
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}
  AdmissionController* controller_ = nullptr;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits = AdmissionLimits());

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Publishes fresh backpressure inputs (engine calls this before each
  /// admission attempt).
  void SetLoadSignal(const LoadSignal& signal);
  LoadSignal load_signal() const;

  /// Non-blocking gate: a ticket when a slot is free right now,
  /// kResourceExhausted otherwise. Never queues.
  Result<AdmissionTicket> TryAdmit(QueryPriority priority);

  /// Blocking gate: a free slot admits immediately; otherwise the caller
  /// queues up to its class's (backpressure-shrunk) bound and waits for a
  /// release. Over-bound submissions shed fast with kResourceExhausted;
  /// a waiter whose `token` expires leaves with that terminal status
  /// (kDeadlineExceeded) instead of ever running. An already-expired
  /// token never admits and never sheds: the deadline, not the queue, is
  /// what failed, so the call reports the token's terminal status even
  /// when the class queue is also full. Queued low-priority waiters age
  /// (AdmissionLimits::aging_grants), so sustained high-priority traffic
  /// cannot starve them indefinitely.
  Result<AdmissionTicket> Admit(QueryPriority priority,
                                CancelToken* token = nullptr);

  /// The queue bound `priority` currently gets, after the load signal's
  /// shrinkage — 0 means "shed unless a slot is free".
  int EffectiveQueueLimit(QueryPriority priority) const;

  /// Recovery gate: while paused no new query is admitted. TryAdmit fails
  /// fast with kUnavailable ("recovery in progress"); Admit queues (its
  /// class bound still applies) and wakes on ResumeAfterRecovery — or
  /// leaves with its token's terminal status if the deadline fires first.
  /// Queries already running keep their tickets; crash-consistent recovery
  /// only needs to stop NEW snapshots from being pinned while the redo log
  /// is being replayed. Idempotent; pause depth is not counted.
  void PauseForRecovery();
  void ResumeAfterRecovery();
  bool recovery_paused() const;

  AdmissionCounters counters() const;
  int running() const;
  int waiting() const;
  const AdmissionLimits& limits() const { return limits_; }

 private:
  friend class AdmissionTicket;
  void Release();

  int EffectiveQueueLimitLocked(QueryPriority priority) const;
  /// A slot is free, no strictly-higher-priority waiter is queued (unless
  /// this class's aging reservation overrides them), and no other class
  /// holds an aging reservation.
  bool CanRunLocked(int priority) const;
  /// The highest-priority class whose queued waiter has aged past
  /// aging_grants (holds the next-slot reservation); -1 when none.
  int StarvedClassLocked() const;
  /// Bookkeeping for one granted slot at `priority`: bumps the bypass
  /// count of every lower class with waiters, resets this class's.
  void NoteGrantLocked(int priority);

  const AdmissionLimits limits_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  LoadSignal signal_;
  bool recovery_paused_ = false;
  int running_ = 0;
  int waiting_[kNumPriorities] = {0, 0, 0};
  /// Slots granted to strictly-higher classes while class p had waiters
  /// queued; reset when class p is granted a slot.
  int bypass_grants_[kNumPriorities] = {0, 0, 0};
  AdmissionCounters counters_;
};

/// The platform-health half of the backpressure signal: the worst active
/// DIMM throttle service factor combined with the UPI capacity factor at
/// the injector's current platform time, clamped to [0, 1]. 1.0 = healthy.
double DegradationEstimate(const FaultInjector& injector);

/// Pure form of the same reduction, for callers that already sampled the
/// platform (the bandwidth governor's telemetry): min of the worst DIMM
/// service factor and the UPI capacity factor, clamped to [0, 1].
/// BandwidthGovernor::ThrottleEstimate computes exactly this, so overload
/// shedding and bandwidth governance shed against ONE health signal.
double DegradationEstimate(double dimm_service_factor,
                           double upi_capacity_factor);

}  // namespace pmemolap::qos
