// Query-lifecycle QoS vocabulary: deadlines, priorities, retry budgets
// and partial-progress reporting.
//
// The paper assumes a cooperative tenant; a production engine serving
// concurrent traffic must bound how long a query may run (PMEM bandwidth
// collapse under overload makes unbounded queries toxic to everyone) and
// report how far a cancelled query got. These types are pure data — the
// CancelToken and AdmissionController give them behavior.
#pragma once

#include <cstdint>
#include <functional>

namespace pmemolap::qos {

/// Sentinel for "no deadline" (deadline fields are in seconds and a value
/// of exactly 0 means "already expired", so absence needs a negative).
inline constexpr double kNoDeadline = -1.0;

/// When a query must be done. Both limits may be armed at once; whichever
/// expires first cancels the query (cooperatively, between morsels).
struct Deadline {
  /// Wall-clock budget in seconds from the moment the query is submitted
  /// (kNoDeadline = unbounded; 0 = expired at the first check).
  double wall_budget_seconds = kNoDeadline;
  /// Absolute modeled platform time (FaultInjector::now()) at which the
  /// query expires (kNoDeadline = unbounded). Deterministic: scenarios
  /// that advance platform time replay identical cancellations.
  double modeled_deadline_seconds = kNoDeadline;

  bool unset() const {
    return wall_budget_seconds < 0.0 && modeled_deadline_seconds < 0.0;
  }

  static Deadline Wall(double budget_seconds) {
    Deadline d;
    d.wall_budget_seconds = budget_seconds;
    return d;
  }
  static Deadline Modeled(double deadline_seconds) {
    Deadline d;
    d.modeled_deadline_seconds = deadline_seconds;
    return d;
  }
};

/// Admission classes, highest first. Under backpressure the controller
/// sheds batch first, then normal; high-priority work keeps the deepest
/// queue.
enum class QueryPriority {
  kHigh = 0,
  kNormal = 1,
  kBatch = 2,
};

inline constexpr int kNumPriorities = 3;

const char* QueryPriorityName(QueryPriority priority);

/// How far a query got before finishing or being cancelled — returned
/// alongside kDeadlineExceeded so callers see partial progress instead of
/// a bare error. For the morsel executor the unit is morsels; the serial
/// and static-thread paths count their per-socket ranges.
struct QueryProgress {
  bool admitted = false;        ///< passed the admission gate (or no gate)
  uint64_t units_total = 0;     ///< morsels (or ranges) the plan held
  uint64_t units_executed = 0;  ///< completed before the query ended
  uint64_t units_dropped = 0;   ///< drained unexecuted after cancellation
  uint64_t units_stolen = 0;    ///< executed via work stealing
};

/// Sentinel for "read at the newest committed ingest epoch".
inline constexpr uint64_t kLatestSnapshot = ~uint64_t{0};

/// Sentinel for "scan through the end of the fact table".
inline constexpr uint64_t kScanToEnd = ~uint64_t{0};

/// Per-query lifecycle options accepted by SsbEngine::Execute and
/// ExecutePlanParallel. Default-constructed options change nothing: no
/// deadline, normal priority, unlimited retries.
struct QueryOptions {
  Deadline deadline;
  QueryPriority priority = QueryPriority::kNormal;
  /// Fault-layer retries (FaultInjector counter deltas) this query may
  /// consume before aborting with kResourceExhausted; enforced
  /// cooperatively between morsels. Negative = unlimited.
  int64_t retry_budget = -1;
  /// Clock for the modeled deadline. Defaults to the engine's fault
  /// injector platform time; required when a modeled deadline is used
  /// without a fault domain (a modeled deadline with no clock is ignored).
  std::function<double()> modeled_clock;
  /// Optional out-param: filled with partial-progress stats whether the
  /// query completes, sheds or expires. Must outlive the Execute call.
  QueryProgress* progress = nullptr;
  /// Durable-mode snapshot pin: the committed ingest epoch this query
  /// reads at. kLatestSnapshot resolves once at the start of Execute, so
  /// a query's view never advances mid-run while ingest keeps committing.
  /// Ignored outside durable mode.
  uint64_t snapshot_epoch = kLatestSnapshot;
  /// Fact-scan window: the query scans only lineorder tuples in
  /// [scan_begin, scan_end) — the vehicle for skewed (Zipf-segmented)
  /// larger-than-memory workloads, where each query hits one segment of
  /// the table and the tiering layer learns which segments are hot.
  /// Defaults scan everything; windows compose with durable snapshots
  /// (both clamp the same ranges).
  uint64_t scan_begin = 0;
  uint64_t scan_end = kScanToEnd;
};

}  // namespace pmemolap::qos
