#include "qos/cancel_token.h"

#include <string>
#include <utility>

namespace pmemolap::qos {

const char* QueryPriorityName(QueryPriority priority) {
  switch (priority) {
    case QueryPriority::kHigh:
      return "high";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kBatch:
      return "batch";
  }
  return "unknown";
}

void CancelToken::ArmWall(double budget_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  wall_armed_ = true;
  wall_deadline_ =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(budget_seconds));
}

void CancelToken::ArmModeled(double deadline_seconds,
                             std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (clock == nullptr) return;
  modeled_armed_ = true;
  modeled_deadline_seconds_ = deadline_seconds;
  modeled_clock_ = std::move(clock);
}

void CancelToken::ArmRetryBudget(uint64_t budget,
                                 std::function<uint64_t()> used) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (used == nullptr) return;
  retry_armed_ = true;
  retry_budget_ = budget;
  retries_at_arm_ = used();
  retries_used_ = std::move(used);
}

void CancelToken::Cancel(Status reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!status_.ok()) return;  // first terminal status wins
  status_ = reason.ok() ? Status::Unavailable("query cancelled")
                        : std::move(reason);
}

Status CancelToken::Check() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!status_.ok()) return status_;
  if (wall_armed_ &&
      std::chrono::steady_clock::now() >= wall_deadline_) {
    status_ = Status::DeadlineExceeded("wall-clock deadline expired");
  } else if (modeled_armed_ &&
             modeled_clock_() >= modeled_deadline_seconds_) {
    status_ = Status::DeadlineExceeded(
        "modeled deadline expired at platform time " +
        std::to_string(modeled_deadline_seconds_) + " s");
  } else if (retry_armed_) {
    const uint64_t used = retries_used_() - retries_at_arm_;
    if (used > retry_budget_) {
      status_ = Status::ResourceExhausted(
          "retry budget exhausted: " + std::to_string(used) +
          " fault-layer retries > budget " + std::to_string(retry_budget_));
    }
  }
  return status_;
}

bool CancelToken::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !status_.ok();
}

void ArmFromOptions(CancelToken* token, const QueryOptions& options,
                    std::function<double()> default_modeled_clock) {
  if (options.deadline.wall_budget_seconds >= 0.0) {
    token->ArmWall(options.deadline.wall_budget_seconds);
  }
  if (options.deadline.modeled_deadline_seconds >= 0.0) {
    std::function<double()> clock = options.modeled_clock
                                        ? options.modeled_clock
                                        : std::move(default_modeled_clock);
    token->ArmModeled(options.deadline.modeled_deadline_seconds,
                      std::move(clock));
  }
}

}  // namespace pmemolap::qos
