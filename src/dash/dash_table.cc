#include "dash/dash_table.h"

#include <cassert>

namespace pmemolap {

int DashTable::Bucket::FindSlot(uint64_t key, uint8_t fingerprint) const {
  for (int slot = 0; slot < kSlotsPerBucket; ++slot) {
    if ((bitmap & (1u << slot)) == 0) continue;
    if (fingerprints[slot] != fingerprint) continue;
    if (keys[slot] == key) return slot;
  }
  return -1;
}

bool DashTable::Bucket::InsertSlot(uint64_t key, uint64_t value,
                                   uint8_t fingerprint) {
  for (int slot = 0; slot < kSlotsPerBucket; ++slot) {
    if ((bitmap & (1u << slot)) != 0) continue;
    bitmap = static_cast<uint16_t>(bitmap | (1u << slot));
    fingerprints[slot] = fingerprint;
    keys[slot] = key;
    values[slot] = value;
    ++count;
    return true;
  }
  return false;
}

void DashTable::Bucket::EraseSlot(int slot) {
  bitmap = static_cast<uint16_t>(bitmap & ~(1u << slot));
  --count;
}

DashTable::DashTable(const Options& options) : options_(options) {
  global_depth_ = options_.initial_depth;
  size_t segments = size_t{1} << global_depth_;
  directory_.reserve(segments);
  for (size_t i = 0; i < segments; ++i) {
    auto segment = std::make_shared<Segment>();
    segment->local_depth = global_depth_;
    directory_.push_back(std::move(segment));
  }
}

uint64_t DashTable::HashKey(uint64_t key) {
  // splitmix64 finalizer: full-avalanche, cheap.
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

size_t DashTable::DirectoryIndex(uint64_t hash) const {
  if (global_depth_ == 0) return 0;
  return static_cast<size_t>(hash >> (64 - global_depth_));
}

uint64_t DashTable::num_segments() const {
  // Distinct segments (directory entries may alias after doubling).
  uint64_t count = 0;
  const Segment* last = nullptr;
  for (const auto& segment : directory_) {
    if (segment.get() != last) {
      ++count;
      last = segment.get();
    }
  }
  return count;
}

double DashTable::LoadFactor() const {
  uint64_t slots =
      num_segments() * (kBucketsPerSegment + kStashBuckets) * kSlotsPerBucket;
  return slots == 0 ? 0.0
                    : static_cast<double>(size_) / static_cast<double>(slots);
}

uint64_t DashTable::StorageBytes() const {
  return num_segments() * (kBucketsPerSegment + kStashBuckets) * kBucketBytes;
}

bool DashTable::TryInsert(Segment* segment, uint64_t hash, uint64_t key,
                          uint64_t value) {
  const uint8_t fingerprint = FingerprintOf(hash);
  int target = BucketIndex(hash);
  int neighbor = (target + 1) % kBucketsPerSegment;
  // Balanced insertion: prefer the emptier of target and neighbor
  // (Dash-style displacement keeps load factors high).
  Bucket* primary = &segment->buckets[target];
  Bucket* secondary = &segment->buckets[neighbor];
  if (secondary->count < primary->count) std::swap(primary, secondary);
  bucket_probes_.fetch_add(1, std::memory_order_relaxed);
  if (primary->InsertSlot(key, value, fingerprint)) return true;
  bucket_probes_.fetch_add(1, std::memory_order_relaxed);
  if (secondary->InsertSlot(key, value, fingerprint)) return true;
  for (int stash = 0; stash < kStashBuckets; ++stash) {
    bucket_probes_.fetch_add(1, std::memory_order_relaxed);
    if (segment->buckets[kBucketsPerSegment + stash].InsertSlot(
            key, value, fingerprint)) {
      return true;
    }
  }
  return false;
}

Status DashTable::Insert(uint64_t key, uint64_t value) {
  if (Get(key).has_value()) {
    return Status::AlreadyExists("key already present");
  }
  uint64_t hash = HashKey(key);
  // A split may need to repeat if all of a key's candidate buckets remain
  // full (possible with skewed low bits); each split strictly reduces the
  // splitting segment's load, so this terminates.
  for (int attempt = 0; attempt < 64; ++attempt) {
    Segment* segment = directory_[DirectoryIndex(hash)].get();
    if (TryInsert(segment, hash, key, value)) {
      ++size_;
      return Status::OK();
    }
    PMEMOLAP_RETURN_NOT_OK(SplitSegment(hash));
  }
  return Status::Internal("insert failed after repeated splits");
}

Status DashTable::SplitSegment(uint64_t hash) {
  size_t dir_index = DirectoryIndex(hash);
  std::shared_ptr<Segment> old_segment = directory_[dir_index];

  if (old_segment->local_depth == global_depth_) {
    // Double the directory.
    if (global_depth_ >= 48) {
      return Status::ResourceExhausted("directory depth limit reached");
    }
    size_t old_size = directory_.size();
    directory_.resize(old_size * 2);
    for (size_t i = old_size; i-- > 0;) {
      directory_[2 * i] = directory_[i];
      directory_[2 * i + 1] = directory_[i];
    }
    ++global_depth_;
  }

  // Replace the old segment's directory range with two children split on
  // the next hash bit.
  int new_depth = old_segment->local_depth + 1;
  auto low = std::make_shared<Segment>();
  auto high = std::make_shared<Segment>();
  low->local_depth = new_depth;
  high->local_depth = new_depth;

  // Rehash every entry of the old segment into the children.
  uint64_t moved = 0;
  for (int b = 0; b < kBucketsPerSegment + kStashBuckets; ++b) {
    const Bucket& bucket = old_segment->buckets[b];
    for (int slot = 0; slot < kSlotsPerBucket; ++slot) {
      if ((bucket.bitmap & (1u << slot)) == 0) continue;
      uint64_t entry_hash = HashKey(bucket.keys[slot]);
      // Bit (64 - new_depth) decides the child.
      bool goes_high = ((entry_hash >> (64 - new_depth)) & 1ULL) != 0;
      Segment* child = goes_high ? high.get() : low.get();
      bool ok = TryInsert(child, entry_hash, bucket.keys[slot],
                          bucket.values[slot]);
      if (!ok) {
        // Extremely unlikely (child segment is at most as full as the
        // parent); treated as an internal invariant violation.
        return Status::Internal("split rehash overflow");
      }
      ++moved;
    }
  }
  (void)moved;

  // Update every directory entry pointing at the old segment.
  size_t entries_per_segment =
      directory_.size() >> static_cast<size_t>(new_depth - 1);
  // First directory slot of the old segment's range.
  size_t range_begin = (DirectoryIndex(hash) / entries_per_segment) *
                       entries_per_segment;
  size_t half = entries_per_segment / 2;
  assert(half >= 1);
  for (size_t i = 0; i < entries_per_segment; ++i) {
    directory_[range_begin + i] = i < half ? low : high;
  }
  return Status::OK();
}

std::optional<uint64_t> DashTable::Get(uint64_t key) const {
  uint64_t hash = HashKey(key);
  const uint8_t fingerprint = FingerprintOf(hash);
  const Segment* segment = directory_[DirectoryIndex(hash)].get();
  int target = BucketIndex(hash);
  int neighbor = (target + 1) % kBucketsPerSegment;
  for (int b : {target, neighbor}) {
    bucket_probes_.fetch_add(1, std::memory_order_relaxed);
    int slot = segment->buckets[b].FindSlot(key, fingerprint);
    if (slot >= 0) return segment->buckets[b].values[slot];
  }
  for (int stash = 0; stash < kStashBuckets; ++stash) {
    const Bucket& bucket = segment->buckets[kBucketsPerSegment + stash];
    if (bucket.count == 0) continue;
    bucket_probes_.fetch_add(1, std::memory_order_relaxed);
    int slot = bucket.FindSlot(key, fingerprint);
    if (slot >= 0) return bucket.values[slot];
  }
  return std::nullopt;
}

bool DashTable::Erase(uint64_t key) {
  uint64_t hash = HashKey(key);
  const uint8_t fingerprint = FingerprintOf(hash);
  Segment* segment = directory_[DirectoryIndex(hash)].get();
  int target = BucketIndex(hash);
  int neighbor = (target + 1) % kBucketsPerSegment;
  for (int b : {target, neighbor}) {
    bucket_probes_.fetch_add(1, std::memory_order_relaxed);
    int slot = segment->buckets[b].FindSlot(key, fingerprint);
    if (slot >= 0) {
      segment->buckets[b].EraseSlot(slot);
      --size_;
      return true;
    }
  }
  for (int stash = 0; stash < kStashBuckets; ++stash) {
    Bucket& bucket = segment->buckets[kBucketsPerSegment + stash];
    bucket_probes_.fetch_add(1, std::memory_order_relaxed);
    int slot = bucket.FindSlot(key, fingerprint);
    if (slot >= 0) {
      bucket.EraseSlot(slot);
      --size_;
      return true;
    }
  }
  return false;
}

}  // namespace pmemolap
