// DashTable — a simplified reimplementation of Dash (Lu et al., VLDB'20),
// the PMEM-optimized extendible hash table the paper's handcrafted SSB
// uses for joins (§6.2).
//
// The properties that matter for PMEM are preserved:
//  - Buckets are exactly 256 B (one Optane internal line), so a probe costs
//    one media access.
//  - Fingerprints (1 byte per slot) in the bucket header avoid touching
//    slot keys on mismatch.
//  - Displacement into the neighbor bucket plus per-segment stash buckets
//    keep the load factor high before a segment split.
//  - Extendible hashing: segments split locally; the directory doubles
//    only when a splitting segment's local depth equals the global depth.
//
// Keys and values are uint64_t (SSB join keys are integers). Keys are
// unique; inserting an existing key fails with AlreadyExists.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"

namespace pmemolap {

class DashTable {
 public:
  /// One bucket = one Optane line.
  static constexpr uint64_t kBucketBytes = 256;
  /// Slots per bucket: 32 B header (bitmap + count + 14 fingerprints,
  /// padded) + 14 x 16 B slots = 256 B.
  static constexpr int kSlotsPerBucket = 14;
  /// Regular buckets per segment.
  static constexpr int kBucketsPerSegment = 64;
  /// Stash buckets per segment, catching displacement overflow.
  static constexpr int kStashBuckets = 4;

  struct Options {
    /// Initial directory depth: 2^depth segments pre-allocated.
    int initial_depth = 2;
  };

  DashTable() : DashTable(Options{}) {}
  explicit DashTable(const Options& options);

  /// Inserts a unique key. AlreadyExists if the key is present.
  Status Insert(uint64_t key, uint64_t value);

  /// Point lookup.
  std::optional<uint64_t> Get(uint64_t key) const;

  /// Removes a key; returns true if it was present.
  bool Erase(uint64_t key);

  uint64_t size() const { return size_; }
  uint64_t num_segments() const;
  /// Fraction of occupied slots over allocated slots.
  double LoadFactor() const;
  /// Total bytes of bucket storage (each bucket is one 256 B Optane line).
  uint64_t StorageBytes() const;

  /// Cumulative 256 B bucket loads performed by Get/Insert/Erase since the
  /// last ResetStats — the probe traffic the profiling layer costs as
  /// random PMEM reads. Relaxed atomic: lookups run from concurrent
  /// worker threads.
  uint64_t bucket_probes() const {
    return bucket_probes_.load(std::memory_order_relaxed);
  }
  void ResetStats() { bucket_probes_.store(0, std::memory_order_relaxed); }

 private:
  struct Bucket {
    uint16_t bitmap = 0;  // occupancy of the 14 slots
    uint8_t count = 0;
    uint8_t fingerprints[kSlotsPerBucket] = {};
    uint64_t keys[kSlotsPerBucket] = {};
    uint64_t values[kSlotsPerBucket] = {};

    bool Full() const { return count == kSlotsPerBucket; }
    int FindSlot(uint64_t key, uint8_t fingerprint) const;
    bool InsertSlot(uint64_t key, uint64_t value, uint8_t fingerprint);
    void EraseSlot(int slot);
  };

  struct Segment {
    int local_depth = 0;
    Bucket buckets[kBucketsPerSegment + kStashBuckets];
  };

  static uint64_t HashKey(uint64_t key);
  static uint8_t FingerprintOf(uint64_t hash) {
    return static_cast<uint8_t>(hash & 0xFF);
  }
  /// Directory slot for a hash at the current global depth (top bits).
  size_t DirectoryIndex(uint64_t hash) const;
  static int BucketIndex(uint64_t hash) {
    // Low bits pick the bucket so splits (which consume top bits) do not
    // reshuffle bucket placement within a segment.
    return static_cast<int>(hash % kBucketsPerSegment);
  }

  /// Attempts insert into a segment without splitting. Returns true on
  /// success; false when target, neighbor, and stash are all full.
  bool TryInsert(Segment* segment, uint64_t hash, uint64_t key,
                 uint64_t value);

  /// Splits the segment owning `hash`, doubling the directory if needed.
  Status SplitSegment(uint64_t hash);

  Options options_;
  int global_depth_ = 0;
  std::vector<std::shared_ptr<Segment>> directory_;
  uint64_t size_ = 0;
  mutable std::atomic<uint64_t> bucket_probes_{0};
};

}  // namespace pmemolap
