#include "service/service.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace pmemolap::service {

namespace {

constexpr double kEps = 1e-9;

uint64_t Fnv1a(const std::string& data, uint64_t hash) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::string RenderCounters(const ServiceCounters& c) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "submitted=%llu retried=%llu edge_shed=%llu queue_shed=%llu "
      "gave_up=%llu granted=%llu degraded=%llu expired_queued=%llu "
      "expired_running=%llu completed=%llu incorrect=%llu failed=%llu "
      "aged=%llu real=%llu hits=%llu crashes=%llu recoveries=%llu "
      "epoch_regressions=%llu ingest_epochs=%llu ingest_rows=%llu "
      "breaker_trips=%llu",
      static_cast<unsigned long long>(c.submitted),
      static_cast<unsigned long long>(c.retried),
      static_cast<unsigned long long>(c.edge_shed),
      static_cast<unsigned long long>(c.queue_shed),
      static_cast<unsigned long long>(c.gave_up),
      static_cast<unsigned long long>(c.granted),
      static_cast<unsigned long long>(c.degraded_grants),
      static_cast<unsigned long long>(c.expired_queued),
      static_cast<unsigned long long>(c.expired_running),
      static_cast<unsigned long long>(c.completed),
      static_cast<unsigned long long>(c.incorrect_results),
      static_cast<unsigned long long>(c.failed_executions),
      static_cast<unsigned long long>(c.aged_grants),
      static_cast<unsigned long long>(c.real_executions),
      static_cast<unsigned long long>(c.cache_hits),
      static_cast<unsigned long long>(c.crashes),
      static_cast<unsigned long long>(c.recoveries),
      static_cast<unsigned long long>(c.epoch_regressions),
      static_cast<unsigned long long>(c.ingest_epochs),
      static_cast<unsigned long long>(c.ingest_rows),
      static_cast<unsigned long long>(c.breaker_trips));
  return buf;
}

std::string RenderLatency(const LatencySummary& s) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.6f p50=%.6f p95=%.6f p99=%.6f max=%.6f",
                static_cast<unsigned long long>(s.count), s.mean, s.p50,
                s.p95, s.p99, s.max);
  return buf;
}

LatencySummary Summarize(std::vector<double>* latencies) {
  LatencySummary s;
  s.count = latencies->size();
  if (latencies->empty()) return s;
  std::sort(latencies->begin(), latencies->end());
  double sum = 0.0;
  for (double v : *latencies) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  auto at = [&](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(s.count - 1));
    return (*latencies)[idx];
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  s.max = latencies->back();
  return s;
}

}  // namespace

std::vector<double> ServiceReport::RecoveryReentrySeconds(
    double slo_seconds) const {
  // Completions sorted by completion time, once.
  std::vector<std::pair<double, double>> done;  // (complete, latency)
  for (const RequestRecord& r : requests) {
    if (r.outcome == RequestOutcome::kCompleted) {
      done.emplace_back(r.complete_seconds, r.Latency());
    }
  }
  std::sort(done.begin(), done.end());
  std::vector<double> reentry;
  reentry.reserve(fault_clear_edges.size());
  for (double edge : fault_clear_edges) {
    double found = std::numeric_limits<double>::infinity();
    auto it = std::lower_bound(done.begin(), done.end(),
                               std::make_pair(edge, 0.0));
    for (; it != done.end(); ++it) {
      if (it->second <= slo_seconds) {
        found = it->first - edge;
        break;
      }
    }
    reentry.push_back(found);
  }
  return reentry;
}

uint64_t ServiceReport::Digest() const {
  uint64_t h = 0xCBF29CE484222325ULL;
  h = Fnv1a(RenderCounters(counters), h);
  h = Fnv1a(RenderLatency(latency), h);
  for (const LatencySummary& s : latency_by_priority) {
    h = Fnv1a(RenderLatency(s), h);
  }
  h = Fnv1a(chaos_log, h);
  for (const std::string& line : degradation_log) h = Fnv1a(line, h);
  h = Fnv1a(profile_csv, h);
  char buf[64];
  for (double edge : fault_clear_edges) {
    std::snprintf(buf, sizeof(buf), "edge=%.6f", edge);
    h = Fnv1a(buf, h);
  }
  return h;
}

QueryService::QueryService(const ssb::Database* db,
                           const MemSystemModel* model, ServiceConfig config)
    : db_(db),
      model_(model),
      config_(config),
      workload_(config.workload),
      chaos_(ChaosSchedule::Generate(config.chaos)),
      policy_(config.degradation),
      admission_(config.admission),
      reference_(db) {}

QueryService::~QueryService() = default;

Status QueryService::Prepare() {
  if (prepared_) return Status::OK();
  const ChaosConfig& chaos = config_.chaos;
  const bool poison_mode = chaos.poison_lines_per_mib > 0.0;
  const bool durable_mode = chaos.crashes > 0 || chaos.ingest_bursts > 0;
  if (poison_mode && durable_mode) {
    return Status::InvalidArgument(
        "chaos campaign cannot combine poisoned guarded media with "
        "durable ingest (EngineConfig fault and durable are exclusive)");
  }

  const FaultSpec spec = chaos_.ToFaultSpec();
  if (poison_mode || !spec.throttle_windows.empty() ||
      spec.upi_capacity_factor < 1.0) {
    injector_ = std::make_unique<FaultInjector>(spec);
  }
  if (poison_mode) {
    fault_space_ = std::make_unique<PmemSpace>(model_->config().topology);
    injector_->Arm(fault_space_.get());
    breakers_ = std::make_unique<BreakerBoard>(
        injector_.get(), std::max(1, chaos.sockets));
    domain_.space = fault_space_.get();
    domain_.injector = injector_.get();
    domain_.breakers = breakers_.get();
  }
  if (durable_mode) {
    durable_space_ = std::make_unique<PmemSpace>(model_->config().topology);
    crash_ = std::make_unique<CrashInjector>(chaos.seed);
    auto table = DurableTable::Create(durable_space_.get(), crash_.get(),
                                      DurableTable::Options());
    if (!table.ok()) return table.status();
    table_ = std::move(table.value());
    epoch_rows_.push_back(0);
  }
  if (config_.governor) {
    governor_ = std::make_unique<governor::BandwidthGovernor>(model_);
  }

  EngineConfig primary;
  primary.mode = EngineMode::kPmemAware;
  primary.media = Media::kPmem;
  primary.threads = config_.threads;
  primary.executor = config_.executor;
  primary.project_to_sf = config_.project_to_sf;
  primary.governor = governor_.get();
  // Guarded/durable modes take the scalar row path; columnar/vectorized
  // only apply to the plain campaigns.
  primary.columnar = config_.columnar && !poison_mode && !durable_mode;
  primary.vectorized = config_.vectorized && primary.columnar;
  if (poison_mode) primary.fault = &domain_;
  if (durable_mode) primary.durable = table_.get();
  // Admission lives at the service edge (we mirror the wait queues on
  // the modeled timeline); the engine gates nothing itself.
  primary.admission = nullptr;

  EngineConfig degraded = primary;
  degraded.threads = std::max(1, config_.degraded_threads);
  degraded.parallel_execution = false;
  degraded.governor = nullptr;

  primary_ = std::make_unique<SsbEngine>(db_, model_, primary);
  degraded_ = std::make_unique<SsbEngine>(db_, model_, degraded);
  Status st = primary_->Prepare();
  if (!st.ok()) return st;
  st = degraded_->Prepare();
  if (!st.ok()) return st;

  if (durable_mode) {
    // Seed the table with a committed prefix before traffic starts.
    const uint64_t total = db_->lineorder.size();
    const uint64_t seed_rows = static_cast<uint64_t>(
        static_cast<double>(total) *
        std::clamp(config_.initial_ingest_fraction, 0.0, 1.0));
    const int epochs = std::max(1, config_.initial_ingest_epochs);
    const uint64_t batch =
        (seed_rows + static_cast<uint64_t>(epochs) - 1) /
        static_cast<uint64_t>(epochs);
    while (ingested_rows_ < seed_rows && batch > 0) {
      const uint64_t count = std::min(batch, seed_rows - ingested_rows_);
      Result<uint64_t> epoch =
          primary_->Ingest(db_->lineorder.data() + ingested_rows_, count);
      if (!epoch.ok()) return epoch.status();
      ingested_rows_ += count;
      epoch_rows_.push_back(ingested_rows_);
      ++counters_.ingest_epochs;
      counters_.ingest_rows += count;
    }
  }
  prepared_ = true;
  return Status::OK();
}

void QueryService::Schedule(double at, EventKind kind, uint64_t arg) {
  events_.push(Event{at, seq_++, kind, arg});
}

bool QueryService::GrantsPaused() const {
  return policy_.tier() == DegradationTier::kPauseAndDrain ||
         admission_.recovery_paused();
}

Result<ServiceReport> QueryService::Run() {
  if (!prepared_) {
    Status st = Prepare();
    if (!st.ok()) return st;
  }

  fault_clear_edges_ = chaos_.FaultClearEdges();
  for (size_t i = 0; i < chaos_.events().size(); ++i) {
    Schedule(chaos_.events()[i].at_seconds, EventKind::kChaos, i);
  }
  if (config_.workload.arrival == ArrivalModel::kClosedLoop) {
    for (uint64_t c = 0; c < config_.workload.num_clients; ++c) {
      Schedule(workload_.NextThink(c), EventKind::kSubmit, c);
    }
  } else {
    Schedule(workload_.NextInterarrival(), EventKind::kArrival, 0);
  }
  OnTickEvent();  // tick 0 at t=0, schedules the rest

  while (!events_.empty() && run_error_.ok()) {
    const Event event = events_.top();
    events_.pop();
    now_ = std::max(now_, event.at);
    if (event.at > horizon() + kEps) {
      // Past the horizon only completions and recovery settle; nothing
      // new starts, so the queue drains and the loop terminates.
      if (event.kind != EventKind::kComplete &&
          event.kind != EventKind::kRecoveryDone) {
        continue;
      }
    }
    switch (event.kind) {
      case EventKind::kSubmit:
        OnSubmitEvent(event.arg);
        break;
      case EventKind::kArrival:
        OnArrivalEvent();
        break;
      case EventKind::kRetry:
        ++counters_.submitted;
        SubmitRequest(event.arg);
        break;
      case EventKind::kComplete:
        OnCompleteEvent(event.arg);
        break;
      case EventKind::kTick:
        OnTickEvent();
        break;
      case EventKind::kChaos:
        OnChaosEvent(event.arg);
        break;
      case EventKind::kRecoveryDone:
        OnRecoveryDone();
        break;
    }
  }
  if (!run_error_.ok()) return run_error_;

  ServiceReport report;
  counters_.breaker_trips = breakers_ ? breakers_->counters().trips : 0;
  report.counters = counters_;
  report.admission = admission_.counters();
  std::vector<double> all;
  std::vector<double> per_class[qos::kNumPriorities];
  for (const RequestRecord& r : requests_) {
    if (r.outcome != RequestOutcome::kCompleted) continue;
    all.push_back(r.Latency());
    per_class[static_cast<int>(r.priority)].push_back(r.Latency());
  }
  report.latency = Summarize(&all);
  for (int p = 0; p < qos::kNumPriorities; ++p) {
    report.latency_by_priority[p] = Summarize(&per_class[p]);
  }
  report.chaos_log = chaos_.Describe();
  report.degradation_log = policy_.transitions();
  report.profile_csv = profiler_.ToCsv();
  std::sort(fault_clear_edges_.begin(), fault_clear_edges_.end());
  report.fault_clear_edges = fault_clear_edges_;
  report.requests = std::move(requests_);
  return report;
}

void QueryService::OnSubmitEvent(uint64_t client) {
  const ClientProfile profile = workload_.ProfileOf(client);
  RequestRecord request;
  request.client = client;
  request.query = workload_.NextQuery(client);
  request.priority = profile.priority;
  request.submit_seconds = now_;
  request.deadline_seconds = profile.deadline_seconds > 0.0
                                 ? now_ + profile.deadline_seconds
                                 : -1.0;
  request.sheds_left = profile.shed_retry_budget;
  requests_.push_back(request);
  ++counters_.submitted;
  SubmitRequest(requests_.size() - 1);
}

void QueryService::OnArrivalEvent() {
  const uint64_t client = workload_.NextArrivalClient();
  const double next = now_ + workload_.NextInterarrival();
  if (next <= horizon()) Schedule(next, EventKind::kArrival, 0);
  // Open loop: the arrival submits regardless of the client's other
  // outstanding work — arrivals never slow down with the server.
  const ClientProfile profile = workload_.ProfileOf(client);
  RequestRecord request;
  request.client = client;
  request.query = workload_.NextQuery(client);
  request.priority = profile.priority;
  request.submit_seconds = now_;
  request.deadline_seconds = profile.deadline_seconds > 0.0
                                 ? now_ + profile.deadline_seconds
                                 : -1.0;
  request.sheds_left = profile.shed_retry_budget;
  requests_.push_back(request);
  ++counters_.submitted;
  SubmitRequest(requests_.size() - 1);
}

void QueryService::SubmitRequest(uint64_t id) {
  RequestRecord& request = requests_[id];
  const int p = static_cast<int>(request.priority);
  if (request.deadline_seconds >= 0.0 &&
      now_ >= request.deadline_seconds - kEps) {
    // Deadline precedence: an expired request is never shed — the
    // deadline, not the queue, is what failed (mirrors the gate).
    ExpireQueuedRequest(id);
    return;
  }
  // Tier 1+: batch refused at the edge before the gate sees it.
  if (policy_.tier() >= DegradationTier::kShedLowPriority &&
      request.priority == qos::QueryPriority::kBatch) {
    ShedRequest(id, /*edge=*/true);
    return;
  }
  const int limit = admission_.EffectiveQueueLimit(request.priority);
  const bool must_wait = GrantsPaused() || !CanRunMirror(p);
  if (must_wait &&
      queue_[p].size() >= static_cast<size_t>(std::max(0, limit))) {
    ShedRequest(id, /*edge=*/false);
    return;
  }
  queue_[p].push_back(id);
  PumpGrants();
}

void QueryService::ShedRequest(uint64_t id, bool edge) {
  RequestRecord& request = requests_[id];
  if (edge) {
    ++counters_.edge_shed;
  } else {
    ++counters_.queue_shed;
  }
  if (request.sheds_left > 0) {
    --request.sheds_left;
    ++counters_.retried;
    Schedule(now_ + workload_.NextBackoff(request.client), EventKind::kRetry,
             id);
    return;
  }
  request.outcome = RequestOutcome::kShed;
  request.complete_seconds = now_;
  ++counters_.gave_up;
  ScheduleClientNext(request.client);
}

void QueryService::ExpireQueuedRequest(uint64_t id) {
  RequestRecord& request = requests_[id];
  request.outcome = RequestOutcome::kExpired;
  request.complete_seconds = now_;
  ++counters_.expired_queued;
  ScheduleClientNext(request.client);
}

int QueryService::StarvedMirror() const {
  const int aging = admission_.limits().aging_grants;
  if (aging <= 0) return -1;
  for (int p = 0; p < qos::kNumPriorities; ++p) {
    if (!queue_[p].empty() && bypass_[p] >= aging) return p;
  }
  return -1;
}

bool QueryService::CanRunMirror(int priority) const {
  if (GrantsPaused()) return false;
  if (admission_.running() >= admission_.limits().max_concurrent) {
    return false;
  }
  const int starved = StarvedMirror();
  if (starved >= 0) return starved == priority;
  for (int q = 0; q <= priority; ++q) {
    if (!queue_[q].empty()) return false;
  }
  return true;
}

void QueryService::NoteGrantMirror(int priority) {
  bypass_[priority] = 0;
  for (int q = priority + 1; q < qos::kNumPriorities; ++q) {
    if (!queue_[q].empty()) ++bypass_[q];
  }
}

void QueryService::PurgeExpiredWaiters() {
  for (int p = 0; p < qos::kNumPriorities; ++p) {
    std::deque<uint64_t>& queue = queue_[p];
    for (size_t i = 0; i < queue.size();) {
      const RequestRecord& request = requests_[queue[i]];
      if (request.deadline_seconds >= 0.0 &&
          now_ >= request.deadline_seconds - kEps) {
        const uint64_t id = queue[i];
        queue.erase(queue.begin() + static_cast<ptrdiff_t>(i));
        ExpireQueuedRequest(id);
      } else {
        ++i;
      }
    }
  }
}

void QueryService::PumpGrants() {
  while (true) {
    if (GrantsPaused()) return;
    PurgeExpiredWaiters();
    const int starved = StarvedMirror();
    int pick = -1;
    if (starved >= 0) {
      pick = starved;
    } else {
      for (int p = 0; p < qos::kNumPriorities; ++p) {
        if (!queue_[p].empty()) {
          pick = p;
          break;
        }
      }
    }
    if (pick < 0) return;
    Result<qos::AdmissionTicket> ticket =
        admission_.TryAdmit(static_cast<qos::QueryPriority>(pick));
    if (!ticket.ok()) return;  // no slot free (or recovery pause raced)
    const uint64_t id = queue_[pick].front();
    queue_[pick].pop_front();
    if (starved >= 0) {
      // Count only reservations that actually overrode a higher waiter,
      // matching AdmissionCounters::aged_grants semantics.
      for (int q = 0; q < starved; ++q) {
        if (!queue_[q].empty()) {
          ++counters_.aged_grants;
          break;
        }
      }
    }
    NoteGrantMirror(pick);
    GrantRequest(id, std::move(ticket.value()));
  }
}

void QueryService::GrantRequest(uint64_t id, qos::AdmissionTicket ticket) {
  RequestRecord& request = requests_[id];
  request.grant_seconds = now_;
  ++counters_.granted;
  ++in_flight_;
  running_.emplace(id, std::move(ticket));

  const bool degraded_plan =
      policy_.tier() >= DegradationTier::kBrownOut &&
      request.priority != qos::QueryPriority::kHigh && degraded_ != nullptr;
  request.degraded_plan = degraded_plan;
  if (degraded_plan) ++counters_.degraded_grants;
  request.snapshot_epoch = table_ ? table_->committed_epoch() : 0;

  const CachedRun& run = CachedExecute(request, degraded_plan);
  if (!run.ok) {
    ++counters_.failed_executions;
    request.outcome = RequestOutcome::kFailed;
    request.planned_finish_seconds = now_;
    Schedule(now_, EventKind::kComplete, id);
    return;
  }
  const double service_seconds =
      std::max(run.seconds * config_.service_time_scale, 1e-6);
  request.planned_finish_seconds = now_ + service_seconds;
  double finish = request.planned_finish_seconds;
  if (request.deadline_seconds >= 0.0 && finish > request.deadline_seconds) {
    // The deadline cuts the run (cooperatively, between morsels on the
    // modeled timeline): the slot is held until the deadline fires.
    finish = request.deadline_seconds;
  }
  Schedule(finish, EventKind::kComplete, id);
}

void QueryService::OnCompleteEvent(uint64_t id) {
  RequestRecord& request = requests_[id];
  running_.erase(id);  // releases the admission ticket
  --in_flight_;
  request.complete_seconds = now_;
  if (request.outcome == RequestOutcome::kPending) {
    if (request.planned_finish_seconds > now_ + kEps) {
      request.outcome = RequestOutcome::kExpired;
      ++counters_.expired_running;
    } else {
      request.outcome = RequestOutcome::kCompleted;
      ++counters_.completed;
    }
  }
  ScheduleClientNext(request.client);
  PumpGrants();
}

void QueryService::ScheduleClientNext(uint64_t client) {
  if (config_.workload.arrival != ArrivalModel::kClosedLoop) return;
  const double next = now_ + workload_.NextThink(client);
  if (next <= horizon()) Schedule(next, EventKind::kSubmit, client);
}

double QueryService::HealthEstimate() const {
  if (crashed_window_) return 0.0;
  if (injector_) return qos::DegradationEstimate(*injector_);
  return 1.0;
}

void QueryService::OnTickEvent() {
  const double t = static_cast<double>(tick_index_) * config_.tick_seconds;
  now_ = std::max(now_, t);
  if (injector_) injector_->AdvanceTo(now_);
  const double estimate = HealthEstimate();
  policy_.Observe(now_, estimate);
  admission_.SetLoadSignal({in_flight_, estimate});
  PurgeExpiredWaiters();
  PumpGrants();

  ProfileTick tick;
  tick.tick = tick_index_;
  tick.seconds = now_;
  tick.tier = static_cast<int>(policy_.tier());
  tick.estimate = estimate;
  tick.in_flight = in_flight_;
  int waiting = 0;
  for (const auto& queue : queue_) waiting += static_cast<int>(queue.size());
  tick.waiting = waiting;
  tick.submitted = counters_.submitted;
  tick.admitted = counters_.granted;
  tick.shed = counters_.edge_shed + counters_.queue_shed;
  tick.expired = counters_.expired_queued + counters_.expired_running;
  tick.completed = counters_.completed;
  tick.retried = counters_.retried;
  tick.tick_completions = counters_.completed - completed_at_last_tick_;
  completed_at_last_tick_ = counters_.completed;
  tick.crashes = counters_.crashes;
  tick.recoveries = counters_.recoveries;
  tick.breaker_trips = breakers_ ? breakers_->counters().trips : 0;
  if (governor_) {
    const governor::GovernorDecision decision = governor_->decision();
    tick.governor_quantum = decision.quantum;
    tick.write_threads = decision.write_threads;
    tick.staged_bytes = decision.staged_bytes;
  }
  tick.committed_epoch = table_ ? table_->committed_epoch() : 0;
  profiler_.Record(tick);

  ++tick_index_;
  const double next =
      static_cast<double>(tick_index_) * config_.tick_seconds;
  if (next <= horizon() + kEps) Schedule(next, EventKind::kTick, 0);
}

void QueryService::OnChaosEvent(uint64_t index) {
  const ChaosEvent& event = chaos_.events()[index];
  if (injector_) injector_->AdvanceTo(now_);
  switch (event.kind) {
    case ChaosKind::kThrottleStart:
    case ChaosKind::kThrottleEnd:
      // The windows live in the FaultSpec; AdvanceTo applies them. The
      // events only mark SLO edges (already in fault_clear_edges_).
      break;
    case ChaosKind::kCrash:
      if (crash_ && !crashed_window_) {
        // Arm at the next persistence boundary: the next ingest burst's
        // first primitive trips it mid-epoch.
        crash_->Arm(static_cast<int64_t>(crash_->boundaries_seen()));
      }
      break;
    case ChaosKind::kIngestBurst:
      DoIngest(event.rows);
      break;
  }
}

void QueryService::DoIngest(uint64_t rows) {
  if (!table_ || !primary_) return;
  if (crashed_window_) {
    pending_burst_rows_ += rows;
    return;
  }
  rows = std::min(rows, db_->lineorder.size() - ingested_rows_);
  if (rows == 0) return;
  Result<uint64_t> epoch =
      primary_->Ingest(db_->lineorder.data() + ingested_rows_, rows);
  if (epoch.ok()) {
    ingested_rows_ += rows;
    epoch_rows_.push_back(ingested_rows_);
    ++counters_.ingest_epochs;
    counters_.ingest_rows += rows;
    if (epoch.value() != epoch_rows_.size() - 1) {
      ++counters_.epoch_regressions;
    }
    return;
  }
  if (epoch.status().code() == StatusCode::kUnavailable && crash_ &&
      crash_->crashed()) {
    OnCrash(rows);
    return;
  }
  run_error_ = epoch.status();
}

void QueryService::OnCrash(uint64_t lost_rows) {
  ++counters_.crashes;
  crashed_window_ = true;
  pending_burst_rows_ += lost_rows;
  const uint64_t committed_before = epoch_rows_.size() - 1;
  // Dead platform: tier 3 immediately (pause skips hysteresis), and the
  // real recovery gate parks new admissions while waiters hold.
  policy_.Observe(now_, 0.0);
  admission_.PauseForRecovery();
  // Recovery replays host-side now; its modeled cost holds the pause
  // window on the modeled timeline.
  Result<RecoveryStats> stats = primary_->Recover();
  if (!stats.ok()) {
    run_error_ = stats.status();
    return;
  }
  if (stats->committed_epoch != committed_before) {
    // Committed-epoch loss (or phantom commit): the scorecard's
    // zero-loss invariant is broken.
    ++counters_.epoch_regressions;
  }
  Schedule(now_ + std::max(stats->modeled_seconds, 1e-6),
           EventKind::kRecoveryDone, 0);
}

void QueryService::OnRecoveryDone() {
  crashed_window_ = false;
  ++counters_.recoveries;
  admission_.ResumeAfterRecovery();
  policy_.Observe(now_, HealthEstimate());
  fault_clear_edges_.push_back(now_);
  const uint64_t rows = pending_burst_rows_;
  pending_burst_rows_ = 0;
  if (rows > 0) DoIngest(rows);
  PumpGrants();
}

const QueryService::CachedRun& QueryService::CachedExecute(
    const RequestRecord& request, bool degraded_plan) {
  // The key is every input that can change the run's output or modeled
  // seconds: the plan, the query, the pinned epoch, and the actuator /
  // health state the engine executes under. Deadlines and priorities are
  // deliberately absent — with the modeled clock frozen during a host
  // execution they cannot alter the result (the grant pre-check already
  // guaranteed the deadline has not fired).
  char key[256];
  std::string actuators;
  if (governor_) {
    const governor::GovernorDecision decision = governor_->decision();
    actuators += "w" + std::to_string(decision.write_threads);
    for (int cap : decision.read_workers) {
      actuators += "r" + std::to_string(cap);
    }
    for (const std::string& name : decision.staged) actuators += "s" + name;
  }
  if (breakers_) {
    for (bool healthy : breakers_->HealthySockets()) {
      actuators += healthy ? "H" : "Q";
    }
  }
  if (injector_) {
    char f[32];
    for (int s = 0; s < std::max(1, config_.chaos.sockets); ++s) {
      std::snprintf(f, sizeof(f), "d%.3f", injector_->DimmServiceFactor(s));
      actuators += f;
    }
  }
  std::snprintf(key, sizeof(key), "e%d|q%d|ep%llu|%s", degraded_plan ? 1 : 0,
                static_cast<int>(request.query),
                static_cast<unsigned long long>(request.snapshot_epoch),
                actuators.c_str());
  auto it = run_cache_.find(key);
  if (it != run_cache_.end()) {
    ++counters_.cache_hits;
    return it->second;
  }

  ++counters_.real_executions;
  qos::QueryOptions options;
  options.priority = request.priority;
  options.retry_budget = config_.workload.fault_retry_budget;
  if (request.deadline_seconds >= 0.0) {
    // Armed through the real QoS plumbing; the frozen modeled clock means
    // it cannot fire mid-run (the service enforces mid-run expiry on the
    // event timeline instead), so the cached result is deadline-free.
    options.deadline = qos::Deadline::Modeled(request.deadline_seconds);
    options.modeled_clock = [this] { return now_; };
  }
  if (table_) options.snapshot_epoch = request.snapshot_epoch;

  SsbEngine* engine = degraded_plan ? degraded_.get() : primary_.get();
  Result<SsbEngine::QueryRun> run = engine->Execute(request.query, options);
  CachedRun cached;
  if (run.ok()) {
    cached.ok = true;
    cached.output = run->output;
    cached.seconds = run->seconds;
    if (!(run->output ==
          ReferenceFor(request.query, request.snapshot_epoch))) {
      ++counters_.incorrect_results;
    }
  } else {
    cached.ok = false;
    cached.code = run.status().code();
  }
  return run_cache_.emplace(key, std::move(cached)).first->second;
}

const ssb::QueryOutput& QueryService::ReferenceFor(ssb::QueryId query,
                                                   uint64_t epoch) {
  const uint64_t key_epoch = table_ ? epoch : 0;
  const auto key = std::make_pair(key_epoch, static_cast<int>(query));
  auto it = reference_cache_.find(key);
  if (it != reference_cache_.end()) return it->second;
  if (!table_) {
    return reference_cache_.emplace(key, reference_.Execute(query))
        .first->second;
  }
  // Durable: the truth at epoch e is the reference over the committed
  // row prefix — the same prefix order Ingest follows.
  auto db_it = prefix_dbs_.find(key_epoch);
  if (db_it == prefix_dbs_.end()) {
    auto prefix = std::make_unique<ssb::Database>(*db_);
    prefix->lineorder.resize(epoch_rows_[key_epoch]);
    db_it = prefix_dbs_.emplace(key_epoch, std::move(prefix)).first;
  }
  ssb::ReferenceExecutor prefix_reference(db_it->second.get());
  return reference_cache_.emplace(key, prefix_reference.Execute(query))
      .first->second;
}

}  // namespace pmemolap::service
