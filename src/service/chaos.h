// ChaosSchedule — seeded mid-traffic fault campaigns for the service.
//
// A schedule composes the existing failure machinery into a deterministic
// timeline of chaos the QueryService replays against live client traffic:
//
//   - rolling per-socket DIMM throttle storms (FaultSpec throttle
//     windows, evaluated by the FaultInjector as modeled time advances),
//   - standing media poison + UPI degradation, which under traffic drives
//     the breaker trip -> quarantine -> half-open recovery cycle,
//   - crash points (CrashInjector boundaries armed mid-traffic, fired by
//     the next ingest) followed by Recover() while clients wait,
//   - ingest bursts, the write-knee pressure the governor's write clamps
//     exist for.
//
// Everything throttle/poison-shaped must exist in the FaultSpec *before*
// the injector is constructed (specs are immutable), so the schedule is
// generated first and handed to the campaign as ToFaultSpec(); the
// dynamic events (crashes, bursts) are consumed by the service's event
// loop. Same seed => byte-identical schedule (Describe() is the witness
// string the determinism scorecard compares).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/fault_spec.h"

namespace pmemolap::service {

enum class ChaosKind {
  /// A throttle window opens (informational: the window itself lives in
  /// the FaultSpec; the event marks its start for recovery-SLO tracking).
  kThrottleStart,
  /// A throttle window closes — a fault-clear edge the SLO scorecard
  /// measures p99 recovery from.
  kThrottleEnd,
  /// Arm the crash injector: the next ingest dies mid-epoch, admission
  /// parks, Recover() replays the redo log while clients wait.
  kCrash,
  /// Append `rows` fact rows as one ingest epoch (write-knee pressure
  /// and the vehicle that fires armed crashes).
  kIngestBurst,
};

const char* ChaosKindName(ChaosKind kind);

struct ChaosEvent {
  double at_seconds = 0.0;
  ChaosKind kind = ChaosKind::kIngestBurst;
  int socket = 0;            ///< throttle events: the stormed socket
  double service_factor = 1.0;  ///< throttle events: DIMM service factor
  uint64_t rows = 0;         ///< ingest bursts: rows appended
};

struct ChaosConfig {
  uint64_t seed = 0xC4405;
  /// Modeled horizon the schedule covers; all events land inside it.
  double horizon_seconds = 60.0;
  /// Rolling per-socket throttle storms (0 = none).
  int throttle_storms = 0;
  double storm_min_seconds = 4.0;
  double storm_max_seconds = 10.0;
  /// Storm severity band (DIMM service factor drawn uniformly inside).
  double storm_factor_lo = 0.2;
  double storm_factor_hi = 0.6;
  int sockets = 2;
  /// Crash + Recover() cycles fired mid-traffic (0 = none). Each crash is
  /// scheduled strictly before an ingest burst so the armed boundary
  /// actually fires.
  int crashes = 0;
  /// Ingest bursts across the horizon (0 = none; must be > crashes).
  int ingest_bursts = 0;
  uint64_t burst_rows = 10'000;
  /// Standing media faults for breaker pressure (0 = clean media).
  double poison_lines_per_mib = 0.0;
  double transient_fraction = 0.5;
  double upi_capacity_factor = 1.0;
};

class ChaosSchedule {
 public:
  /// Deterministically realizes `config` into a sorted event timeline.
  static ChaosSchedule Generate(const ChaosConfig& config);

  const ChaosConfig& config() const { return config_; }
  /// Events sorted by (at_seconds, insertion order); stable per seed.
  const std::vector<ChaosEvent>& events() const { return events_; }

  /// The static half of the campaign: throttle windows + standing poison
  /// + UPI degradation as an injector-ready spec (seeded from the chaos
  /// seed, so poison placement replays too).
  FaultSpec ToFaultSpec() const;

  /// Modeled times at which a fault clears (throttle ends; crash
  /// recovery completions are appended by the service at runtime) — the
  /// edges the p99-recovery SLO is measured from.
  std::vector<double> FaultClearEdges() const;

  /// Canonical one-line-per-event rendering; byte-identical across runs
  /// with the same seed (the determinism scorecard compares it).
  std::string Describe() const;

 private:
  ChaosConfig config_;
  std::vector<ChaosEvent> events_;
};

}  // namespace pmemolap::service
