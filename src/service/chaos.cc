#include "service/chaos.h"

#include <algorithm>
#include <cstdio>

namespace pmemolap::service {

const char* ChaosKindName(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kThrottleStart:
      return "throttle-start";
    case ChaosKind::kThrottleEnd:
      return "throttle-end";
    case ChaosKind::kCrash:
      return "crash";
    case ChaosKind::kIngestBurst:
      return "ingest-burst";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::Generate(const ChaosConfig& config) {
  ChaosSchedule schedule;
  schedule.config_ = config;
  Rng rng(config.seed);
  Rng storm_rng = rng.Fork(1);
  Rng burst_rng = rng.Fork(2);
  Rng crash_rng = rng.Fork(3);

  std::vector<ChaosEvent>& events = schedule.events_;

  // Throttle storms: each picks a socket, a start inside the horizon, a
  // duration inside [min, max], and a severity inside the factor band.
  // Storms may overlap (the injector composes overlapping windows by
  // taking the worst factor), which is exactly the "storm" shape we want.
  for (int s = 0; s < config.throttle_storms; ++s) {
    const double duration =
        config.storm_min_seconds +
        storm_rng.NextDouble() *
            (config.storm_max_seconds - config.storm_min_seconds);
    const double latest_start =
        std::max(0.0, config.horizon_seconds - duration);
    const double start = storm_rng.NextDouble() * latest_start;
    const double factor =
        config.storm_factor_lo +
        storm_rng.NextDouble() *
            (config.storm_factor_hi - config.storm_factor_lo);
    const int socket = static_cast<int>(
        storm_rng.NextBelow(static_cast<uint64_t>(std::max(1, config.sockets))));
    ChaosEvent open;
    open.at_seconds = start;
    open.kind = ChaosKind::kThrottleStart;
    open.socket = socket;
    open.service_factor = factor;
    events.push_back(open);
    ChaosEvent close = open;
    close.at_seconds = start + duration;
    close.kind = ChaosKind::kThrottleEnd;
    events.push_back(close);
  }

  // Ingest bursts: spread across the horizon with seeded placement. The
  // first `crashes` bursts each get a crash armed strictly before them,
  // so the armed boundary is guaranteed a firing ingest.
  const int bursts = std::max(config.ingest_bursts,
                              config.crashes > 0 ? config.crashes : 0);
  std::vector<double> burst_times;
  burst_times.reserve(static_cast<size_t>(bursts));
  for (int b = 0; b < bursts; ++b) {
    // Stratified: burst b lands in slot b of `bursts` equal slots, so
    // bursts never collapse onto one instant regardless of seed.
    const double slot = config.horizon_seconds / std::max(1, bursts);
    burst_times.push_back(slot * b + burst_rng.NextDouble() * slot);
  }
  std::sort(burst_times.begin(), burst_times.end());
  for (int b = 0; b < bursts; ++b) {
    if (b < config.crashes) {
      ChaosEvent crash;
      // Arm shortly before the burst that fires it; clamp at 0.
      crash.at_seconds = std::max(
          0.0, burst_times[static_cast<size_t>(b)] -
                   (0.1 + crash_rng.NextDouble() * 0.4));
      crash.kind = ChaosKind::kCrash;
      events.push_back(crash);
    }
    ChaosEvent burst;
    burst.at_seconds = burst_times[static_cast<size_t>(b)];
    burst.kind = ChaosKind::kIngestBurst;
    burst.rows = config.burst_rows;
    events.push_back(burst);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_seconds < b.at_seconds;
                   });
  return schedule;
}

FaultSpec ChaosSchedule::ToFaultSpec() const {
  FaultSpec spec;
  spec.seed = config_.seed ^ 0xF001;
  spec.poison_lines_per_mib = config_.poison_lines_per_mib;
  spec.transient_fraction = config_.transient_fraction;
  spec.upi_capacity_factor = config_.upi_capacity_factor;
  for (const ChaosEvent& event : events_) {
    if (event.kind != ChaosKind::kThrottleStart) continue;
    // Recover the matching end by scanning forward: starts and ends were
    // pushed as pairs with identical socket/factor.
    for (const ChaosEvent& end : events_) {
      if (end.kind == ChaosKind::kThrottleEnd && end.socket == event.socket &&
          end.service_factor == event.service_factor &&
          end.at_seconds > event.at_seconds) {
        ThrottleWindow window;
        window.socket = event.socket;
        window.start_seconds = event.at_seconds;
        window.end_seconds = end.at_seconds;
        window.service_factor = event.service_factor;
        spec.throttle_windows.push_back(window);
        break;
      }
    }
  }
  return spec;
}

std::vector<double> ChaosSchedule::FaultClearEdges() const {
  std::vector<double> edges;
  for (const ChaosEvent& event : events_) {
    if (event.kind == ChaosKind::kThrottleEnd) {
      edges.push_back(event.at_seconds);
    }
  }
  return edges;
}

std::string ChaosSchedule::Describe() const {
  std::string out;
  char line[160];
  for (const ChaosEvent& event : events_) {
    std::snprintf(line, sizeof(line),
                  "t=%.6f %s socket=%d factor=%.6f rows=%llu\n",
                  event.at_seconds, ChaosKindName(event.kind), event.socket,
                  event.service_factor,
                  static_cast<unsigned long long>(event.rows));
    out += line;
  }
  return out;
}

}  // namespace pmemolap::service
