#include "service/degradation.h"

#include <cstdio>

namespace pmemolap::service {

const char* DegradationTierName(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kNormal:
      return "normal";
    case DegradationTier::kShedLowPriority:
      return "shed-low-priority";
    case DegradationTier::kBrownOut:
      return "brown-out";
    case DegradationTier::kPauseAndDrain:
      return "pause-and-drain";
  }
  return "unknown";
}

DegradationPolicy::DegradationPolicy(DegradationPolicyConfig config)
    : config_(config) {}

DegradationTier DegradationPolicy::TargetTier(double estimate) const {
  if (estimate < config_.pause_below) return DegradationTier::kPauseAndDrain;
  if (estimate < config_.brownout_below) return DegradationTier::kBrownOut;
  if (estimate < config_.shed_below) return DegradationTier::kShedLowPriority;
  return DegradationTier::kNormal;
}

DegradationTier DegradationPolicy::Observe(double now_seconds,
                                           double estimate) {
  const DegradationTier target = TargetTier(estimate);
  if (target == tier_) {
    pending_ = tier_;
    streak_ = 0;
    return tier_;
  }
  if (target == pending_) {
    ++streak_;
  } else {
    pending_ = target;
    streak_ = 1;
  }
  // Pause is the exception to hysteresis: a dead platform (crash window,
  // estimate ~0) must stop grants *now*, not two ticks from now.
  const bool immediate = target == DegradationTier::kPauseAndDrain;
  if (immediate || streak_ >= config_.hysteresis_ticks) {
    char line[128];
    std::snprintf(line, sizeof(line), "t=%.6f %s -> %s estimate=%.6f",
                  now_seconds, DegradationTierName(tier_),
                  DegradationTierName(target), estimate);
    transitions_.emplace_back(line);
    tier_ = target;
    pending_ = target;
    streak_ = 0;
  }
  return tier_;
}

}  // namespace pmemolap::service
