// Workload — deterministic multi-tenant traffic generation for the
// QueryService.
//
// N simulated client streams submit SSB queries against the service on
// the *modeled* timeline: a closed-loop model (each client thinks, then
// submits, then waits for its answer) or an open-loop model (arrivals
// form a seeded Poisson-like process, independent of completions — the
// shape that exposes queueing collapse, since arrivals never slow down
// when the server does). Query identity is Zipf-skewed over the 13 SSB
// kernels, and every client carries a deterministic QoS profile —
// priority class, modeled deadline, shed-retry budget — derived from a
// per-client Rng fork, so the same seed always builds the same tenant
// population. No host time, no host entropy: this layer feeds modeled
// numbers and must replay bit-identically (lint: service is a
// deterministic layer).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/zipf.h"
#include "qos/query_options.h"
#include "ssb/queries.h"

namespace pmemolap::service {

enum class ArrivalModel {
  /// Each client loops: think (exponential), submit, wait for the result.
  /// Load self-throttles when the service slows down.
  kClosedLoop,
  /// Arrivals are a global seeded exponential-interarrival process at
  /// `arrival_rate_qps`, assigned round-robin to clients. Load does NOT
  /// slow down with the service — the overload-honest model.
  kOpenLoop,
};

const char* ArrivalModelName(ArrivalModel model);

struct WorkloadConfig {
  uint64_t num_clients = 1000;
  ArrivalModel arrival = ArrivalModel::kClosedLoop;
  /// Closed loop: mean think time between a client's completion and its
  /// next submission, modeled seconds (exponentially distributed).
  double mean_think_seconds = 4.0;
  /// Open loop: aggregate arrival rate, queries per modeled second.
  double arrival_rate_qps = 50.0;
  /// Zipf exponent of the query mix over the 13 SSB kernels (0 =
  /// uniform). Rank order is itself a seeded shuffle, so which query is
  /// "hot" varies by seed, not by enum position.
  double query_zipf_s = 1.0;
  /// Priority mix: P(high), P(batch); the rest are normal.
  double high_fraction = 0.2;
  double batch_fraction = 0.2;
  /// Modeled deadline per priority class, seconds from submission
  /// (<= 0 = no deadline for that class).
  double high_deadline_seconds = 2.0;
  double normal_deadline_seconds = 8.0;
  double batch_deadline_seconds = 0.0;
  /// Resubmissions a client may spend after a shed (admission refusal),
  /// and the mean modeled backoff before each (exponential).
  int shed_retry_budget = 2;
  double retry_backoff_seconds = 0.25;
  /// Fault-layer retry budget forwarded into QueryOptions::retry_budget
  /// (negative = unlimited).
  int64_t fault_retry_budget = -1;
  /// Seed of the whole tenant population and both arrival processes.
  uint64_t seed = 0x5EED;
};

/// Fixed QoS identity of one client stream.
struct ClientProfile {
  qos::QueryPriority priority = qos::QueryPriority::kNormal;
  /// Modeled seconds this client allows per query (<= 0: none).
  double deadline_seconds = 0.0;
  int shed_retry_budget = 0;
};

/// Deterministic traffic source. All sampling draws from forks of the
/// config seed; two Workload instances with equal configs emit identical
/// streams regardless of call interleaving *per stream* (each client and
/// the arrival process own private Rng states).
class Workload {
 public:
  explicit Workload(const WorkloadConfig& config);

  const WorkloadConfig& config() const { return config_; }

  /// The fixed QoS profile of `client` (derived, not stored: O(1) memory
  /// in the client count).
  ClientProfile ProfileOf(uint64_t client) const;

  /// Next query for `client`'s stream (Zipf over the shuffled kernels).
  ssb::QueryId NextQuery(uint64_t client);

  /// Closed loop: modeled think time before `client`'s next submission.
  double NextThink(uint64_t client);

  /// Modeled backoff before `client` resubmits a shed query
  /// (exponential around retry_backoff_seconds).
  double NextBackoff(uint64_t client);

  /// Open loop: modeled gap to the next global arrival, and the client
  /// that owns it (round-robin).
  double NextInterarrival();
  uint64_t NextArrivalClient();

 private:
  /// Exponential draw with `mean` from `rng` (inverse CDF; the draw is
  /// clamped away from u == 1 so the result is finite).
  static double SampleExponential(Rng& rng, double mean);

  WorkloadConfig config_;
  ZipfSampler query_zipf_;
  /// Seeded shuffle of the 13 kernels: Zipf rank r maps to query_rank_[r].
  std::vector<ssb::QueryId> query_rank_;
  /// One private 8-byte Rng per client: streams are independent of each
  /// other and of the grant/completion interleaving the service imposes.
  std::vector<Rng> client_rng_;
  Rng arrival_rng_;
  uint64_t next_client_ = 0;
};

}  // namespace pmemolap::service
