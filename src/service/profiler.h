// ContinuousProfiler — per-modeled-second counter export for the
// QueryService, after ScaleStore's always-on ProfilingThread.
//
// ScaleStore runs a dedicated thread that wakes every second and dumps
// worker/buffer-manager counters to CSV so a live system is observable
// for free. Our service is a deterministic discrete-event simulation, so
// the analog is event-driven: the service schedules a tick event every
// modeled second, snapshots the engine/admission/governor/degradation
// counters into a ProfileTick, and the profiler renders the sequence as
// stable CSV. No thread, no wall clock — two runs with the same seed
// emit byte-identical CSV, which the bench's determinism check hashes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmemolap::service {

/// One modeled-second snapshot of the running service.
struct ProfileTick {
  int tick = 0;
  double seconds = 0.0;
  /// Committed degradation tier (0..3) and the raw health estimate.
  int tier = 0;
  double estimate = 1.0;
  /// Service-side load: grants currently executing, waiters queued.
  int in_flight = 0;
  int waiting = 0;
  /// Cumulative admission outcomes (service edge + gate).
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t expired = 0;
  uint64_t completed = 0;
  uint64_t retried = 0;
  /// Completions inside this tick (the per-second throughput signal).
  uint64_t tick_completions = 0;
  /// Fault-campaign state.
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t breaker_trips = 0;
  /// Governor actuators in force.
  int governor_quantum = 0;
  int write_threads = 0;
  uint64_t staged_bytes = 0;
  /// Durable-table watermark (0 when the campaign has no durable table).
  uint64_t committed_epoch = 0;
};

class ContinuousProfiler {
 public:
  void Record(const ProfileTick& tick) { ticks_.push_back(tick); }

  const std::vector<ProfileTick>& ticks() const { return ticks_; }

  static std::string CsvHeader();
  /// Header + one line per tick; printf-fixed formatting so equal tick
  /// sequences render byte-identically across platforms.
  std::string ToCsv() const;

 private:
  std::vector<ProfileTick> ticks_;
};

}  // namespace pmemolap::service
