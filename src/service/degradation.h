// Three-tier graceful degradation for the QueryService.
//
// The service never fails loudly while it can fail *small*: as the
// platform-health estimate (qos::DegradationEstimate — the same signal
// admission control and the bandwidth governor shed against) decays, the
// service steps down a ladder instead of letting every tenant time out:
//
//   tier 0  kNormal          full service
//   tier 1  kShedLowPriority batch submissions refused at the service
//                            edge (before admission even sees them)
//   tier 2  kBrownOut        + non-high queries routed to the degraded
//                            plan (fewer workers — same bit-identical
//                            answers, longer latency, less pressure on a
//                            throttled platform)
//   tier 3  kPauseAndDrain   + no new grants at all; in-flight work
//                            drains, waiters hold (crash recovery and
//                            dead-platform windows land here)
//
// Transitions apply hysteresis in profiler ticks — a tier change must be
// requested for `hysteresis_ticks` consecutive observations before it
// commits — so a noisy estimate cannot flap the service between tiers.
// Same estimate trace in, byte-identical transition log out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmemolap::service {

enum class DegradationTier {
  kNormal = 0,
  kShedLowPriority = 1,
  kBrownOut = 2,
  kPauseAndDrain = 3,
};

const char* DegradationTierName(DegradationTier tier);

struct DegradationPolicyConfig {
  /// Health estimate below which batch traffic is shed at the edge.
  double shed_below = 0.75;
  /// Below this, non-high traffic runs the degraded (brown-out) plan.
  double brownout_below = 0.40;
  /// Below this, the service pauses grants and drains (a crash window
  /// reports estimate 0.0 and always lands here).
  double pause_below = 0.05;
  /// Consecutive ticks a tier change must persist before it commits.
  int hysteresis_ticks = 2;
};

/// Deterministic tier ladder with hysteresis. One Observe() per profiler
/// tick; the committed tier is what the service enforces until the next
/// tick.
class DegradationPolicy {
 public:
  explicit DegradationPolicy(
      DegradationPolicyConfig config = DegradationPolicyConfig());

  const DegradationPolicyConfig& config() const { return config_; }

  /// Ingests one health estimate at modeled time `now_seconds`; returns
  /// the committed tier after hysteresis.
  DegradationTier Observe(double now_seconds, double estimate);

  DegradationTier tier() const { return tier_; }

  /// Tier the raw estimate maps to, before hysteresis.
  DegradationTier TargetTier(double estimate) const;

  /// Append-only "t=<sec> <from> -> <to> estimate=<e>" lines; part of the
  /// determinism digest.
  const std::vector<std::string>& transitions() const { return transitions_; }

 private:
  DegradationPolicyConfig config_;
  DegradationTier tier_ = DegradationTier::kNormal;
  DegradationTier pending_ = DegradationTier::kNormal;
  int streak_ = 0;
  std::vector<std::string> transitions_;
};

}  // namespace pmemolap::service
