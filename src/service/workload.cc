#include "service/workload.h"

#include <algorithm>
#include <cmath>

namespace pmemolap::service {

const char* ArrivalModelName(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kClosedLoop:
      return "closed-loop";
    case ArrivalModel::kOpenLoop:
      return "open-loop";
  }
  return "unknown";
}

namespace {

/// Stable per-client stream seed: decorrelates neighboring client ids
/// (splitmix-style mixing) while staying a pure function of (seed, id).
uint64_t ClientSeed(uint64_t seed, uint64_t client, uint64_t salt) {
  uint64_t z = seed ^ (client * 0xD2B74407B1CE6E93ULL) ^
               (salt * 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return z ^ (z >> 27);
}

}  // namespace

Workload::Workload(const WorkloadConfig& config)
    : config_(config),
      query_zipf_(static_cast<uint64_t>(ssb::kNumQueries),
                  config.query_zipf_s),
      arrival_rng_(ClientSeed(config.seed, 0, /*salt=*/0xA881)) {
  // Seeded Fisher-Yates over the kernels: the Zipf head lands on a
  // seed-chosen query, not always Q1.1.
  query_rank_ = ssb::AllQueries();
  Rng shuffle(ClientSeed(config_.seed, 0, /*salt=*/0x5883));
  for (size_t i = query_rank_.size(); i > 1; --i) {
    std::swap(query_rank_[i - 1],
              query_rank_[shuffle.NextBelow(static_cast<uint64_t>(i))]);
  }
  client_rng_.reserve(config_.num_clients);
  for (uint64_t c = 0; c < config_.num_clients; ++c) {
    client_rng_.emplace_back(ClientSeed(config_.seed, c, /*salt=*/0xC11E));
  }
}

ClientProfile Workload::ProfileOf(uint64_t client) const {
  // Derived from a dedicated fork so the profile never consumes the
  // client's traffic stream (submitting more queries cannot change who a
  // client *is*).
  Rng rng(ClientSeed(config_.seed, client, /*salt=*/0xBEEF));
  ClientProfile profile;
  const double u = rng.NextDouble();
  if (u < config_.high_fraction) {
    profile.priority = qos::QueryPriority::kHigh;
    profile.deadline_seconds = config_.high_deadline_seconds;
  } else if (u < config_.high_fraction + config_.batch_fraction) {
    profile.priority = qos::QueryPriority::kBatch;
    profile.deadline_seconds = config_.batch_deadline_seconds;
  } else {
    profile.priority = qos::QueryPriority::kNormal;
    profile.deadline_seconds = config_.normal_deadline_seconds;
  }
  profile.shed_retry_budget = config_.shed_retry_budget;
  return profile;
}

ssb::QueryId Workload::NextQuery(uint64_t client) {
  Rng& rng = client_rng_[client];
  return query_rank_[query_zipf_.Sample(rng)];
}

double Workload::NextThink(uint64_t client) {
  return SampleExponential(client_rng_[client], config_.mean_think_seconds);
}

double Workload::NextBackoff(uint64_t client) {
  return SampleExponential(client_rng_[client], config_.retry_backoff_seconds);
}

double Workload::NextInterarrival() {
  const double rate = std::max(config_.arrival_rate_qps, 1e-9);
  return SampleExponential(arrival_rng_, 1.0 / rate);
}

uint64_t Workload::NextArrivalClient() {
  const uint64_t client = next_client_;
  next_client_ = (next_client_ + 1) % std::max<uint64_t>(1, config_.num_clients);
  return client;
}

double Workload::SampleExponential(Rng& rng, double mean) {
  if (mean <= 0.0) return 0.0;
  const double u = std::min(rng.NextDouble(), 1.0 - 1e-12);
  return -mean * std::log1p(-u);
}

}  // namespace pmemolap::service
