// QueryService — an always-on multi-tenant query service over SsbEngine,
// run as a deterministic discrete-event simulation on modeled time.
//
// The service owns the whole serving stack: a Workload of N simulated
// client streams (closed- or open-loop arrivals, Zipf query mixes,
// per-client priorities/deadlines/retry budgets), the real
// qos::AdmissionController in front of a bounded slot pool, the
// BandwidthGovernor, the fault/durability machinery a ChaosSchedule
// composes into mid-traffic campaigns, a three-tier graceful-degradation
// policy driven by the platform-health estimate, and a ScaleStore-style
// ContinuousProfiler emitting per-modeled-second counters as CSV.
//
// Execution model. Client traffic is bookkeeping on an event queue keyed
// by (modeled time, sequence): submissions queue through mirrored
// admission policy (the controller's aging/reservation rules replayed on
// service-owned wait queues, with real TryAdmit tickets bounding
// concurrency and carrying the recovery-pause gate), grants schedule a
// completion at grant + modeled query seconds, deadlines cut runs short
// on the modeled timeline. Actual host Execute calls are memoized per
// (engine, query, snapshot epoch, actuator state): a 100k-client
// campaign performs dozens of real executions, not 100k — every cached
// result is validated bit-identical against ssb::ReferenceExecutor (for
// durable campaigns, against a reference over the committed row prefix
// of the pinned epoch) the one time it is produced, so "zero incorrect
// results" is checked at full client scale for the cost of the distinct
// execution shapes.
//
// Degradation ladder (see degradation.h): tier 1 sheds batch at the
// edge; tier 2 routes non-high grants to a degraded plan (a second
// prepared engine with fewer modeled workers — same bit-identical
// answers, cheaper on a throttled platform); tier 3 stops granting and
// drains (crash-recovery windows force it immediately). Crashes fire at
// real persistence boundaries (CrashInjector armed mid-traffic, tripped
// by the next ingest burst); Recover() replays the redo log and the
// admission gate stays paused for the recovery's modeled seconds while
// waiters hold.
//
// Everything is seeded and priced in modeled seconds — no wall clock, no
// host entropy, no threads of its own (lint: service is a deterministic
// layer; the profiler is event-driven ticks, the deterministic analog of
// ScaleStore's profiling thread). Two runs with the same config produce
// byte-identical reports; ServiceReport::Digest() is the witness.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/pmem_space.h"
#include "durability/crash_injector.h"
#include "durability/durable_table.h"
#include "engine/engine.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_domain.h"
#include "fault/fault_injector.h"
#include "governor/governor.h"
#include "memsys/mem_system.h"
#include "qos/admission.h"
#include "service/chaos.h"
#include "service/degradation.h"
#include "service/profiler.h"
#include "service/workload.h"
#include "ssb/dbgen.h"
#include "ssb/reference.h"

namespace pmemolap::service {

struct ServiceConfig {
  WorkloadConfig workload;
  /// Chaos campaign; chaos.horizon_seconds is the campaign horizon even
  /// when no chaos is injected. Poisoned-media (guarded fault mode) and
  /// durable-ingest (crashes / ingest bursts) campaigns are mutually
  /// exclusive, mirroring EngineConfig::fault vs ::durable.
  ChaosConfig chaos;
  DegradationPolicyConfig degradation;
  qos::AdmissionLimits admission;
  /// Profiler tick period, modeled seconds.
  double tick_seconds = 1.0;
  /// Primary / degraded (brown-out) plan worker counts. The degraded
  /// plan prices with fewer modeled workers: slower, same answers.
  int threads = 8;
  int degraded_threads = 2;
  ExecutorKind executor = ExecutorKind::kMorselStealing;
  bool columnar = true;
  bool vectorized = true;
  /// Price queries at the paper's scale so modeled latencies are in the
  /// same regime as the deadlines/SLOs (0 = the loaded sf).
  double project_to_sf = 50.0;
  /// Extra multiplier from a query's modeled seconds to service
  /// occupancy on the timeline (load shaping without re-pricing).
  double service_time_scale = 1.0;
  bool governor = true;
  /// Durable campaigns: fraction of the fact table ingested (in
  /// initial_ingest_epochs epochs) before traffic starts; chaos ingest
  /// bursts append from the remainder in prefix order.
  double initial_ingest_fraction = 0.6;
  int initial_ingest_epochs = 4;
};

enum class RequestOutcome : uint8_t {
  kPending = 0,   ///< still queued/running when the horizon closed
  kCompleted,     ///< result delivered (validated bit-identical)
  kShed,          ///< refused and out of shed-retry budget
  kExpired,       ///< deadline fired (queued or mid-run)
  kFailed,        ///< execution error (never expected; scorecard checks 0)
};

/// One logical client request, state machine and log record in one.
struct RequestRecord {
  uint64_t client = 0;
  ssb::QueryId query{};
  qos::QueryPriority priority = qos::QueryPriority::kNormal;
  double submit_seconds = 0.0;       ///< first submission
  double grant_seconds = -1.0;
  double complete_seconds = -1.0;
  double deadline_seconds = -1.0;    ///< absolute modeled; < 0 = none
  /// Uncut completion time; > complete_seconds means the deadline cut
  /// the run short.
  double planned_finish_seconds = -1.0;
  int sheds_left = 0;
  RequestOutcome outcome = RequestOutcome::kPending;
  bool degraded_plan = false;
  uint64_t snapshot_epoch = 0;

  double Latency() const { return complete_seconds - submit_seconds; }
};

struct ServiceCounters {
  uint64_t submitted = 0;       ///< submission attempts (incl. retries)
  uint64_t retried = 0;         ///< shed resubmissions
  uint64_t edge_shed = 0;       ///< refused by the degradation tier
  uint64_t queue_shed = 0;      ///< refused: class queue full
  uint64_t gave_up = 0;         ///< requests out of shed-retry budget
  uint64_t granted = 0;
  uint64_t degraded_grants = 0;  ///< served by the brown-out plan
  uint64_t expired_queued = 0;   ///< deadline fired before any grant
  uint64_t expired_running = 0;  ///< deadline cut a running query
  uint64_t completed = 0;
  uint64_t incorrect_results = 0;  ///< reference mismatches (must be 0)
  uint64_t failed_executions = 0;  ///< engine errors (must be 0)
  uint64_t aged_grants = 0;     ///< grants via the aging reservation
  uint64_t real_executions = 0;  ///< host Execute calls (cache misses)
  uint64_t cache_hits = 0;
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t epoch_regressions = 0;  ///< committed-epoch loss (must be 0)
  uint64_t ingest_epochs = 0;
  uint64_t ingest_rows = 0;
  uint64_t breaker_trips = 0;
};

struct LatencySummary {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Everything a campaign produced; deterministic per config.
struct ServiceReport {
  ServiceCounters counters;
  qos::AdmissionCounters admission;
  LatencySummary latency;  ///< completed requests, client-perceived
  LatencySummary latency_by_priority[qos::kNumPriorities];
  std::string chaos_log;                     ///< ChaosSchedule::Describe
  std::vector<std::string> degradation_log;  ///< tier transitions
  std::string profile_csv;                   ///< ContinuousProfiler CSV
  /// Fault-clear edges: scheduled throttle ends + runtime recovery
  /// completions, ascending.
  std::vector<double> fault_clear_edges;
  std::vector<RequestRecord> requests;

  /// Per fault-clear edge: modeled seconds until the first post-edge
  /// completion back under `slo_seconds` latency (infinity = never).
  std::vector<double> RecoveryReentrySeconds(double slo_seconds) const;

  /// FNV-1a over the canonical rendering of counters, latency summaries,
  /// chaos log, tier transitions and profiler CSV — equal digests mean
  /// byte-identical campaign behavior.
  uint64_t Digest() const;
};

class QueryService {
 public:
  /// `db` and `model` must outlive the service.
  QueryService(const ssb::Database* db, const MemSystemModel* model,
               ServiceConfig config);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Builds the campaign stack: fault/durable plumbing per the chaos
  /// config, both engine plans, the initial durable ingest.
  Status Prepare();

  /// Runs the campaign to the horizon and returns the report.
  Result<ServiceReport> Run();

  const ServiceConfig& config() const { return config_; }
  const ChaosSchedule& chaos() const { return chaos_; }

 private:
  enum class EventKind : uint8_t {
    kSubmit,        ///< arg = client: draw and submit its next query
    kArrival,       ///< open loop: next global arrival
    kRetry,         ///< arg = request: resubmit after shed backoff
    kComplete,      ///< arg = request: running query reached its end
    kTick,          ///< profiler/degradation tick
    kChaos,         ///< arg = index into chaos_.events()
    kRecoveryDone,  ///< crash recovery's modeled window elapsed
  };

  struct Event {
    double at = 0.0;
    uint64_t seq = 0;  ///< tie-break: FIFO among equal timestamps
    EventKind kind = EventKind::kTick;
    uint64_t arg = 0;
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Memoized outcome of one distinct host execution shape.
  struct CachedRun {
    ssb::QueryOutput output;
    double seconds = 0.0;
    bool ok = false;
    StatusCode code = StatusCode::kOk;
  };

  void Schedule(double at, EventKind kind, uint64_t arg);
  double horizon() const { return config_.chaos.horizon_seconds; }
  bool GrantsPaused() const;

  void OnSubmitEvent(uint64_t client);
  void OnArrivalEvent();
  void SubmitRequest(uint64_t id);
  void ShedRequest(uint64_t id, bool edge);
  void ExpireQueuedRequest(uint64_t id);
  void GrantRequest(uint64_t id, qos::AdmissionTicket ticket);
  void OnCompleteEvent(uint64_t id);
  void OnTickEvent();
  void OnChaosEvent(uint64_t index);
  void OnRecoveryDone();
  void DoIngest(uint64_t rows);
  void OnCrash(uint64_t lost_rows);
  /// Closed loop: schedules `client`'s next submission after think time.
  void ScheduleClientNext(uint64_t client);

  /// Grants waiters while slots, tiers and policy allow, replaying the
  /// controller's priority/aging rules on the service-owned queues.
  void PumpGrants();
  int StarvedMirror() const;
  bool CanRunMirror(int priority) const;
  void NoteGrantMirror(int priority);
  /// Drops deadline-expired waiters from every queue.
  void PurgeExpiredWaiters();

  double HealthEstimate() const;
  const CachedRun& CachedExecute(const RequestRecord& request,
                                 bool degraded_plan);
  /// Reference output for `query` at committed `epoch` (full db when the
  /// campaign is not durable), lazily computed and cached.
  const ssb::QueryOutput& ReferenceFor(ssb::QueryId query, uint64_t epoch);

  const ssb::Database* db_;
  const MemSystemModel* model_;
  ServiceConfig config_;
  Workload workload_;
  ChaosSchedule chaos_;
  DegradationPolicy policy_;
  ContinuousProfiler profiler_;
  qos::AdmissionController admission_;

  // Fault-campaign plumbing (chaos poison/throttle/UPI).
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<PmemSpace> fault_space_;
  std::unique_ptr<BreakerBoard> breakers_;
  FaultDomain domain_;

  // Durable-campaign plumbing (chaos crashes / ingest bursts).
  std::unique_ptr<PmemSpace> durable_space_;
  std::unique_ptr<CrashInjector> crash_;
  std::unique_ptr<DurableTable> table_;
  /// epoch id -> cumulative committed fact rows (index 0 = 0 rows).
  std::vector<uint64_t> epoch_rows_;
  uint64_t ingested_rows_ = 0;
  uint64_t pending_burst_rows_ = 0;

  std::unique_ptr<governor::BandwidthGovernor> governor_;
  std::unique_ptr<SsbEngine> primary_;
  std::unique_ptr<SsbEngine> degraded_;

  ssb::ReferenceExecutor reference_;
  std::map<std::pair<uint64_t, int>, ssb::QueryOutput> reference_cache_;
  std::map<uint64_t, std::unique_ptr<ssb::Database>> prefix_dbs_;
  std::map<std::string, CachedRun> run_cache_;

  // Event-loop state.
  double now_ = 0.0;
  uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::vector<RequestRecord> requests_;
  std::deque<uint64_t> queue_[qos::kNumPriorities];
  int bypass_[qos::kNumPriorities] = {0, 0, 0};
  int in_flight_ = 0;
  std::map<uint64_t, qos::AdmissionTicket> running_;
  bool crashed_window_ = false;
  Status run_error_ = Status::OK();
  ServiceCounters counters_;
  std::vector<double> fault_clear_edges_;
  int tick_index_ = 0;
  uint64_t completed_at_last_tick_ = 0;
  bool prepared_ = false;
};

}  // namespace pmemolap::service
