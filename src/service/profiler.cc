#include "service/profiler.h"

#include <cstdio>

namespace pmemolap::service {

std::string ContinuousProfiler::CsvHeader() {
  return "tick,seconds,tier,estimate,in_flight,waiting,submitted,admitted,"
         "shed,expired,completed,retried,tick_completions,crashes,recoveries,"
         "breaker_trips,governor_quantum,write_threads,staged_bytes,"
         "committed_epoch";
}

std::string ContinuousProfiler::ToCsv() const {
  std::string out = CsvHeader();
  out += '\n';
  char line[512];
  for (const ProfileTick& t : ticks_) {
    std::snprintf(
        line, sizeof(line),
        "%d,%.3f,%d,%.6f,%d,%d,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,"
        "%llu,%llu,%d,%d,%llu,%llu\n",
        t.tick, t.seconds, t.tier, t.estimate, t.in_flight, t.waiting,
        static_cast<unsigned long long>(t.submitted),
        static_cast<unsigned long long>(t.admitted),
        static_cast<unsigned long long>(t.shed),
        static_cast<unsigned long long>(t.expired),
        static_cast<unsigned long long>(t.completed),
        static_cast<unsigned long long>(t.retried),
        static_cast<unsigned long long>(t.tick_completions),
        static_cast<unsigned long long>(t.crashes),
        static_cast<unsigned long long>(t.recoveries),
        static_cast<unsigned long long>(t.breaker_trips), t.governor_quantum,
        t.write_threads, static_cast<unsigned long long>(t.staged_bytes),
        static_cast<unsigned long long>(t.committed_epoch));
    out += line;
  }
  return out;
}

}  // namespace pmemolap::service
