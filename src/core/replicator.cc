#include "core/replicator.h"

namespace pmemolap {

Result<int> ReplicatedTable::HealthyCopyIndex(int socket, uint64_t offset,
                                              uint64_t size) const {
  if (copies_.empty()) {
    return Status::FailedPrecondition("table has no replicas");
  }
  const int n = num_copies();
  const int local = static_cast<int>(CopyIndexFor(socket));
  for (int step = 0; step < n; ++step) {
    int candidate = (local + step) % n;
    if (!copies_[static_cast<size_t>(candidate)].IsPoisoned(offset, size)) {
      return candidate;
    }
  }
  return Status::DataLoss("all replicas poisoned over requested range");
}

Result<ReplicatedTable> DimensionReplicator::Replicate(const std::byte* data,
                                                       uint64_t bytes,
                                                       Media media) {
  if (data == nullptr || bytes == 0) {
    return Status::InvalidArgument("nothing to replicate");
  }
  std::vector<Allocation> copies;
  const int sockets = space_->topology().sockets();
  copies.reserve(static_cast<size_t>(sockets));
  for (int socket = 0; socket < sockets; ++socket) {
    Result<Allocation> copy =
        space_->Allocate(bytes, MemPlacement{media, socket});
    if (!copy.ok()) {
      for (const Allocation& done : copies) space_->Release(done);
      return copy.status();
    }
    std::memcpy(copy->data(), data, bytes);
    copies.push_back(std::move(copy.value()));
  }
  return ReplicatedTable(std::move(copies));
}

}  // namespace pmemolap
