#include "core/replicator.h"

namespace pmemolap {

Result<ReplicatedTable> DimensionReplicator::Replicate(const std::byte* data,
                                                       uint64_t bytes,
                                                       Media media) {
  if (data == nullptr || bytes == 0) {
    return Status::InvalidArgument("nothing to replicate");
  }
  std::vector<Allocation> copies;
  const int sockets = space_->topology().sockets();
  copies.reserve(static_cast<size_t>(sockets));
  for (int socket = 0; socket < sockets; ++socket) {
    Result<Allocation> copy =
        space_->Allocate(bytes, MemPlacement{media, socket});
    if (!copy.ok()) {
      for (const Allocation& done : copies) space_->Release(done);
      return copy.status();
    }
    std::memcpy(copy->data(), data, bytes);
    copies.push_back(std::move(copy.value()));
  }
  return ReplicatedTable(std::move(copies));
}

}  // namespace pmemolap
