// PmemSpace — placement-aware memory management over the modeled platform.
//
// On real hardware this role is played by devdax mappings per socket plus
// libnuma for DRAM; here allocations are backed by the process heap and
// tagged with their modeled placement (media + socket), which the profiling
// and timing layers use. Capacity accounting follows the modeled topology
// (e.g. 768 GB PMEM / 96 GB DRAM per socket on the paper machine).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "topo/topology.h"

namespace pmemolap {

/// Where a region of memory lives.
struct MemPlacement {
  Media media = Media::kPmem;
  int socket = 0;

  bool operator==(const MemPlacement& other) const {
    return media == other.media && socket == other.socket;
  }
};

/// An owned, placement-tagged memory region. `offset` supports aligned
/// allocations (the usable region starts past the raw buffer's base).
class Allocation {
 public:
  Allocation() = default;
  Allocation(std::unique_ptr<std::byte[]> data, uint64_t size,
             MemPlacement placement, uint64_t offset = 0,
             uint64_t charged_bytes = 0)
      : data_(std::move(data)),
        size_(size),
        offset_(offset),
        charged_bytes_(charged_bytes == 0 ? size : charged_bytes),
        placement_(placement) {}

  std::byte* data() { return data_.get() + offset_; }
  const std::byte* data() const { return data_.get() + offset_; }
  uint64_t size() const { return size_; }
  /// Bytes charged against the capacity accounting (>= size for aligned
  /// allocations, which pay for their padding).
  uint64_t charged_bytes() const { return charged_bytes_; }
  const MemPlacement& placement() const { return placement_; }
  bool empty() const { return size_ == 0; }

 private:
  std::unique_ptr<std::byte[]> data_;
  uint64_t size_ = 0;
  uint64_t offset_ = 0;
  uint64_t charged_bytes_ = 0;
  MemPlacement placement_;
};

/// A logical region striped across the PMEM (or DRAM) of every socket —
/// best practice #4: "place data on all sockets but access it only from
/// near NUMA regions".
class StripedAllocation {
 public:
  StripedAllocation() = default;
  explicit StripedAllocation(std::vector<Allocation> stripes)
      : stripes_(std::move(stripes)) {}

  int num_stripes() const { return static_cast<int>(stripes_.size()); }
  Allocation& stripe(int socket) { return stripes_[socket]; }
  const Allocation& stripe(int socket) const { return stripes_[socket]; }
  uint64_t total_size() const;

 private:
  std::vector<Allocation> stripes_;
};

/// Allocator with per-socket capacity accounting against the modeled
/// platform.
class PmemSpace {
 public:
  explicit PmemSpace(const SystemTopology& topology);

  /// Allocates `size` bytes on one socket's media. Fails with
  /// ResourceExhausted when the modeled capacity is exceeded.
  Result<Allocation> Allocate(uint64_t size, MemPlacement placement);

  /// Allocates with the start aligned to `alignment` (a power of two):
  /// 4 KB aligns chunks to the DIMM interleave (insight #1), 256 B to
  /// Optane's internal lines (insight #6).
  Result<Allocation> AllocateAligned(uint64_t size, uint64_t alignment,
                                     MemPlacement placement);

  /// Splits `size` bytes evenly across the sockets' media (socket i gets
  /// the i-th chunk; remainder goes to the last socket).
  Result<StripedAllocation> AllocateStriped(uint64_t size, Media media);

  /// Returns the remaining modeled capacity for a placement.
  uint64_t AvailableBytes(MemPlacement placement) const;

  /// Releases accounting for an allocation (the memory itself is freed by
  /// the Allocation destructor).
  void Release(const Allocation& allocation);

  const SystemTopology& topology() const { return topology_; }

 private:
  uint64_t CapacityOf(MemPlacement placement) const;
  uint64_t& UsedOf(MemPlacement placement);
  uint64_t UsedOf(MemPlacement placement) const;

  SystemTopology topology_;
  std::vector<uint64_t> pmem_used_;  // per socket
  std::vector<uint64_t> dram_used_;  // per socket
};

}  // namespace pmemolap
