// PmemSpace — placement-aware memory management over the modeled platform.
//
// On real hardware this role is played by devdax mappings per socket plus
// libnuma for DRAM; here allocations are backed by the process heap and
// tagged with their modeled placement (media + socket), which the profiling
// and timing layers use. Capacity accounting follows the modeled topology
// (e.g. 768 GB PMEM / 96 GB DRAM per socket on the paper machine).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "topo/topology.h"

namespace pmemolap {

/// Where a region of memory lives.
struct MemPlacement {
  Media media = Media::kPmem;
  int socket = 0;

  bool operator==(const MemPlacement& other) const {
    return media == other.media && socket == other.socket;
  }
};

/// An owned, placement-tagged memory region. `offset` supports aligned
/// allocations (the usable region starts past the raw buffer's base).
class Allocation {
 public:
  Allocation() = default;
  Allocation(std::unique_ptr<std::byte[]> data, uint64_t size,
             MemPlacement placement, uint64_t offset = 0,
             uint64_t charged_bytes = 0)
      : data_(std::move(data)),
        size_(size),
        offset_(offset),
        charged_bytes_(charged_bytes == 0 ? size : charged_bytes),
        placement_(placement) {}

  std::byte* data() { return data_.get() + offset_; }
  const std::byte* data() const { return data_.get() + offset_; }
  uint64_t size() const { return size_; }
  /// Bytes charged against the capacity accounting (>= size for aligned
  /// allocations, which pay for their padding).
  uint64_t charged_bytes() const { return charged_bytes_; }
  const MemPlacement& placement() const { return placement_; }
  bool empty() const { return size_ == 0; }

  // --- Media poison tracking (fault layer) ---------------------------------
  // A "line" is one 256 B Optane internal line, indexed from the start of
  // the usable region. A poisoned line models an uncorrectable media error:
  // reads of it must fail until the line is scrubbed (rewritten). Transient
  // poisons model errors the DIMM's ECC corrects after retries.

  /// Marks line `line_index` poisoned. `transient_clears` > 0 means the
  /// poison clears after that many retry attempts (ECC eventually
  /// corrects); 0 means permanent until ScrubLine.
  void PoisonLine(uint64_t line_index, int transient_clears = 0);

  /// Clears the poison on `line_index` (after the line was rewritten).
  /// Returns true if the line was poisoned.
  bool ScrubLine(uint64_t line_index);

  /// One retry attempt on a transiently poisoned line; returns true when
  /// the retry cleared the poison. Permanent poisons never clear.
  bool RetryLine(uint64_t line_index);

  /// True if any poisoned line overlaps [offset, offset + size).
  bool IsPoisoned(uint64_t offset, uint64_t size) const;

  /// Line indexes of poisoned lines overlapping [offset, offset + size).
  std::vector<uint64_t> PoisonedLinesIn(uint64_t offset,
                                        uint64_t size) const;

  /// Line indexes whose poison is permanent (no transient clears left) —
  /// these hold genuinely corrupt data until scrubbed from a source.
  std::vector<uint64_t> PermanentPoisonedLines() const;

  uint64_t poisoned_line_count() const {
    return poisoned_ == nullptr ? 0 : poisoned_->size();
  }

 private:
  std::unique_ptr<std::byte[]> data_;
  uint64_t size_ = 0;
  uint64_t offset_ = 0;
  uint64_t charged_bytes_ = 0;
  MemPlacement placement_;
  /// line index -> remaining transient clears (0 = permanent). Lazily
  /// created: healthy allocations pay one null pointer.
  std::unique_ptr<std::map<uint64_t, int>> poisoned_;
};

/// A logical region striped across the PMEM (or DRAM) of every socket —
/// best practice #4: "place data on all sockets but access it only from
/// near NUMA regions".
class StripedAllocation {
 public:
  StripedAllocation() = default;
  explicit StripedAllocation(std::vector<Allocation> stripes)
      : stripes_(std::move(stripes)) {}

  int num_stripes() const { return static_cast<int>(stripes_.size()); }
  Allocation& stripe(int socket) { return stripes_[socket]; }
  const Allocation& stripe(int socket) const { return stripes_[socket]; }
  uint64_t total_size() const;

 private:
  std::vector<Allocation> stripes_;
};

/// Allocator with per-socket capacity accounting against the modeled
/// platform.
class PmemSpace {
 public:
  /// Called after each successful allocation, before it is returned. The
  /// hook may tag the region (e.g. poison lines) or veto the allocation by
  /// returning an error, which PmemSpace propagates after releasing the
  /// region. Installed by the fault layer; a default-constructed space has
  /// no hook.
  using AllocationHook = std::function<Status(Allocation*)>;

  explicit PmemSpace(const SystemTopology& topology);

  /// Installs (or clears, with nullptr) the allocation hook.
  void set_allocation_hook(AllocationHook hook) {
    allocation_hook_ = std::move(hook);
  }

  /// Allocates `size` bytes on one socket's media. Fails with
  /// ResourceExhausted when the modeled capacity is exceeded.
  Result<Allocation> Allocate(uint64_t size, MemPlacement placement);

  /// Allocates with the start aligned to `alignment` (a power of two):
  /// 4 KB aligns chunks to the DIMM interleave (insight #1), 256 B to
  /// Optane's internal lines (insight #6).
  Result<Allocation> AllocateAligned(uint64_t size, uint64_t alignment,
                                     MemPlacement placement);

  /// Splits `size` bytes evenly across the sockets' media (socket i gets
  /// the i-th chunk; remainder goes to the last socket).
  Result<StripedAllocation> AllocateStriped(uint64_t size, Media media);

  /// Returns the remaining modeled capacity for a placement.
  uint64_t AvailableBytes(MemPlacement placement) const;

  /// Releases accounting for an allocation (the memory itself is freed by
  /// the Allocation destructor).
  void Release(const Allocation& allocation);

  const SystemTopology& topology() const { return topology_; }

 private:
  uint64_t CapacityOf(MemPlacement placement) const;
  uint64_t& UsedOf(MemPlacement placement);
  uint64_t UsedOf(MemPlacement placement) const;

  /// Runs the hook on a fresh allocation; on veto, releases it and returns
  /// the hook's error.
  Result<Allocation> FinishAllocation(Allocation allocation);

  SystemTopology topology_;
  std::vector<uint64_t> pmem_used_;  // per socket
  std::vector<uint64_t> dram_used_;  // per socket
  AllocationHook allocation_hook_;
};

}  // namespace pmemolap
