// WorkloadRunner — convenience layer that assembles WorkloadSpecs for the
// paper's experiment families and evaluates them on a MemSystemModel.
//
// Each method corresponds to one experimental axis of the paper; the bench
// binaries in bench/ are thin loops over these methods.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "memsys/mem_system.h"
#include "memsys/workload.h"
#include "topo/pinning.h"

namespace pmemolap {

/// The five cross-socket configurations of paper Figs. 6 and 10.
enum class MultiSocketConfig {
  kOneNear,        ///< one socket reads/writes its near memory
  kOneFar,         ///< one socket accesses the other socket's memory
  kTwoNear,        ///< both sockets access their own near memory
  kTwoFar,         ///< both sockets access each other's memory
  kNearFarShared,  ///< both sockets access the SAME memory (one near, one far)
};

const char* MultiSocketConfigName(MultiSocketConfig config);

/// Options shared by the single-class experiment helpers.
struct RunOptions {
  PinningPolicy pinning = PinningPolicy::kNumaRegion;
  int data_socket = 0;
  /// Socket the threads are pinned to; -1 means the data socket (near
  /// access). Set to the other socket for far-access experiments (Fig. 5).
  int thread_socket = -1;
  uint64_t region_bytes = 70ULL * kGiB;
  /// 1 = first run (cold far directory); >= 2 = warmed.
  int run_index = 1;
  /// Store instruction for write workloads.
  WriteInstruction instruction = WriteInstruction::kNtStore;
  bool l2_prefetcher_enabled = true;
  bool devdax = true;
};

class WorkloadRunner {
 public:
  /// The runner evaluates statelessly (EvaluateOnce); the caller's
  /// run_index controls directory warmth so sweeps are order-independent.
  explicit WorkloadRunner(const MemSystemModel* model) : model_(model) {}

  /// Builds the single AccessClass for a homogeneous experiment point.
  Result<AccessClass> MakeClass(OpType op, Pattern pattern, Media media,
                                uint64_t access_size, int threads,
                                const RunOptions& options) const;

  /// Bandwidth of one homogeneous class (Figs. 3, 4, 5, 7, 8, 9, 12, 13).
  Result<GigabytesPerSecond> Bandwidth(OpType op, Pattern pattern,
                                       Media media, uint64_t access_size,
                                       int threads,
                                       const RunOptions& options) const;

  /// Full result (with diagnostics) of one homogeneous class.
  Result<BandwidthResult> Run(OpType op, Pattern pattern, Media media,
                              uint64_t access_size, int threads,
                              const RunOptions& options) const;

  /// Accumulated bandwidth of the multi-socket configurations of Figs. 6
  /// and 10: `threads_per_socket` threads on each participating socket,
  /// individual sequential access of `access_size`.
  Result<BandwidthResult> MultiSocket(OpType op, Media media,
                                      MultiSocketConfig config,
                                      int threads_per_socket,
                                      uint64_t access_size,
                                      int run_index = 2) const;

  /// The mixed read/write workload of Fig. 11: x writers and y readers on
  /// one socket, disjoint regions on the same DIMMs, 4 KB individual.
  Result<BandwidthResult> Mixed(int write_threads, int read_threads,
                                Media media = Media::kPmem,
                                uint64_t access_size = 4 * kKiB) const;

  const MemSystemModel& model() const { return *model_; }

 private:
  const MemSystemModel* model_;
};

}  // namespace pmemolap
