// Partitioner — NUMA-aware splitting of a large table across sockets and
// of each socket's share across worker threads (best practice #4 and the
// handcrafted SSB's data layout in §6.2: "the fact table is shuffled and
// striped across PMEM on both sockets and threads access only their near
// data in individual chunks").
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/morsel.h"
#include "topo/topology.h"

namespace pmemolap {

/// A contiguous range of tuple indexes [begin, end).
struct TupleRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// The share of one socket: which tuples it stores and how its local
/// workers split them.
struct SocketPartition {
  int socket = 0;
  TupleRange tuples;
  /// Disjoint per-worker sub-ranges of `tuples` ("individual access").
  std::vector<TupleRange> worker_ranges;
};

/// Even round-free partitioning: socket shares are contiguous, worker
/// shares are contiguous within the socket share, so every worker streams
/// sequentially through its own region.
class Partitioner {
 public:
  explicit Partitioner(const SystemTopology& topology)
      : topology_(topology) {}

  /// Splits `num_tuples` into one contiguous share per socket and
  /// `workers_per_socket` disjoint ranges within each share.
  Result<std::vector<SocketPartition>> Partition(
      uint64_t num_tuples, int workers_per_socket) const;

  /// Skew-aware variant (the paper notes that "creating optimal partitions
  /// is not always possible ... e.g., due to skewed data"): tuples carry
  /// per-chunk processing weights (chunk i covers tuples
  /// [i*chunk, (i+1)*chunk)), and boundaries are placed so every socket —
  /// and every worker within a socket — receives approximately equal
  /// total weight instead of equal tuple counts. Ranges stay contiguous,
  /// preserving sequential near-only scans.
  Result<std::vector<SocketPartition>> PartitionWeighted(
      uint64_t num_tuples, int workers_per_socket,
      const std::vector<double>& chunk_weights) const;

  /// The socket owning a given tuple under Partition()'s layout.
  int SocketOfTuple(uint64_t tuple, uint64_t num_tuples) const;

  /// Feeds a socket partitioning to the work-stealing executor: each
  /// socket's tuple share becomes one per-socket run queue of morsels
  /// (<= morsel_tuples tuples each, 0 = default). Morsel order within a
  /// queue preserves the socket's sequential scan direction.
  static MorselPlan ToMorsels(const std::vector<SocketPartition>& partitions,
                              uint64_t morsel_tuples);

 private:
  SystemTopology topology_;
};

}  // namespace pmemolap
