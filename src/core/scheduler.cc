#include "core/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace pmemolap {

Result<ScheduleDecision> MixedWorkloadScheduler::Decide(
    const MixedJobs& jobs) const {
  if (jobs.read_bytes == 0 || jobs.write_bytes == 0) {
    return Status::InvalidArgument(
        "both jobs must move data (a single job needs no schedule)");
  }
  ScheduleDecision decision;
  RunOptions options;

  PMEMOLAP_ASSIGN_OR_RETURN(
      decision.read_solo_gbps,
      runner_.Bandwidth(OpType::kRead, Pattern::kSequentialIndividual,
                        Media::kPmem, jobs.access_size, jobs.read_threads,
                        options));
  PMEMOLAP_ASSIGN_OR_RETURN(
      decision.write_solo_gbps,
      runner_.Bandwidth(OpType::kWrite, Pattern::kSequentialIndividual,
                        Media::kPmem, jobs.access_size, jobs.write_threads,
                        options));

  PMEMOLAP_ASSIGN_OR_RETURN(
      BandwidthResult mixed,
      runner_.Mixed(jobs.write_threads, jobs.read_threads, Media::kPmem,
                    jobs.access_size));
  decision.write_mixed_gbps = mixed.per_class[0].gbps;
  decision.read_mixed_gbps = mixed.per_class[1].gbps;

  double read_gb = static_cast<double>(jobs.read_bytes) / 1e9;
  double write_gb = static_cast<double>(jobs.write_bytes) / 1e9;

  // Serial: phases back to back at solo bandwidth.
  decision.serial_seconds = read_gb / decision.read_solo_gbps +
                            write_gb / decision.write_solo_gbps;

  // Mixed: both run jointly until the shorter job drains; the survivor
  // finishes at its solo bandwidth.
  double read_mixed_time = read_gb / decision.read_mixed_gbps;
  double write_mixed_time = write_gb / decision.write_mixed_gbps;
  double joint = std::min(read_mixed_time, write_mixed_time);
  double tail;
  if (read_mixed_time > write_mixed_time) {
    double remaining = read_gb * (1.0 - joint / read_mixed_time);
    tail = remaining / decision.read_solo_gbps;
  } else {
    double remaining = write_gb * (1.0 - joint / write_mixed_time);
    tail = remaining / decision.write_solo_gbps;
  }
  decision.mixed_seconds = joint + tail;

  decision.serialize = decision.serial_seconds <= decision.mixed_seconds;
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%s: serial %.2fs vs mixed %.2fs (mixed drops reads %.0f->%.0f "
      "GB/s, writes %.1f->%.1f GB/s)",
      decision.serialize ? "serialize" : "run mixed",
      decision.serial_seconds, decision.mixed_seconds,
      decision.read_solo_gbps, decision.read_mixed_gbps,
      decision.write_solo_gbps, decision.write_mixed_gbps);
  decision.rationale = buf;
  return decision;
}

Result<ScheduleDecision> MixedWorkloadScheduler::DecideDegraded(
    const MixedJobs& jobs, const MemSystemModel* degraded_model) const {
  if (degraded_model == nullptr) {
    return Status::InvalidArgument("degraded model must not be null");
  }
  // Plan at the degraded rates: both the serialize-vs-mix call and the
  // makespans must reflect what the throttled platform can actually serve.
  MixedWorkloadScheduler degraded_scheduler(degraded_model);
  PMEMOLAP_ASSIGN_OR_RETURN(ScheduleDecision decision,
                            degraded_scheduler.Decide(jobs));
  PMEMOLAP_ASSIGN_OR_RETURN(ScheduleDecision healthy, Decide(jobs));
  decision.degraded_mode = true;
  decision.healthy_seconds =
      decision.serialize ? healthy.serial_seconds : healthy.mixed_seconds;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "[degraded platform] %s; chosen plan takes %.2fs degraded "
                "vs %.2fs healthy%s",
                decision.rationale.c_str(),
                decision.serialize ? decision.serial_seconds
                                   : decision.mixed_seconds,
                decision.healthy_seconds,
                decision.serialize != healthy.serialize
                    ? " (throttling flipped the serialize-vs-mix call)"
                    : "");
  decision.rationale = buf;
  return decision;
}

Result<int> MixedWorkloadScheduler::PlanAroundQuarantine(
    const std::vector<bool>& healthy, int preferred) {
  if (preferred < 0) {
    return Status::InvalidArgument("preferred socket must be >= 0");
  }
  const size_t p = static_cast<size_t>(preferred);
  if (p >= healthy.size() || healthy[p]) return preferred;
  int best = -1;
  int best_distance = 0;
  for (size_t s = 0; s < healthy.size(); ++s) {
    if (!healthy[s]) continue;
    const int distance =
        std::abs(static_cast<int>(s) - preferred);
    if (best < 0 || distance < best_distance) {
      best = static_cast<int>(s);
      best_distance = distance;
    }
  }
  if (best < 0) {
    return Status::Unavailable(
        "every socket's fault domain is quarantined");
  }
  return best;
}

}  // namespace pmemolap
