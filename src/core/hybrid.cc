#include "core/hybrid.h"

#include <algorithm>
#include <utility>

namespace pmemolap {

HybridPlacement HybridPlacer::Place(const StructureSizes& sizes,
                                    uint64_t dram_budget_bytes) const {
  HybridPlacement placement;
  uint64_t budget = dram_budget_bytes > 0
                        ? dram_budget_bytes
                        : topology_.dram_capacity_per_socket();

  // 1. Indexes: random probes are latency-bound on PMEM (Fig. 12) and
  //    dominate join-heavy queries (§6.2) — highest DRAM priority.
  if (sizes.index_bytes > 0 && sizes.index_bytes <= budget) {
    placement.index_media = Media::kDram;
    placement.dram_used_bytes += sizes.index_bytes;
    budget -= sizes.index_bytes;
    placement.rationale.push_back(
        "indexes -> DRAM: random probes are PMEM's weakest access pattern "
        "(latency-bound, ~1/3 of DRAM's random bandwidth)");
  } else if (sizes.index_bytes > 0) {
    placement.rationale.push_back(
        "indexes -> PMEM: do not fit the DRAM budget; use >= 256 B buckets "
        "(Dash) to probe at Optane line granularity");
  }

  // 2. Intermediates: writes reach only ~1/7th of PMEM's read bandwidth
  //    and degrade under parallelism (Figs. 7/8).
  if (sizes.intermediate_bytes > 0 && sizes.intermediate_bytes <= budget) {
    placement.intermediate_media = Media::kDram;
    placement.dram_used_bytes += sizes.intermediate_bytes;
    budget -= sizes.intermediate_bytes;
    placement.rationale.push_back(
        "intermediates -> DRAM: PMEM writes are the scarce resource "
        "(12.6 vs 40 GB/s) and intermediates need no persistence");
  } else if (sizes.intermediate_bytes > 0) {
    placement.rationale.push_back(
        "intermediates -> PMEM: exceed the remaining DRAM budget; write "
        "them with 4-6 threads per socket in 4 KB chunks");
  }

  // 3. Base table: sequential scans run near-DRAM on PMEM; only promote
  //    if the whole table still fits (small datasets).
  if (sizes.table_bytes > 0 && sizes.table_bytes <= budget) {
    placement.table_media = Media::kDram;
    placement.dram_used_bytes += sizes.table_bytes;
    placement.rationale.push_back(
        "table -> DRAM: the whole working set fits; no reason to pay the "
        "PMEM read gap");
  } else {
    placement.rationale.push_back(
        "table -> PMEM: sequential scans are PMEM's strongest discipline "
        "(~40 GB/s/socket); stripe across sockets, read near-only");
  }
  return placement;
}

StagingPlan HybridPlacer::PlanStaging(std::vector<StagingCandidate> candidates,
                                      uint64_t dram_budget_bytes) const {
  StagingPlan plan;
  uint64_t budget = dram_budget_bytes > 0
                        ? dram_budget_bytes
                        : topology_.dram_capacity_per_socket();

  // Benefit density first (seconds saved per staged byte), name as the
  // deterministic tie-break. Zero-byte candidates are free: treat their
  // density as infinite by ordering them ahead of sized ones.
  std::sort(candidates.begin(), candidates.end(),
            [](const StagingCandidate& a, const StagingCandidate& b) {
              double density_a = a.bytes > 0
                                     ? a.benefit_seconds /
                                           static_cast<double>(a.bytes)
                                     : a.benefit_seconds;
              double density_b = b.bytes > 0
                                     ? b.benefit_seconds /
                                           static_cast<double>(b.bytes)
                                     : b.benefit_seconds;
              bool free_a = a.bytes == 0;
              bool free_b = b.bytes == 0;
              if (free_a != free_b) return free_a;
              if (density_a != density_b) return density_a > density_b;
              return a.name < b.name;
            });

  for (StagingCandidate& candidate : candidates) {
    if (candidate.benefit_seconds <= 0.0) {
      plan.rationale.push_back(candidate.name +
                               " -> PMEM: staging would not save time");
      continue;
    }
    if (candidate.bytes > budget) {
      plan.rationale.push_back(candidate.name +
                               " -> PMEM: exceeds the remaining DRAM budget");
      continue;
    }
    budget -= candidate.bytes;
    plan.dram_used_bytes += candidate.bytes;
    plan.rationale.push_back(candidate.name +
                             " -> DRAM: best remaining benefit density");
    plan.staged.push_back(std::move(candidate));
  }
  std::sort(plan.staged.begin(), plan.staged.end(),
            [](const StagingCandidate& a, const StagingCandidate& b) {
              return a.name < b.name;
            });
  return plan;
}

}  // namespace pmemolap
