// HybridPlacer — PMEM/DRAM placement for hybrid deployments.
//
// The paper's future work ("we plan to transfer our insights to hybrid
// PMEM-DRAM setups", §9) distilled into a planner: given the sizes of a
// workload's structures and the available DRAM budget, place each
// structure on the media its access pattern favors.
//
// Placement priority follows the characterization results:
//   1. Random-access structures (hash indexes): PMEM's weakest discipline
//      (latency-bound probes, Figs. 12/14) — DRAM first.
//   2. Write-heavy intermediates: PMEM writes are 1/7th of reads and
//      collapse under many writers (Figs. 7/8) — DRAM second.
//   3. Sequentially scanned base tables: PMEM's strongest discipline
//      (~40 GB/s/socket, Fig. 3) — PMEM unless DRAM is left over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/topology.h"

namespace pmemolap {

/// Byte sizes of the workload's structures (per socket).
struct StructureSizes {
  uint64_t table_bytes = 0;         ///< sequentially scanned base data
  uint64_t index_bytes = 0;         ///< randomly probed indexes
  uint64_t intermediate_bytes = 0;  ///< write-heavy intermediates
};

/// The chosen placement plus the reasoning.
struct HybridPlacement {
  Media table_media = Media::kPmem;
  Media index_media = Media::kPmem;
  Media intermediate_media = Media::kPmem;
  /// DRAM bytes the plan consumes (<= budget).
  uint64_t dram_used_bytes = 0;
  std::vector<std::string> rationale;

  bool IsPmemOnly() const {
    return table_media == Media::kPmem && index_media == Media::kPmem &&
           intermediate_media == Media::kPmem;
  }
};

/// One structure the runtime could promote to DRAM (the governor's
/// dynamic counterpart of StructureSizes).
struct StagingCandidate {
  std::string name;
  /// DRAM bytes the staged copy would occupy.
  uint64_t bytes = 0;
  /// Modeled seconds per scheduling quantum that staging would save.
  double benefit_seconds = 0.0;
};

/// The chosen staging set plus the reasoning.
struct StagingPlan {
  /// Chosen candidates, sorted by name for deterministic actuation.
  std::vector<StagingCandidate> staged;
  uint64_t dram_used_bytes = 0;
  std::vector<std::string> rationale;
};

/// Plans hybrid placements under a per-socket DRAM budget.
class HybridPlacer {
 public:
  explicit HybridPlacer(const SystemTopology& topology)
      : topology_(topology) {}

  /// Places the structures. `dram_budget_bytes` of 0 means "use the
  /// platform's full DRAM capacity per socket".
  HybridPlacement Place(const StructureSizes& sizes,
                        uint64_t dram_budget_bytes = 0) const;

  /// Runtime form of Place: picks the staging set maximizing saved
  /// modeled seconds under the budget, greedily by benefit density
  /// (seconds saved per staged byte), ties broken by name so the plan is
  /// deterministic. Candidates with non-positive benefit never stage.
  StagingPlan PlanStaging(std::vector<StagingCandidate> candidates,
                          uint64_t dram_budget_bytes = 0) const;

 private:
  SystemTopology topology_;
};

}  // namespace pmemolap
