#include "core/profile.h"

#include <cmath>

namespace pmemolap {

void ExecutionProfile::RecordSequential(OpType op, Media media, int socket,
                                        uint64_t bytes, uint64_t access_size,
                                        int threads,
                                        const std::string& label) {
  TrafficRecord record;
  record.op = op;
  record.pattern = Pattern::kSequentialIndividual;
  record.media = media;
  record.data_socket = socket;
  record.bytes = bytes;
  record.access_size = access_size;
  record.region_bytes = bytes;
  record.threads = threads;
  record.label = label;
  Record(std::move(record));
}

void ExecutionProfile::RecordRandom(OpType op, Media media, int socket,
                                    uint64_t count, uint64_t access_size,
                                    uint64_t region_bytes, int threads,
                                    const std::string& label) {
  TrafficRecord record;
  record.op = op;
  record.pattern = Pattern::kRandom;
  record.media = media;
  record.data_socket = socket;
  record.bytes = count * access_size;
  record.access_size = access_size;
  record.region_bytes = region_bytes;
  record.threads = threads;
  record.label = label;
  Record(std::move(record));
}

void ExecutionProfile::Merge(const ExecutionProfile& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

uint64_t ExecutionProfile::TotalBytes(OpType op) const {
  uint64_t total = 0;
  for (const TrafficRecord& record : records_) {
    if (record.op == op) total += record.bytes;
  }
  return total;
}

ExecutionProfile ExecutionProfile::Scaled(double factor) const {
  ExecutionProfile scaled;
  for (TrafficRecord record : records_) {
    record.bytes = static_cast<uint64_t>(
        std::llround(static_cast<double>(record.bytes) * factor));
    record.region_bytes = static_cast<uint64_t>(
        std::llround(static_cast<double>(record.region_bytes) * factor));
    scaled.Record(std::move(record));
  }
  return scaled;
}

}  // namespace pmemolap
