// BestPracticesAdvisor — the paper's 7 best practices (Section 7) codified
// as an API: given a description of a workload, produce the access plan the
// paper recommends, with the rationale attached.
//
//  (1) Read and write to PMEM in distinct memory regions.
//  (2) Scale up threads for reads; limit writers to 4-6 per socket.
//  (3) Pin threads (explicitly) within their NUMA regions.
//  (4) Place data on all sockets, access only from near NUMA regions.
//  (5) Avoid large mixed read-write workloads when possible.
//  (6) Access PMEM sequentially; use the largest possible access for
//      random workloads (>= 256 B).
//  (7) Use PMEM in devdax mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "topo/pinning.h"
#include "topo/topology.h"

namespace pmemolap {

/// What the caller intends to run.
struct WorkloadIntent {
  /// Fraction of the workload's bytes that are reads, in [0,1].
  double read_fraction = 1.0;
  /// True if accesses are point lookups / hash probes rather than scans.
  bool random_access = false;
  /// The caller has exclusive control of thread placement.
  bool full_system_control = true;
  /// Reads and writes must run concurrently (e.g. queries during load).
  bool requires_concurrent_read_write = false;
  /// Latency sensitivity: latency-insensitive phases can be serialized.
  bool latency_sensitive = false;
  /// Total bytes of the primary data set.
  uint64_t working_set_bytes = 0;
  /// Size of the small, frequently random-probed side tables (0 = none).
  uint64_t small_table_bytes = 0;
};

/// The recommended plan. Fields map 1:1 to the best practices.
struct AccessPlan {
  int read_threads_per_socket = 0;   ///< BP2: all physical cores
  int write_threads_per_socket = 0;  ///< BP2: 4-6
  bool use_hyperthreads_for_reads = false;  ///< avoid HT for seq. reads
  PinningPolicy pinning = PinningPolicy::kCores;  ///< BP3
  uint64_t sequential_chunk_bytes = 4 * kKiB;     ///< BP6/insight #1/#6
  uint64_t small_write_chunk_bytes = 256;         ///< insight #6
  uint64_t min_random_access_bytes = 256;         ///< BP6
  bool stripe_across_sockets = true;      ///< BP4
  bool near_socket_access_only = true;    ///< BP4
  bool replicate_small_tables = true;     ///< §6.2 dimension replication
  bool distinct_read_write_regions = true;  ///< BP1
  bool serialize_read_write_phases = false;  ///< BP5
  bool use_devdax = true;                    ///< BP7
  std::vector<std::string> rationale;        ///< one line per decision
};

/// Produces AccessPlans for a given platform.
class BestPracticesAdvisor {
 public:
  explicit BestPracticesAdvisor(const SystemTopology& topology)
      : topology_(topology) {}

  AccessPlan Plan(const WorkloadIntent& intent) const;

  /// The paper's write-thread sweet spot.
  static constexpr int kMinWriteThreads = 4;
  static constexpr int kMaxWriteThreads = 6;

 private:
  SystemTopology topology_;
};

}  // namespace pmemolap
