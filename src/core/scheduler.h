// MixedWorkloadScheduler — insight #11 as a decision procedure.
//
// The paper: "As the bandwidth is impacted notably, for latency
// insensitive workloads it might be beneficial to execute them
// sequentially instead of parallel. However, this is highly
// workload-dependent and cannot be generalized." This class makes the
// workload-dependent call with the model instead of a rule of thumb:
// given a read job and a write job on the same socket's PMEM, it compares
// the serial makespan (each phase at its solo bandwidth) against the mixed
// makespan (joint evaluation; when the shorter job drains, the survivor
// finishes at its solo bandwidth).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/runner.h"
#include "memsys/mem_system.h"

namespace pmemolap {

/// A pair of jobs contending for one socket's PMEM.
struct MixedJobs {
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  int read_threads = 18;
  int write_threads = 6;
  uint64_t access_size = 4 * kKiB;
};

/// The scheduler's verdict with the modeled evidence.
struct ScheduleDecision {
  bool serialize = false;
  double serial_seconds = 0.0;
  double mixed_seconds = 0.0;
  /// Solo and contended bandwidths backing the decision.
  GigabytesPerSecond read_solo_gbps = 0.0;
  GigabytesPerSecond write_solo_gbps = 0.0;
  GigabytesPerSecond read_mixed_gbps = 0.0;
  GigabytesPerSecond write_mixed_gbps = 0.0;
  /// True when the plan was made against a degraded platform model (an
  /// active thermal-throttle window or UPI degradation).
  bool degraded_mode = false;
  /// Makespan the chosen plan would have had on the healthy platform —
  /// the cost of the fault, for reporting.
  double healthy_seconds = 0.0;
  std::string rationale;
};

class MixedWorkloadScheduler {
 public:
  explicit MixedWorkloadScheduler(const MemSystemModel* model)
      : model_(model), runner_(model) {}

  /// Decides whether to serialize the two jobs. Fails on empty jobs or
  /// invalid thread counts.
  Result<ScheduleDecision> Decide(const MixedJobs& jobs) const;

  /// Degraded-bandwidth mode: re-plans against `degraded_model` (the
  /// healthy model with an active throttle window / degraded UPI applied,
  /// see FaultInjector::Degrade). The serialize-vs-mix call is re-made at
  /// the degraded rates — a decision that was marginal when healthy can
  /// flip under throttling — and the healthy makespan is reported
  /// alongside for comparison.
  Result<ScheduleDecision> DecideDegraded(
      const MixedJobs& jobs, const MemSystemModel* degraded_model) const;

  /// Quarantine-aware placement: the socket a job should run against
  /// given per-socket health (healthy[s] == false means s's fault-domain
  /// breaker is open). Returns `preferred` when it is healthy (or beyond
  /// healthy.size() — unknown sockets are presumed healthy), otherwise
  /// the healthy socket nearest `preferred` by index distance (ties go
  /// low, keeping the choice deterministic). kUnavailable when every
  /// known socket is quarantined.
  static Result<int> PlanAroundQuarantine(const std::vector<bool>& healthy,
                                          int preferred);

 private:
  const MemSystemModel* model_;
  WorkloadRunner runner_;
};

}  // namespace pmemolap
