// MixedWorkloadScheduler — insight #11 as a decision procedure.
//
// The paper: "As the bandwidth is impacted notably, for latency
// insensitive workloads it might be beneficial to execute them
// sequentially instead of parallel. However, this is highly
// workload-dependent and cannot be generalized." This class makes the
// workload-dependent call with the model instead of a rule of thumb:
// given a read job and a write job on the same socket's PMEM, it compares
// the serial makespan (each phase at its solo bandwidth) against the mixed
// makespan (joint evaluation; when the shorter job drains, the survivor
// finishes at its solo bandwidth).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/runner.h"
#include "memsys/mem_system.h"

namespace pmemolap {

/// A pair of jobs contending for one socket's PMEM.
struct MixedJobs {
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  int read_threads = 18;
  int write_threads = 6;
  uint64_t access_size = 4 * kKiB;
};

/// The scheduler's verdict with the modeled evidence.
struct ScheduleDecision {
  bool serialize = false;
  double serial_seconds = 0.0;
  double mixed_seconds = 0.0;
  /// Solo and contended bandwidths backing the decision.
  GigabytesPerSecond read_solo_gbps = 0.0;
  GigabytesPerSecond write_solo_gbps = 0.0;
  GigabytesPerSecond read_mixed_gbps = 0.0;
  GigabytesPerSecond write_mixed_gbps = 0.0;
  std::string rationale;
};

class MixedWorkloadScheduler {
 public:
  explicit MixedWorkloadScheduler(const MemSystemModel* model)
      : runner_(model) {}

  /// Decides whether to serialize the two jobs. Fails on empty jobs or
  /// invalid thread counts.
  Result<ScheduleDecision> Decide(const MixedJobs& jobs) const;

 private:
  WorkloadRunner runner_;
};

}  // namespace pmemolap
