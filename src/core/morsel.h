// Morsel — the unit of work the work-stealing executor dispatches: a small
// contiguous tuple range (default ~100k tuples) tagged with the socket
// that stores it. Morsel-driven scheduling (Leis et al., "Morsel-Driven
// Parallelism") keeps workers NUMA-local as long as their own socket has
// work and lets idle workers steal across sockets instead of waiting at a
// static range barrier — exactly the elasticity the paper's pinned
// many-worker SSB execution needs when ranges are skewed or a worker is
// slowed down.
#pragma once

#include <cstdint>
#include <vector>

namespace pmemolap {

/// Default morsel granularity in tuples. Small enough that stealing can
/// rebalance tail latency, large enough that queue operations are noise.
inline constexpr uint64_t kDefaultMorselTuples = 100'000;

/// One unit of dispatch: tuples [begin, end) stored on `socket`.
struct Morsel {
  uint64_t begin = 0;
  uint64_t end = 0;
  /// Home socket (= run-queue index). Workers of this socket pop the
  /// morsel near-first; others may steal it.
  int socket = 0;

  uint64_t size() const { return end - begin; }
};

/// A query's full work list, split into per-socket run queues.
struct MorselPlan {
  /// One queue per socket (index = socket id). Queues may be empty.
  std::vector<std::vector<Morsel>> queues;

  uint64_t total_morsels() const {
    uint64_t n = 0;
    for (const auto& q : queues) n += q.size();
    return n;
  }
  uint64_t total_tuples() const {
    uint64_t n = 0;
    for (const auto& q : queues) {
      for (const Morsel& m : q) n += m.size();
    }
    return n;
  }
};

/// Slices [begin, end) into morsels of at most `morsel_tuples` tuples and
/// appends them to `plan`'s queue for `socket` (growing the queue vector
/// as needed). A zero `morsel_tuples` falls back to the default.
void AppendMorsels(uint64_t begin, uint64_t end, int socket,
                   uint64_t morsel_tuples, MorselPlan* plan);

/// Convenience: a single-socket plan over [0, num_tuples).
MorselPlan MorselsForRange(uint64_t num_tuples, uint64_t morsel_tuples);

/// Quarantine re-plan: moves every morsel queued on a socket with
/// healthy[socket] == false onto the least-loaded healthy queue, so
/// workers of a quarantined fault domain are not handed its morsels as
/// "near" work. Morsel::socket is preserved — it still names where the
/// data lives (slot mapping and result identity depend on it); only the
/// run-queue placement changes, which the executor treats like a steal.
/// Sockets beyond healthy.size() are considered healthy; when no socket
/// is healthy the plan is left untouched (degraded beats deadlocked).
/// Returns the number of morsels moved.
uint64_t ReassignQuarantinedQueues(MorselPlan* plan,
                                   const std::vector<bool>& healthy);

/// Optane's internal access granularity: the 256 B XPLine. A morsel
/// boundary that splits an XPLine makes BOTH adjacent morsels touch the
/// line, so the device reads it twice (the read amplification
/// device/optane_dimm models for sub-line accesses).
inline constexpr uint64_t kXPLineBytes = 256;

/// Governor actuator 2: snaps every interior boundary of a contiguous
/// same-queue morsel run up to the next 256 B XPLine boundary (in tuple
/// units: the smallest tuple count whose byte size is a multiple of
/// 256 B), coalescing morsels the snap empties. Run starts/ends are left
/// alone — a partial leading line is read once regardless. Ranges and
/// total tuples are preserved, so kernel results are unchanged; only the
/// split points move. A `bytes_per_tuple` of 0 leaves the plan unchanged.
void AlignMorselPlan(MorselPlan* plan, uint64_t bytes_per_tuple);

/// Generic tuple-quantum variant of AlignMorselPlan: snaps every interior
/// boundary of a contiguous same-queue run up to the next multiple of
/// `quantum_tuples`, coalescing morsels the snap empties. Encoded scans
/// align morsels to whole code frames (a frame's packed words are one
/// indivisible decode block, the way an XPLine is one indivisible device
/// read), where a byte width per tuple does not exist. A quantum of 0 or
/// 1 leaves the plan unchanged.
void AlignMorselPlanTuples(MorselPlan* plan, uint64_t quantum_tuples);

/// Interior boundaries of contiguous same-queue runs that do not fall on
/// a multiple of `quantum_tuples` — each one splits a code frame so both
/// neighboring morsels decode it. 0 after AlignMorselPlanTuples with the
/// same quantum.
uint64_t TornBoundaries(const MorselPlan& plan, uint64_t quantum_tuples);

/// Extra device bytes the plan's torn interior boundaries would cost: one
/// re-read XPLine (256 B) per contiguous same-queue boundary that is not
/// 256 B-aligned. 0 after AlignMorselPlan — the before/after evidence for
/// the shaping actuator.
uint64_t GranularityAmplifiedBytes(const MorselPlan& plan,
                                   uint64_t bytes_per_tuple);

}  // namespace pmemolap
