// DimensionReplicator — per-socket replication of small tables.
//
// §6.2: "Since the dimension tables are very small in comparison to the
// fact table, we replicate them on both sockets to avoid far random access,
// which would drastically decrease the bandwidth utilization."
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "core/pmem_space.h"

namespace pmemolap {

/// Holds one copy of a byte payload per socket; readers fetch the copy
/// near their own socket.
class ReplicatedTable {
 public:
  ReplicatedTable() = default;
  explicit ReplicatedTable(std::vector<Allocation> copies)
      : copies_(std::move(copies)) {}

  int num_copies() const { return static_cast<int>(copies_.size()); }

  /// The replica local to `socket`. Out-of-range sockets map onto an
  /// existing copy (mirroring ReplicatedIndex::Near); an empty table
  /// returns nullptr.
  const std::byte* LocalCopy(int socket) const {
    if (copies_.empty()) return nullptr;
    return copies_[CopyIndexFor(socket)].data();
  }
  uint64_t size() const { return copies_.empty() ? 0 : copies_[0].size(); }

  Allocation& copy(int index) { return copies_[static_cast<size_t>(index)]; }
  const Allocation& copy(int index) const {
    return copies_[static_cast<size_t>(index)];
  }

  /// Index of the first replica whose bytes [offset, offset + size) are
  /// free of poisoned lines, preferring `socket`'s local copy and failing
  /// over round-robin (best practice #4's "near first" with a health
  /// check). kDataLoss when every replica is poisoned over the range.
  Result<int> HealthyCopyIndex(int socket, uint64_t offset,
                               uint64_t size) const;

 private:
  size_t CopyIndexFor(int socket) const {
    int n = num_copies();
    return static_cast<size_t>(((socket % n) + n) % n);
  }

  std::vector<Allocation> copies_;
};

/// Copies payloads onto every socket's media.
class DimensionReplicator {
 public:
  explicit DimensionReplicator(PmemSpace* space) : space_(space) {}

  /// Replicates `bytes` of `data` onto every socket.
  Result<ReplicatedTable> Replicate(const std::byte* data, uint64_t bytes,
                                    Media media);

  /// Heuristic from the paper: replicate when the table is tiny relative
  /// to the fact data (dimensions are < 10% of lineorder in the SSB).
  static bool ShouldReplicate(uint64_t table_bytes, uint64_t fact_bytes) {
    return fact_bytes == 0 || table_bytes * 10 <= fact_bytes;
  }

 private:
  PmemSpace* space_;
};

}  // namespace pmemolap
