#include "core/advisor.h"

namespace pmemolap {

AccessPlan BestPracticesAdvisor::Plan(const WorkloadIntent& intent) const {
  AccessPlan plan;

  // BP2: use all physical cores for reads; avoid hyperthreaded sequential
  // reads (they pollute the shared L2 with the prefetcher enabled). Random
  // reads DO profit from hyperthreads (§5.2).
  plan.read_threads_per_socket = topology_.physical_cores_per_socket();
  plan.use_hyperthreads_for_reads = intent.random_access;
  plan.rationale.push_back(
      intent.random_access
          ? "random reads: all physical cores + hyperthreads (latency-bound)"
          : "sequential reads: all physical cores, no hyperthreads "
            "(L2 prefetcher pollution)");

  // BP2: 4-6 writers per socket saturate PMEM write bandwidth; more harm it.
  plan.write_threads_per_socket =
      intent.read_fraction < 1.0 ? kMaxWriteThreads : 0;
  if (plan.write_threads_per_socket > 0) {
    plan.rationale.push_back(
        "writes: 4-6 threads per socket saturate the write-combining "
        "buffers; more threads cause write amplification");
  }

  // BP3: explicit per-core pinning with full control, NUMA-region pinning
  // otherwise.
  plan.pinning = intent.full_system_control ? PinningPolicy::kCores
                                            : PinningPolicy::kNumaRegion;
  plan.rationale.push_back(
      intent.full_system_control
          ? "pin threads to individual cores (full system control)"
          : "pin threads to NUMA regions (no per-core control)");

  // BP4: stripe across sockets, near-only access. The paper stripes even
  // its 70 GB SSB fact table; only small working sets that a single
  // NUMA region's cores can scan at full device bandwidth stay local.
  plan.stripe_across_sockets =
      intent.working_set_bytes == 0 || intent.working_set_bytes >= 16 * kGiB;
  plan.near_socket_access_only = true;
  plan.rationale.push_back(
      "stripe data across all sockets; threads access only near PMEM "
      "(far access loses 5x cold / ~20% warm, and the UPI saturates)");

  // Dimension-style small tables: replicate instead of striping to avoid
  // far random access.
  plan.replicate_small_tables = intent.small_table_bytes > 0;
  if (plan.replicate_small_tables) {
    plan.rationale.push_back(
        "replicate small side tables per socket: far random access would "
        "collapse bandwidth");
  }

  // BP1/BP6: chunk sizes.
  plan.sequential_chunk_bytes = 4 * kKiB;
  plan.small_write_chunk_bytes = 256;
  plan.min_random_access_bytes = 256;
  plan.rationale.push_back(
      "4 KB chunks align with the DIMM interleave; 256 B matches Optane's "
      "internal granularity for small writes / random access");

  // BP5: serialize mixed phases when latency allows.
  plan.serialize_read_write_phases = intent.requires_concurrent_read_write &&
                                     !intent.latency_sensitive;
  if (plan.serialize_read_write_phases) {
    plan.rationale.push_back(
        "serialize read and write phases: mixed access drops both sides to "
        "~1/3 of their peaks");
  }

  // BP7.
  plan.use_devdax = true;
  plan.rationale.push_back(
      "devdax App Direct mode: 5-10% faster than fsdax (no page faults)");

  return plan;
}

}  // namespace pmemolap
