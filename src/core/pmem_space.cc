#include "core/pmem_space.h"

#include <algorithm>

namespace pmemolap {

void Allocation::PoisonLine(uint64_t line_index, int transient_clears) {
  if (poisoned_ == nullptr) {
    poisoned_ = std::make_unique<std::map<uint64_t, int>>();
  }
  (*poisoned_)[line_index] = transient_clears;
}

bool Allocation::ScrubLine(uint64_t line_index) {
  if (poisoned_ == nullptr) return false;
  return poisoned_->erase(line_index) > 0;
}

bool Allocation::RetryLine(uint64_t line_index) {
  if (poisoned_ == nullptr) return false;
  auto it = poisoned_->find(line_index);
  if (it == poisoned_->end()) return true;  // already clean
  if (it->second <= 0) return false;        // permanent
  if (--it->second == 0) {
    poisoned_->erase(it);
    return true;
  }
  return false;
}

bool Allocation::IsPoisoned(uint64_t offset, uint64_t size) const {
  if (poisoned_ == nullptr || poisoned_->empty() || size == 0) return false;
  uint64_t first = offset / kOptaneLineBytes;
  uint64_t last = (offset + size - 1) / kOptaneLineBytes;
  auto it = poisoned_->lower_bound(first);
  return it != poisoned_->end() && it->first <= last;
}

std::vector<uint64_t> Allocation::PoisonedLinesIn(uint64_t offset,
                                                  uint64_t size) const {
  std::vector<uint64_t> lines;
  if (poisoned_ == nullptr || size == 0) return lines;
  uint64_t first = offset / kOptaneLineBytes;
  uint64_t last = (offset + size - 1) / kOptaneLineBytes;
  for (auto it = poisoned_->lower_bound(first);
       it != poisoned_->end() && it->first <= last; ++it) {
    lines.push_back(it->first);
  }
  return lines;
}

std::vector<uint64_t> Allocation::PermanentPoisonedLines() const {
  std::vector<uint64_t> lines;
  if (poisoned_ == nullptr) return lines;
  for (const auto& [line, clears] : *poisoned_) {
    if (clears <= 0) lines.push_back(line);
  }
  return lines;
}

uint64_t StripedAllocation::total_size() const {
  uint64_t total = 0;
  for (const Allocation& stripe : stripes_) total += stripe.size();
  return total;
}

PmemSpace::PmemSpace(const SystemTopology& topology)
    : topology_(topology),
      pmem_used_(static_cast<size_t>(topology.sockets()), 0),
      dram_used_(static_cast<size_t>(topology.sockets()), 0) {}

uint64_t PmemSpace::CapacityOf(MemPlacement placement) const {
  switch (placement.media) {
    case Media::kPmem:
      return topology_.pmem_capacity_per_socket();
    case Media::kDram:
      return topology_.dram_capacity_per_socket();
    case Media::kSsd:
      return 0;
  }
  return 0;
}

uint64_t& PmemSpace::UsedOf(MemPlacement placement) {
  return placement.media == Media::kPmem
             ? pmem_used_[static_cast<size_t>(placement.socket)]
             : dram_used_[static_cast<size_t>(placement.socket)];
}

uint64_t PmemSpace::UsedOf(MemPlacement placement) const {
  return placement.media == Media::kPmem
             ? pmem_used_[static_cast<size_t>(placement.socket)]
             : dram_used_[static_cast<size_t>(placement.socket)];
}

uint64_t PmemSpace::AvailableBytes(MemPlacement placement) const {
  if (placement.socket < 0 || placement.socket >= topology_.sockets() ||
      placement.media == Media::kSsd) {
    return 0;
  }
  return CapacityOf(placement) - UsedOf(placement);
}

Result<Allocation> PmemSpace::Allocate(uint64_t size, MemPlacement placement) {
  if (placement.socket < 0 || placement.socket >= topology_.sockets()) {
    return Status::InvalidArgument("socket out of range");
  }
  if (placement.media == Media::kSsd) {
    return Status::InvalidArgument("PmemSpace manages PMEM and DRAM only");
  }
  if (size == 0) {
    return Status::InvalidArgument("allocation size must be > 0");
  }
  if (size > AvailableBytes(placement)) {
    return Status::ResourceExhausted("modeled capacity exceeded on socket " +
                                     std::to_string(placement.socket));
  }
  std::unique_ptr<std::byte[]> data(new (std::nothrow) std::byte[size]);
  if (data == nullptr) {
    return Status::ResourceExhausted("host allocation failed");
  }
  UsedOf(placement) += size;
  return FinishAllocation(Allocation(std::move(data), size, placement));
}

Result<Allocation> PmemSpace::FinishAllocation(Allocation allocation) {
  if (allocation_hook_) {
    Status status = allocation_hook_(&allocation);
    if (!status.ok()) {
      Release(allocation);
      return status;
    }
  }
  return allocation;
}

Result<Allocation> PmemSpace::AllocateAligned(uint64_t size,
                                              uint64_t alignment,
                                              MemPlacement placement) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    return Status::InvalidArgument("alignment must be a power of two");
  }
  if (placement.socket < 0 || placement.socket >= topology_.sockets() ||
      placement.media == Media::kSsd) {
    return Status::InvalidArgument("bad placement");
  }
  if (size == 0) {
    return Status::InvalidArgument("allocation size must be > 0");
  }
  uint64_t padded = size + alignment - 1;
  if (padded > AvailableBytes(placement)) {
    return Status::ResourceExhausted("modeled capacity exceeded on socket " +
                                     std::to_string(placement.socket));
  }
  std::unique_ptr<std::byte[]> data(new (std::nothrow) std::byte[padded]);
  if (data == nullptr) {
    return Status::ResourceExhausted("host allocation failed");
  }
  uint64_t base = reinterpret_cast<uint64_t>(data.get());
  uint64_t offset = (alignment - base % alignment) % alignment;
  UsedOf(placement) += padded;
  return FinishAllocation(
      Allocation(std::move(data), size, placement, offset, padded));
}

Result<StripedAllocation> PmemSpace::AllocateStriped(uint64_t size,
                                                     Media media) {
  if (size == 0) {
    return Status::InvalidArgument("allocation size must be > 0");
  }
  const int sockets = topology_.sockets();
  std::vector<Allocation> stripes;
  stripes.reserve(static_cast<size_t>(sockets));
  uint64_t per_socket = size / static_cast<uint64_t>(sockets);
  for (int socket = 0; socket < sockets; ++socket) {
    uint64_t this_size = socket + 1 == sockets
                             ? size - per_socket * (sockets - 1)
                             : per_socket;
    if (this_size == 0) this_size = 1;
    Result<Allocation> stripe =
        Allocate(this_size, MemPlacement{media, socket});
    if (!stripe.ok()) {
      for (const Allocation& done : stripes) Release(done);
      return stripe.status();
    }
    stripes.push_back(std::move(stripe.value()));
  }
  return StripedAllocation(std::move(stripes));
}

void PmemSpace::Release(const Allocation& allocation) {
  if (allocation.empty()) return;
  MemPlacement placement = allocation.placement();
  if (placement.socket < 0 || placement.socket >= topology_.sockets() ||
      placement.media == Media::kSsd) {
    return;
  }
  uint64_t& used = UsedOf(placement);
  used -= std::min(used, allocation.charged_bytes());
}

}  // namespace pmemolap
