#include "core/chunked_io.h"

#include <algorithm>

namespace pmemolap {

Result<uint64_t> ChunkedReader::ReadAll(int threads,
                                        ExecutionProfile* profile,
                                        const std::string& label) const {
  if (source_ == nullptr || source_->empty()) {
    return Status::InvalidArgument("nothing to read");
  }
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (chunk_bytes_ == 0) {
    return Status::InvalidArgument("chunk size must be > 0");
  }
  // FNV-1a over the whole region, walked chunk-wise per worker share.
  uint64_t hash = 1469598103934665603ULL;
  const std::byte* data = source_->data();
  const uint64_t size = source_->size();
  uint64_t per_worker = size / static_cast<uint64_t>(threads);
  for (int worker = 0; worker < threads; ++worker) {
    uint64_t begin = per_worker * static_cast<uint64_t>(worker);
    uint64_t end = worker + 1 == threads ? size : begin + per_worker;
    for (uint64_t chunk = begin; chunk < end; chunk += chunk_bytes_) {
      uint64_t chunk_end = std::min(end, chunk + chunk_bytes_);
      for (uint64_t i = chunk; i < chunk_end; ++i) {
        hash ^= static_cast<uint64_t>(data[i]);
        hash *= 1099511628211ULL;
      }
    }
  }
  if (profile != nullptr) {
    profile->RecordSequential(OpType::kRead, source_->placement().media,
                              source_->placement().socket, size,
                              chunk_bytes_, threads, label);
  }
  return hash;
}

Status ChunkedWriter::WriteAll(int threads, uint64_t seed,
                               ExecutionProfile* profile,
                               const std::string& label) const {
  if (target_ == nullptr || target_->empty()) {
    return Status::InvalidArgument("nothing to write");
  }
  if (threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  if (chunk_bytes_ == 0) {
    return Status::InvalidArgument("chunk size must be > 0");
  }
  std::byte* data = target_->data();
  const uint64_t size = target_->size();
  uint64_t per_worker = size / static_cast<uint64_t>(threads);
  for (int worker = 0; worker < threads; ++worker) {
    uint64_t begin = per_worker * static_cast<uint64_t>(worker);
    uint64_t end = worker + 1 == threads ? size : begin + per_worker;
    for (uint64_t i = begin; i < end; ++i) {
      data[i] = static_cast<std::byte>((seed + i) * 0x9E3779B97F4A7C15ULL >>
                                       56);
    }
  }
  if (profile != nullptr) {
    profile->RecordSequential(OpType::kWrite, target_->placement().media,
                              target_->placement().socket, size,
                              chunk_bytes_, threads, label);
  }
  return Status::OK();
}

}  // namespace pmemolap
