#include "core/runner.h"

namespace pmemolap {

const char* MultiSocketConfigName(MultiSocketConfig config) {
  switch (config) {
    case MultiSocketConfig::kOneNear:
      return "1 Near";
    case MultiSocketConfig::kOneFar:
      return "1 Far";
    case MultiSocketConfig::kTwoNear:
      return "2 Near";
    case MultiSocketConfig::kTwoFar:
      return "2 Far";
    case MultiSocketConfig::kNearFarShared:
      return "1 Near 1 Far";
  }
  return "Unknown";
}

Result<AccessClass> WorkloadRunner::MakeClass(OpType op, Pattern pattern,
                                              Media media,
                                              uint64_t access_size,
                                              int threads,
                                              const RunOptions& options) const {
  ThreadPlacer placer(model_->config().topology);
  // For far experiments the threads are pinned to a different socket than
  // the data: place them on their own socket, then classify near/far
  // relative to the data socket.
  int thread_socket =
      options.thread_socket >= 0 ? options.thread_socket : options.data_socket;
  PMEMOLAP_ASSIGN_OR_RETURN(
      ThreadPlacement placement,
      placer.Place(threads, options.pinning, thread_socket));
  if (options.pinning != PinningPolicy::kNone) {
    for (ThreadSlot& slot : placement.slots) {
      slot.near_data =
          SystemTopology::IsNear(slot.socket, options.data_socket);
    }
  }

  AccessClass klass;
  klass.op = op;
  klass.pattern = pattern;
  klass.media = media;
  klass.access_size = access_size;
  klass.placement = std::move(placement);
  klass.data_socket = options.data_socket;
  klass.region_bytes = options.region_bytes;
  klass.run_index = options.run_index;
  klass.instruction = options.instruction;
  return klass;
}

Result<BandwidthResult> WorkloadRunner::Run(OpType op, Pattern pattern,
                                            Media media, uint64_t access_size,
                                            int threads,
                                            const RunOptions& options) const {
  PMEMOLAP_ASSIGN_OR_RETURN(
      AccessClass klass,
      MakeClass(op, pattern, media, access_size, threads, options));
  WorkloadSpec spec;
  spec.classes.push_back(std::move(klass));
  spec.l2_prefetcher_enabled = options.l2_prefetcher_enabled;
  spec.devdax = options.devdax;
  return model_->EvaluateOnce(spec);
}

Result<GigabytesPerSecond> WorkloadRunner::Bandwidth(
    OpType op, Pattern pattern, Media media, uint64_t access_size,
    int threads, const RunOptions& options) const {
  PMEMOLAP_ASSIGN_OR_RETURN(
      BandwidthResult result,
      Run(op, pattern, media, access_size, threads, options));
  return result.total_gbps;
}

namespace {

/// Builds a class whose threads live on `thread_socket` and whose data
/// lives on `data_socket`.
Result<AccessClass> MakeCrossClass(const MemSystemModel& model, OpType op,
                                   Media media, uint64_t access_size,
                                   int threads, int thread_socket,
                                   int data_socket, int region_id,
                                   int run_index) {
  ThreadPlacer placer(model.config().topology);
  PMEMOLAP_ASSIGN_OR_RETURN(
      ThreadPlacement placement,
      placer.Place(threads, PinningPolicy::kNumaRegion, thread_socket));
  // kNumaRegion pins to the thread socket; recompute near/far relative to
  // where the data actually is.
  for (ThreadSlot& slot : placement.slots) {
    slot.near_data = SystemTopology::IsNear(slot.socket, data_socket);
  }
  AccessClass klass;
  klass.op = op;
  klass.pattern = Pattern::kSequentialIndividual;
  klass.media = media;
  klass.access_size = access_size;
  klass.placement = std::move(placement);
  klass.data_socket = data_socket;
  klass.region_id = region_id;
  klass.run_index = run_index;
  return klass;
}

}  // namespace

Result<BandwidthResult> WorkloadRunner::MultiSocket(OpType op, Media media,
                                                    MultiSocketConfig config,
                                                    int threads_per_socket,
                                                    uint64_t access_size,
                                                    int run_index) const {
  WorkloadSpec spec;
  auto add = [&](int thread_socket, int data_socket,
                 int region_id) -> Status {
    PMEMOLAP_ASSIGN_OR_RETURN(
        AccessClass klass,
        MakeCrossClass(*model_, op, media, access_size, threads_per_socket,
                       thread_socket, data_socket, region_id, run_index));
    spec.classes.push_back(std::move(klass));
    return Status::OK();
  };

  switch (config) {
    case MultiSocketConfig::kOneNear:
      PMEMOLAP_RETURN_NOT_OK(add(0, 0, 0));
      break;
    case MultiSocketConfig::kOneFar:
      PMEMOLAP_RETURN_NOT_OK(add(0, 1, 1));
      break;
    case MultiSocketConfig::kTwoNear:
      PMEMOLAP_RETURN_NOT_OK(add(0, 0, 0));
      PMEMOLAP_RETURN_NOT_OK(add(1, 1, 1));
      break;
    case MultiSocketConfig::kTwoFar:
      PMEMOLAP_RETURN_NOT_OK(add(0, 1, 1));
      PMEMOLAP_RETURN_NOT_OK(add(1, 0, 0));
      break;
    case MultiSocketConfig::kNearFarShared:
      // Both sockets access region 0 living on socket 0.
      PMEMOLAP_RETURN_NOT_OK(add(0, 0, 0));
      PMEMOLAP_RETURN_NOT_OK(add(1, 0, 0));
      break;
  }
  return model_->EvaluateOnce(spec);
}

Result<BandwidthResult> WorkloadRunner::Mixed(int write_threads,
                                              int read_threads, Media media,
                                              uint64_t access_size) const {
  WorkloadSpec spec;
  ThreadPlacer placer(model_->config().topology);

  PMEMOLAP_ASSIGN_OR_RETURN(
      ThreadPlacement write_placement,
      placer.Place(write_threads, PinningPolicy::kNumaRegion, 0));
  PMEMOLAP_ASSIGN_OR_RETURN(
      ThreadPlacement read_placement,
      placer.Place(read_threads, PinningPolicy::kNumaRegion, 0));

  AccessClass writer;
  writer.op = OpType::kWrite;
  writer.pattern = Pattern::kSequentialIndividual;
  writer.media = media;
  writer.access_size = access_size;
  writer.placement = std::move(write_placement);
  writer.data_socket = 0;
  writer.region_bytes = 40ULL * kGiB;
  writer.region_id = 0;
  writer.label = "write";

  AccessClass reader = writer;
  reader.op = OpType::kRead;
  reader.placement = std::move(read_placement);
  reader.region_bytes = 40ULL * kGiB;
  reader.region_id = 1;  // disjoint data on the same DIMMs
  reader.label = "read";

  spec.classes.push_back(std::move(writer));
  spec.classes.push_back(std::move(reader));
  return model_->EvaluateOnce(spec);
}

}  // namespace pmemolap
