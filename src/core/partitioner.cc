#include "core/partitioner.h"

namespace pmemolap {

Result<std::vector<SocketPartition>> Partitioner::Partition(
    uint64_t num_tuples, int workers_per_socket) const {
  if (workers_per_socket < 1) {
    return Status::InvalidArgument("workers_per_socket must be >= 1");
  }
  const int sockets = topology_.sockets();
  std::vector<SocketPartition> partitions;
  partitions.reserve(static_cast<size_t>(sockets));

  uint64_t per_socket = num_tuples / static_cast<uint64_t>(sockets);
  uint64_t socket_begin = 0;
  for (int socket = 0; socket < sockets; ++socket) {
    SocketPartition partition;
    partition.socket = socket;
    uint64_t socket_size =
        socket + 1 == sockets ? num_tuples - socket_begin : per_socket;
    partition.tuples = {socket_begin, socket_begin + socket_size};

    uint64_t per_worker = socket_size / static_cast<uint64_t>(workers_per_socket);
    uint64_t worker_begin = partition.tuples.begin;
    for (int worker = 0; worker < workers_per_socket; ++worker) {
      uint64_t worker_size = worker + 1 == workers_per_socket
                                 ? partition.tuples.end - worker_begin
                                 : per_worker;
      partition.worker_ranges.push_back(
          {worker_begin, worker_begin + worker_size});
      worker_begin += worker_size;
    }
    socket_begin += socket_size;
    partitions.push_back(std::move(partition));
  }
  return partitions;
}

Result<std::vector<SocketPartition>> Partitioner::PartitionWeighted(
    uint64_t num_tuples, int workers_per_socket,
    const std::vector<double>& chunk_weights) const {
  if (workers_per_socket < 1) {
    return Status::InvalidArgument("workers_per_socket must be >= 1");
  }
  if (chunk_weights.empty()) {
    return Status::InvalidArgument("chunk_weights must not be empty");
  }
  double total_weight = 0.0;
  for (double weight : chunk_weights) {
    if (weight < 0.0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
    total_weight += weight;
  }
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("total weight must be positive");
  }

  const int sockets = topology_.sockets();
  const uint64_t chunks = chunk_weights.size();
  const double chunk_tuples =
      static_cast<double>(num_tuples) / static_cast<double>(chunks);

  // Tuple index at which the cumulative weight reaches `target`
  // (linearly interpolated within a chunk).
  auto boundary_for = [&](double target) -> uint64_t {
    double acc = 0.0;
    for (uint64_t i = 0; i < chunks; ++i) {
      if (acc + chunk_weights[i] >= target) {
        double within = chunk_weights[i] > 0.0
                            ? (target - acc) / chunk_weights[i]
                            : 0.0;
        return static_cast<uint64_t>(
            (static_cast<double>(i) + within) * chunk_tuples);
      }
      acc += chunk_weights[i];
    }
    return num_tuples;
  };

  const int total_workers = sockets * workers_per_socket;
  std::vector<uint64_t> cuts;  // total_workers + 1 boundaries
  cuts.push_back(0);
  for (int worker = 1; worker < total_workers; ++worker) {
    double target = total_weight * static_cast<double>(worker) /
                    static_cast<double>(total_workers);
    uint64_t cut = boundary_for(target);
    cuts.push_back(std::max(cut, cuts.back()));
  }
  cuts.push_back(num_tuples);

  std::vector<SocketPartition> partitions;
  for (int socket = 0; socket < sockets; ++socket) {
    SocketPartition partition;
    partition.socket = socket;
    size_t first = static_cast<size_t>(socket) *
                   static_cast<size_t>(workers_per_socket);
    partition.tuples = {cuts[first], cuts[first + workers_per_socket]};
    for (int worker = 0; worker < workers_per_socket; ++worker) {
      partition.worker_ranges.push_back(
          {cuts[first + worker], cuts[first + worker + 1]});
    }
    partitions.push_back(std::move(partition));
  }
  return partitions;
}

MorselPlan Partitioner::ToMorsels(
    const std::vector<SocketPartition>& partitions, uint64_t morsel_tuples) {
  MorselPlan plan;
  for (const SocketPartition& partition : partitions) {
    AppendMorsels(partition.tuples.begin, partition.tuples.end,
                  partition.socket, morsel_tuples, &plan);
  }
  return plan;
}

int Partitioner::SocketOfTuple(uint64_t tuple, uint64_t num_tuples) const {
  const int sockets = topology_.sockets();
  uint64_t per_socket = num_tuples / static_cast<uint64_t>(sockets);
  if (per_socket == 0) return sockets - 1;
  int socket = static_cast<int>(tuple / per_socket);
  return socket >= sockets ? sockets - 1 : socket;
}

}  // namespace pmemolap
