// ExecutionProfile — records the memory traffic of a (functionally
// executed) operation so the timing layer can replay it through the
// MemSystemModel. This is the bridge between real query execution at small
// scale and the paper-scale runtime projections of Fig. 14 / Table 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "memsys/workload.h"
#include "topo/topology.h"

namespace pmemolap {

/// One homogeneous block of recorded traffic.
struct TrafficRecord {
  OpType op = OpType::kRead;
  Pattern pattern = Pattern::kSequentialIndividual;
  Media media = Media::kPmem;
  int data_socket = 0;
  /// Total useful bytes moved.
  uint64_t bytes = 0;
  /// Bytes per individual operation (chunk or probe size).
  uint64_t access_size = 4 * kKiB;
  /// Size of the region the accesses hit (drives DRAM channel spread).
  uint64_t region_bytes = 0;
  /// Threads that performed this traffic concurrently.
  int threads = 1;
  /// Socket the issuing threads run on; -1 means the data socket (near
  /// access). Far traffic sets this to the other socket.
  int worker_socket = -1;
  std::string label;
};

/// Accumulates traffic records; mergeable across operators.
class ExecutionProfile {
 public:
  void Record(TrafficRecord record) { records_.push_back(std::move(record)); }

  /// Convenience: sequential near-socket traffic.
  void RecordSequential(OpType op, Media media, int socket, uint64_t bytes,
                        uint64_t access_size, int threads,
                        const std::string& label);

  /// Convenience: random probes into a region.
  void RecordRandom(OpType op, Media media, int socket, uint64_t count,
                    uint64_t access_size, uint64_t region_bytes, int threads,
                    const std::string& label);

  void Merge(const ExecutionProfile& other);
  void Clear() { records_.clear(); }

  const std::vector<TrafficRecord>& records() const { return records_; }

  uint64_t TotalBytes(OpType op) const;

  /// Scales every record's byte and region counts by `factor` — used to
  /// project a profile captured at a small scale factor to the paper's
  /// sf 50 / sf 100.
  ExecutionProfile Scaled(double factor) const;

 private:
  std::vector<TrafficRecord> records_;
};

}  // namespace pmemolap
