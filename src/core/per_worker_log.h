// PerWorkerLog — durable append-only logging per the paper's small-write
// insight: "workloads requiring many small writes, e.g., appending to a
// log file, should be performed on individual memory locations, e.g., one
// log per worker" (insight #6), with 256 B entries matching Optane's
// internal granularity.
//
// Entries are self-validating: a 12 B header carries a CRC-32 over the
// sequence number, length, and payload, so Recover() can find the durable
// prefix of each log after a crash and truncate torn or unwritten tails —
// the recovery discipline a real PMEM log needs (stores below the entry
// size are not atomic).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/pmem_space.h"
#include "core/profile.h"

namespace pmemolap {

/// A set of independent append-only logs, one per worker, each in its own
/// memory region so the write-combining buffers never see interleaved
/// streams.
class PerWorkerLog {
 public:
  /// Fixed entry size; 256 B avoids read-modify-write on Optane.
  static constexpr uint64_t kEntryBytes = 256;
  /// Per-entry header: crc32 + sequence + length (+ padding to 12 B).
  static constexpr uint64_t kHeaderBytes = 12;
  /// Payload capacity of one entry.
  static constexpr uint64_t kMaxPayloadBytes = kEntryBytes - kHeaderBytes;

  /// Creates `workers` logs of `capacity_entries` each, striped round-robin
  /// across the sockets' PMEM.
  static Result<PerWorkerLog> Create(PmemSpace* space, int workers,
                                     uint64_t capacity_entries);

  int workers() const { return static_cast<int>(logs_.size()); }
  uint64_t capacity_entries() const { return capacity_entries_; }
  uint64_t entries(int worker) const {
    return counts_[static_cast<size_t>(worker)];
  }

  /// Appends one entry (payload truncated to kMaxPayloadBytes) to a
  /// worker's log.
  Status Append(int worker, const std::byte* payload, uint64_t payload_size,
                ExecutionProfile* profile = nullptr);

  /// Reads the payload of entry `index` into `out` (kMaxPayloadBytes or
  /// larger; zero-padded past the stored length). Returns the stored
  /// payload length.
  Result<uint64_t> ReadEntry(int worker, uint64_t index,
                             std::byte* out) const;

  /// Crash recovery: rescans every log from its persistent bytes and
  /// resets the entry counts to the longest valid prefix (entries with a
  /// correct CRC and consecutive sequence numbers). Returns the total
  /// number of entries recovered. Torn or unwritten tails are truncated.
  uint64_t Recover();

  /// Socket holding a worker's log.
  int SocketOf(int worker) const {
    return logs_[static_cast<size_t>(worker)].placement().socket;
  }

  /// Test hook: direct access to a log's raw bytes (to simulate torn
  /// writes / crashes).
  std::byte* RawBytes(int worker) {
    return logs_[static_cast<size_t>(worker)].data();
  }

 private:
  PerWorkerLog(std::vector<Allocation> logs, uint64_t capacity_entries)
      : logs_(std::move(logs)),
        counts_(logs_.size(), 0),
        capacity_entries_(capacity_entries) {}

  std::vector<Allocation> logs_;
  std::vector<uint64_t> counts_;
  uint64_t capacity_entries_ = 0;
};

}  // namespace pmemolap
