// ChunkedReader / ChunkedWriter — best-practice data movement primitives.
//
// Both iterate a memory region in chunks sized per the paper's insights
// (4 KB default, aligned to the DIMM interleave) and record their traffic
// into an ExecutionProfile so the timing layer can cost them. Reads
// checksum the data (so the compiler cannot elide the access and tests can
// verify the full region was visited); writes fill a deterministic pattern.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "core/pmem_space.h"
#include "core/profile.h"

namespace pmemolap {

/// Streams through an allocation in fixed-size chunks.
class ChunkedReader {
 public:
  /// `chunk_bytes` defaults to the 4 KB best-practice size.
  ChunkedReader(const Allocation* source, uint64_t chunk_bytes = 4 * kKiB)
      : source_(source), chunk_bytes_(chunk_bytes) {}

  /// Reads the whole region with `threads` logical workers (worker i takes
  /// the i-th contiguous share — individual access). Returns a checksum
  /// over all bytes and records the traffic.
  Result<uint64_t> ReadAll(int threads, ExecutionProfile* profile,
                           const std::string& label = "scan") const;

  uint64_t chunk_bytes() const { return chunk_bytes_; }

 private:
  const Allocation* source_;
  uint64_t chunk_bytes_;
};

/// Fills an allocation in fixed-size chunks.
class ChunkedWriter {
 public:
  ChunkedWriter(Allocation* target, uint64_t chunk_bytes = 4 * kKiB)
      : target_(target), chunk_bytes_(chunk_bytes) {}

  /// Writes a deterministic byte pattern derived from `seed` with
  /// `threads` logical workers in individual chunks; records the traffic.
  Status WriteAll(int threads, uint64_t seed, ExecutionProfile* profile,
                  const std::string& label = "ingest") const;

  uint64_t chunk_bytes() const { return chunk_bytes_; }

 private:
  Allocation* target_;
  uint64_t chunk_bytes_;
};

}  // namespace pmemolap
