#include "core/per_worker_log.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace pmemolap {

namespace {

struct EntryHeader {
  uint32_t crc = 0;
  uint32_t sequence = 0;
  uint16_t length = 0;
  uint16_t reserved = 0;
};
static_assert(sizeof(EntryHeader) == PerWorkerLog::kHeaderBytes);

uint32_t EntryCrc(uint32_t sequence, uint16_t length,
                  const std::byte* payload) {
  uint32_t crc = Crc32(&sequence, sizeof(sequence));
  crc = Crc32(&length, sizeof(length), crc);
  return Crc32(payload, length, crc);
}

}  // namespace

Result<PerWorkerLog> PerWorkerLog::Create(PmemSpace* space, int workers,
                                          uint64_t capacity_entries) {
  if (workers < 1 || capacity_entries == 0) {
    return Status::InvalidArgument("workers and capacity must be positive");
  }
  std::vector<Allocation> logs;
  logs.reserve(static_cast<size_t>(workers));
  const int sockets = space->topology().sockets();
  for (int worker = 0; worker < workers; ++worker) {
    Result<Allocation> log =
        space->Allocate(capacity_entries * kEntryBytes,
                        MemPlacement{Media::kPmem, worker % sockets});
    if (!log.ok()) {
      for (const Allocation& done : logs) space->Release(done);
      return log.status();
    }
    // Fresh PMEM regions are treated as zeroed: an all-zero header never
    // validates (crc of an empty entry is nonzero), so Recover() stops.
    std::memset(log->data(), 0, log->size());
    logs.push_back(std::move(log.value()));
  }
  return PerWorkerLog(std::move(logs), capacity_entries);
}

Status PerWorkerLog::Append(int worker, const std::byte* payload,
                            uint64_t payload_size,
                            ExecutionProfile* profile) {
  if (worker < 0 || worker >= workers()) {
    return Status::InvalidArgument("worker out of range");
  }
  uint64_t& count = counts_[static_cast<size_t>(worker)];
  if (count >= capacity_entries_) {
    return Status::ResourceExhausted("log full");
  }
  Allocation& log = logs_[static_cast<size_t>(worker)];
  std::byte* slot = log.data() + count * kEntryBytes;

  EntryHeader header;
  header.sequence = static_cast<uint32_t>(count);
  header.length =
      static_cast<uint16_t>(std::min<uint64_t>(payload_size,
                                               kMaxPayloadBytes));
  std::byte* body = slot + kHeaderBytes;
  std::memcpy(body, payload, header.length);
  if (header.length < kMaxPayloadBytes) {
    std::memset(body + header.length, 0, kMaxPayloadBytes - header.length);
  }
  header.crc = EntryCrc(header.sequence, header.length, body);
  // On real PMEM: write body, sfence, then the header word last — the CRC
  // makes the entry valid atomically.
  std::memcpy(slot, &header, sizeof(header));
  ++count;

  if (profile != nullptr) {
    profile->RecordSequential(OpType::kWrite, Media::kPmem,
                              log.placement().socket, kEntryBytes,
                              kEntryBytes, 1, "log-append");
  }
  return Status::OK();
}

Result<uint64_t> PerWorkerLog::ReadEntry(int worker, uint64_t index,
                                         std::byte* out) const {
  if (worker < 0 || worker >= workers()) {
    return Status::InvalidArgument("worker out of range");
  }
  if (index >= counts_[static_cast<size_t>(worker)]) {
    return Status::OutOfRange("entry index past end of log");
  }
  const Allocation& log = logs_[static_cast<size_t>(worker)];
  const std::byte* slot = log.data() + index * kEntryBytes;
  EntryHeader header;
  std::memcpy(&header, slot, sizeof(header));
  if (header.length > kMaxPayloadBytes) {
    return Status::Internal("corrupt entry length");
  }
  std::memcpy(out, slot + kHeaderBytes, kMaxPayloadBytes);
  return static_cast<uint64_t>(header.length);
}

uint64_t PerWorkerLog::Recover() {
  uint64_t total = 0;
  for (size_t worker = 0; worker < logs_.size(); ++worker) {
    const std::byte* base = logs_[worker].data();
    uint64_t valid = 0;
    for (uint64_t index = 0; index < capacity_entries_; ++index) {
      const std::byte* slot = base + index * kEntryBytes;
      EntryHeader header;
      std::memcpy(&header, slot, sizeof(header));
      if (header.length > kMaxPayloadBytes) break;
      if (header.sequence != static_cast<uint32_t>(index)) break;
      if (header.crc !=
          EntryCrc(header.sequence, header.length, slot + kHeaderBytes)) {
        break;
      }
      ++valid;
    }
    counts_[worker] = valid;
    total += valid;
  }
  return total;
}

}  // namespace pmemolap
