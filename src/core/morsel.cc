#include "core/morsel.h"

#include <cstddef>
#include <numeric>
#include <utility>

namespace pmemolap {
namespace {

/// Smallest tuple count whose byte size is a whole number of XPLines.
uint64_t AlignTuples(uint64_t bytes_per_tuple) {
  return kXPLineBytes / std::gcd(kXPLineBytes, bytes_per_tuple);
}

}  // namespace

void AppendMorsels(uint64_t begin, uint64_t end, int socket,
                   uint64_t morsel_tuples, MorselPlan* plan) {
  if (morsel_tuples == 0) morsel_tuples = kDefaultMorselTuples;
  if (plan->queues.size() <= static_cast<size_t>(socket)) {
    plan->queues.resize(static_cast<size_t>(socket) + 1);
  }
  auto& queue = plan->queues[static_cast<size_t>(socket)];
  for (uint64_t at = begin; at < end; at += morsel_tuples) {
    Morsel morsel;
    morsel.begin = at;
    morsel.end = at + morsel_tuples < end ? at + morsel_tuples : end;
    morsel.socket = socket;
    queue.push_back(morsel);
  }
}

MorselPlan MorselsForRange(uint64_t num_tuples, uint64_t morsel_tuples) {
  MorselPlan plan;
  plan.queues.resize(1);
  AppendMorsels(0, num_tuples, 0, morsel_tuples, &plan);
  return plan;
}

uint64_t ReassignQuarantinedQueues(MorselPlan* plan,
                                   const std::vector<bool>& healthy) {
  auto is_healthy = [&healthy](size_t socket) {
    return socket >= healthy.size() || healthy[socket];
  };
  bool any_healthy = false;
  for (size_t s = 0; s < plan->queues.size(); ++s) {
    if (is_healthy(s)) {
      any_healthy = true;
      break;
    }
  }
  if (!any_healthy) return 0;

  uint64_t moved = 0;
  for (size_t s = 0; s < plan->queues.size(); ++s) {
    if (is_healthy(s)) continue;
    auto& queue = plan->queues[s];
    for (Morsel& morsel : queue) {
      // Least-loaded healthy queue keeps the re-planned load balanced
      // instead of piling everything onto socket 0.
      size_t target = plan->queues.size();
      size_t target_size = 0;
      for (size_t q = 0; q < plan->queues.size(); ++q) {
        if (q == s || !is_healthy(q)) continue;
        if (target == plan->queues.size() ||
            plan->queues[q].size() < target_size) {
          target = q;
          target_size = plan->queues[q].size();
        }
      }
      // any_healthy guarantees a target exists (s itself is unhealthy).
      plan->queues[target].push_back(morsel);
      ++moved;
    }
    queue.clear();
  }
  return moved;
}

void AlignMorselPlan(MorselPlan* plan, uint64_t bytes_per_tuple) {
  if (bytes_per_tuple == 0) return;
  AlignMorselPlanTuples(plan, AlignTuples(bytes_per_tuple));
}

void AlignMorselPlanTuples(MorselPlan* plan, uint64_t quantum_tuples) {
  const uint64_t align = quantum_tuples;
  if (align <= 1) return;  // every boundary is already aligned

  for (auto& queue : plan->queues) {
    std::vector<Morsel> shaped;
    shaped.reserve(queue.size());
    for (Morsel morsel : queue) {
      if (!shaped.empty() && shaped.back().end == morsel.begin &&
          shaped.back().socket == morsel.socket &&
          morsel.begin % align != 0) {
        uint64_t snapped = (morsel.begin / align + 1) * align;
        if (snapped >= morsel.end) {
          // The snap would empty the morsel: coalesce it into its
          // predecessor instead of leaving a tiny torn remainder.
          shaped.back().end = morsel.end;
          continue;
        }
        shaped.back().end = snapped;
        morsel.begin = snapped;
      }
      shaped.push_back(morsel);
    }
    queue = std::move(shaped);
  }
}

uint64_t TornBoundaries(const MorselPlan& plan, uint64_t quantum_tuples) {
  const uint64_t align = quantum_tuples;
  if (align <= 1) return 0;

  uint64_t torn = 0;
  for (const auto& queue : plan.queues) {
    for (size_t i = 1; i < queue.size(); ++i) {
      const Morsel& prev = queue[i - 1];
      const Morsel& cur = queue[i];
      if (prev.end == cur.begin && prev.socket == cur.socket &&
          cur.begin % align != 0) {
        ++torn;
      }
    }
  }
  return torn;
}

uint64_t GranularityAmplifiedBytes(const MorselPlan& plan,
                                   uint64_t bytes_per_tuple) {
  if (bytes_per_tuple == 0) return 0;
  // Both sides re-read the torn 256 B line.
  return TornBoundaries(plan, AlignTuples(bytes_per_tuple)) * kXPLineBytes;
}

}  // namespace pmemolap
