#include "core/morsel.h"

#include <cstddef>

namespace pmemolap {

void AppendMorsels(uint64_t begin, uint64_t end, int socket,
                   uint64_t morsel_tuples, MorselPlan* plan) {
  if (morsel_tuples == 0) morsel_tuples = kDefaultMorselTuples;
  if (plan->queues.size() <= static_cast<size_t>(socket)) {
    plan->queues.resize(static_cast<size_t>(socket) + 1);
  }
  auto& queue = plan->queues[static_cast<size_t>(socket)];
  for (uint64_t at = begin; at < end; at += morsel_tuples) {
    Morsel morsel;
    morsel.begin = at;
    morsel.end = at + morsel_tuples < end ? at + morsel_tuples : end;
    morsel.socket = socket;
    queue.push_back(morsel);
  }
}

MorselPlan MorselsForRange(uint64_t num_tuples, uint64_t morsel_tuples) {
  MorselPlan plan;
  plan.queues.resize(1);
  AppendMorsels(0, num_tuples, 0, morsel_tuples, &plan);
  return plan;
}

}  // namespace pmemolap
