// BandwidthGovernor — a closed-loop controller that turns the paper's
// static best practices (§7) into runtime policy. Each scheduling quantum
// it ingests one TelemetrySample and drives three actuators:
//
//   1. Concurrency: readers scale up to the modeled bandwidth knee
//      (Fig. 3: sequential PMEM reads saturate the socket at ~10 threads),
//      writers clamp to the paper's 4-6 per socket (Fig. 7/8, BP2).
//   2. Morsel shaping: morsel byte ranges align to the 256 B XPLine so the
//      device model's read amplification on torn lines disappears (§3.1).
//   3. DRAM staging: hot randomly-probed structures are promoted to DRAM
//      under a budget (HybridPlacer::PlanStaging), evicted when the
//      benefit fades — the runtime form of the hybrid placement plan.
//
// All decisions apply hysteresis (a new target must persist for N
// consecutive quanta before actuation) so the controller converges
// deterministically instead of oscillating: same telemetry trace in,
// byte-identical actuator log out.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/hybrid.h"
#include "governor/telemetry.h"
#include "memsys/mem_system.h"

namespace pmemolap {
namespace governor {

struct GovernorConfig {
  /// Actuator switches (for ablation; all on by default).
  bool adapt_concurrency = true;
  bool shape_morsels = true;
  bool stage_structures = true;
  /// Paper BP2: limit the number of write threads to 4-6 per socket.
  int min_write_threads = 4;
  int max_write_threads = 6;
  /// Knee = smallest thread count within (1 - tolerance) of the sweep's
  /// plateau bandwidth.
  double knee_tolerance = 0.02;
  /// Consecutive quanta a changed target must persist before actuation.
  int hysteresis_quanta = 2;
  /// Write-side demand occupancy above which readers are clamped to the
  /// knee (pure-read workloads stay uncapped: more readers only help).
  double write_pressure_floor = 0.05;
  /// DRAM budget for staged structures; 0 = the platform's per-socket
  /// DRAM capacity.
  uint64_t dram_staging_budget_bytes = 0;
  /// Minimum modeled seconds per quantum a candidate must save to be
  /// worth staging.
  double staging_min_benefit_seconds = 1e-6;
};

/// The actuator targets currently in force. Snapshot via decision().
struct GovernorDecision {
  /// Observe() quanta that produced this decision.
  int quantum = 0;
  /// Per-socket cap on concurrently popping workers; 0 = uncapped.
  std::vector<int> read_workers;
  /// Writer-thread clamp per socket (paper BP2).
  int write_threads = 6;
  bool shape_morsels = true;
  /// Names of structures currently staged in DRAM, sorted.
  std::vector<std::string> staged;
  uint64_t staged_bytes = 0;

  bool IsStaged(const std::string& name) const;
};

class BandwidthGovernor {
 public:
  explicit BandwidthGovernor(const MemSystemModel* model,
                             GovernorConfig config = GovernorConfig());

  const GovernorConfig& config() const { return config_; }

  /// A concurrency knee: the smallest per-socket thread count whose
  /// modeled bandwidth reaches the sweep's plateau (within tolerance).
  struct Knee {
    int threads = 1;
    double gbps = 0.0;
  };
  /// Fig. 3-shaped sweep: sequential PMEM reads on `socket`, optionally
  /// under a DIMM throttle factor (a uniform throttle scales the sweep,
  /// so the knee's bandwidth drops while its thread count holds).
  Knee ReadKnee(int socket, double service_factor = 1.0) const;
  /// Fig. 7-shaped sweep: sequential PMEM writes (knee ~4 threads).
  Knee WriteKnee(int socket, double service_factor = 1.0) const;

  /// One scheduling quantum: ingest a sample, update hysteresis state,
  /// commit actuator targets that persisted long enough.
  void Observe(const TelemetrySample& sample);

  /// Snapshot of the current actuator targets.
  GovernorDecision decision() const;

  /// Worst-case platform service factor seen in the last sample (DIMM
  /// throttle x UPI capacity), in [0,1]; 1.0 before any sample. Shared
  /// with admission control via qos::DegradationEstimate.
  double ThrottleEstimate() const;

  /// Deterministic, append-only record of every quantum and actuation.
  std::vector<std::string> actuator_log() const;

  int quanta_observed() const;

 private:
  Knee FindKnee(OpType op, int socket, double service_factor) const;

  /// Maps a traffic label to a stageable structure name ("probe-part" ->
  /// "part", "aggregate"/"intermediate" -> "intermediates"); empty if the
  /// class is not a staging candidate.
  static std::string StageName(const std::string& label);

  /// Computes this quantum's staging target set from the sample.
  std::vector<StagingCandidate> StageTargets(const TelemetrySample& sample,
                                             std::vector<std::string>* names)
      const;

  const MemSystemModel* model_;
  GovernorConfig config_;

  mutable std::mutex mutex_;
  GovernorDecision decision_;
  double throttle_estimate_ = 1.0;
  int quanta_ = 0;
  // Hysteresis state: the pending target and how many consecutive quanta
  // it has been requested.
  std::vector<int> pending_read_workers_;
  int read_streak_ = 0;
  int pending_write_threads_ = 0;
  int write_streak_ = 0;
  std::vector<std::string> pending_staged_;
  uint64_t pending_staged_bytes_ = 0;
  int stage_streak_ = 0;
  std::vector<std::string> log_;
};

}  // namespace governor
}  // namespace pmemolap
