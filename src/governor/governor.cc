#include "governor/governor.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "topo/pinning.h"

namespace pmemolap {
namespace governor {
namespace {

std::string JoinInts(const std::vector<int>& values) {
  if (values.empty()) return "-";
  std::string joined;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) joined += ',';
    joined += std::to_string(values[i]);
  }
  return joined;
}

std::string JoinNames(const std::vector<std::string>& names) {
  if (names.empty()) return "-";
  std::string joined;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) joined += '+';
    joined += names[i];
  }
  return joined;
}

}  // namespace

bool GovernorDecision::IsStaged(const std::string& name) const {
  return std::find(staged.begin(), staged.end(), name) != staged.end();
}

BandwidthGovernor::BandwidthGovernor(const MemSystemModel* model,
                                     GovernorConfig config)
    : model_(model), config_(config) {
  decision_.write_threads = config_.max_write_threads;
  decision_.shape_morsels = config_.shape_morsels;
  pending_write_threads_ = decision_.write_threads;
}

BandwidthGovernor::Knee BandwidthGovernor::FindKnee(
    OpType op, int socket, double service_factor) const {
  MemSystemConfig config = model_->config();
  int sockets = std::max(config.topology.sockets(), 1);
  socket = std::min(std::max(socket, 0), sockets - 1);
  config.pmem_service_factor.assign(static_cast<size_t>(sockets), 1.0);
  config.pmem_service_factor[static_cast<size_t>(socket)] =
      std::min(std::max(service_factor, 0.0), 1.0);
  MemSystemModel local(config);

  ThreadPlacer placer(config.topology);
  int max_threads = std::max(config.topology.logical_cores_per_socket(), 1);
  std::vector<double> sweep(static_cast<size_t>(max_threads) + 1, 0.0);
  double peak = 0.0;
  for (int threads = 1; threads <= max_threads; ++threads) {
    Result<ThreadPlacement> placement =
        placer.Place(threads, PinningPolicy::kCores, socket);
    if (!placement.ok()) continue;
    AccessClass klass;
    klass.op = op;
    klass.pattern = Pattern::kSequentialIndividual;
    klass.media = Media::kPmem;
    klass.access_size = 4 * kKiB;
    klass.placement = std::move(placement.value());
    klass.data_socket = socket;
    klass.run_index = 2;
    WorkloadSpec spec;
    spec.classes.push_back(std::move(klass));
    BandwidthResult result = local.EvaluateOnce(spec);
    sweep[static_cast<size_t>(threads)] = result.total_gbps;
    peak = std::max(peak, result.total_gbps);
  }

  Knee knee;
  for (int threads = 1; threads <= max_threads; ++threads) {
    double gbps = sweep[static_cast<size_t>(threads)];
    if (peak > 0.0 && gbps >= (1.0 - config_.knee_tolerance) * peak) {
      knee.threads = threads;
      knee.gbps = gbps;
      return knee;
    }
  }
  knee.threads = max_threads;
  knee.gbps = peak;
  return knee;
}

BandwidthGovernor::Knee BandwidthGovernor::ReadKnee(
    int socket, double service_factor) const {
  return FindKnee(OpType::kRead, socket, service_factor);
}

BandwidthGovernor::Knee BandwidthGovernor::WriteKnee(
    int socket, double service_factor) const {
  return FindKnee(OpType::kWrite, socket, service_factor);
}

std::string BandwidthGovernor::StageName(const std::string& label) {
  constexpr const char kProbePrefix[] = "probe-";
  if (label.rfind(kProbePrefix, 0) == 0) {
    return label.substr(sizeof(kProbePrefix) - 1);
  }
  if (label == "aggregate" || label == "intermediate") return "intermediates";
  return std::string();
}

std::vector<StagingCandidate> BandwidthGovernor::StageTargets(
    const TelemetrySample& sample, std::vector<std::string>* names) const {
  names->clear();
  if (!config_.stage_structures) return {};

  // Merge per-class benefits into one candidate per structure name.
  std::map<std::string, StagingCandidate> merged;
  for (const ClassTelemetry& klass : sample.classes) {
    if (klass.background) continue;
    if (klass.gbps <= 0.0 || klass.bytes == 0) continue;
    std::string name = StageName(klass.label);
    if (name.empty()) continue;
    // A PMEM class is a fresh candidate; a DRAM class is only interesting
    // if it is DRAM *because we staged it* — then the benefit is judged
    // against its counterfactual PMEM rate, so the act of staging does
    // not erase the evidence that staging pays (no stage/evict flapping).
    const bool already_staged =
        klass.media == Media::kDram && decision_.IsStaged(name);
    if (klass.media != Media::kPmem && !already_staged) continue;

    // The same class shape on the other media: the rate the structure
    // would see staged in DRAM (candidates) or back on PMEM (retention).
    ThreadPlacer placer(model_->config().topology);
    Result<ThreadPlacement> placement = placer.Place(
        std::max(klass.threads, 1), PinningPolicy::kCores, klass.socket);
    if (!placement.ok()) continue;
    AccessClass other;
    other.op = klass.op;
    other.pattern = klass.pattern;
    other.media = already_staged ? Media::kPmem : Media::kDram;
    other.access_size = std::max<uint64_t>(klass.access_size, 64);
    other.placement = std::move(placement.value());
    other.data_socket = klass.socket;
    other.region_bytes = klass.region_bytes;
    other.run_index = 2;
    WorkloadSpec spec;
    spec.classes.push_back(std::move(other));
    double other_gbps = model_->EvaluateOnce(spec).total_gbps;
    double pmem_gbps = already_staged ? other_gbps : klass.gbps;
    double dram_gbps = already_staged ? klass.gbps : other_gbps;
    if (dram_gbps <= pmem_gbps) continue;

    double benefit = static_cast<double>(klass.bytes) / 1e9 *
                     (1.0 / pmem_gbps - 1.0 / dram_gbps);
    StagingCandidate& candidate = merged[name];
    candidate.name = name;
    candidate.bytes = std::max(candidate.bytes, klass.region_bytes);
    candidate.benefit_seconds += benefit;
  }

  std::vector<StagingCandidate> candidates;
  for (auto& [name, candidate] : merged) {
    (void)name;
    if (candidate.benefit_seconds < config_.staging_min_benefit_seconds) {
      continue;
    }
    candidates.push_back(candidate);
  }
  HybridPlacer placer(model_->config().topology);
  StagingPlan plan =
      placer.PlanStaging(candidates, config_.dram_staging_budget_bytes);
  for (const StagingCandidate& candidate : plan.staged) {
    names->push_back(candidate.name);
  }
  std::sort(names->begin(), names->end());
  return plan.staged;
}

void BandwidthGovernor::Observe(const TelemetrySample& sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++quanta_;
  decision_.quantum = quanta_;

  double worst = sample.upi_capacity_factor;
  for (const SocketTelemetry& socket : sample.sockets) {
    worst = std::min(worst, socket.dimm_service_factor);
  }
  throttle_estimate_ = std::min(1.0, std::max(0.0, worst));

  size_t sockets = sample.sockets.size();
  if (decision_.read_workers.size() != sockets) {
    decision_.read_workers.assign(sockets, 0);
    pending_read_workers_ = decision_.read_workers;
    read_streak_ = 0;
  }

  // Targets for this quantum.
  int write_target = decision_.write_threads;
  std::vector<int> read_target(sockets, 0);
  if (config_.adapt_concurrency) {
    double min_factor = 1.0;
    for (const SocketTelemetry& socket : sample.sockets) {
      min_factor = std::min(min_factor, socket.dimm_service_factor);
    }
    Knee write_knee = WriteKnee(0, min_factor);
    write_target = std::min(std::max(write_knee.threads,
                                     config_.min_write_threads),
                            config_.max_write_threads);
    for (size_t s = 0; s < sockets; ++s) {
      if (sample.sockets[s].write_occupancy > config_.write_pressure_floor) {
        read_target[s] =
            ReadKnee(static_cast<int>(s),
                     sample.sockets[s].dimm_service_factor)
                .threads;
      }
    }
  } else {
    read_target = decision_.read_workers;
  }
  std::vector<std::string> stage_names;
  std::vector<StagingCandidate> stage_candidates =
      StageTargets(sample, &stage_names);
  uint64_t stage_bytes = 0;
  for (const StagingCandidate& candidate : stage_candidates) {
    stage_bytes += candidate.bytes;
  }

  // Hysteresis: a changed target actuates only after persisting for N
  // consecutive quanta; targets matching the current decision reset the
  // streak.
  int needed = std::max(config_.hysteresis_quanta, 1);
  char line[192];

  if (write_target == decision_.write_threads) {
    write_streak_ = 0;
  } else {
    if (write_target != pending_write_threads_) {
      pending_write_threads_ = write_target;
      write_streak_ = 1;
    } else {
      ++write_streak_;
    }
    if (write_streak_ >= needed) {
      std::snprintf(line, sizeof(line), "q=%d commit writers %d->%d", quanta_,
                    decision_.write_threads, write_target);
      log_.push_back(line);
      decision_.write_threads = write_target;
      write_streak_ = 0;
    }
  }

  if (read_target == decision_.read_workers) {
    read_streak_ = 0;
  } else {
    if (read_target != pending_read_workers_) {
      pending_read_workers_ = read_target;
      read_streak_ = 1;
    } else {
      ++read_streak_;
    }
    if (read_streak_ >= needed) {
      std::snprintf(line, sizeof(line), "q=%d commit readers %s->%s", quanta_,
                    JoinInts(decision_.read_workers).c_str(),
                    JoinInts(read_target).c_str());
      log_.push_back(line);
      decision_.read_workers = read_target;
      read_streak_ = 0;
    }
  }

  if (stage_names == decision_.staged) {
    stage_streak_ = 0;
    decision_.staged_bytes = stage_bytes;
  } else {
    if (stage_names != pending_staged_) {
      pending_staged_ = stage_names;
      pending_staged_bytes_ = stage_bytes;
      stage_streak_ = 1;
    } else {
      pending_staged_bytes_ = stage_bytes;
      ++stage_streak_;
    }
    if (stage_streak_ >= needed) {
      std::snprintf(line, sizeof(line), "q=%d commit staged %s->%s", quanta_,
                    JoinNames(decision_.staged).c_str(),
                    JoinNames(stage_names).c_str());
      log_.push_back(line);
      decision_.staged = stage_names;
      decision_.staged_bytes = pending_staged_bytes_;
      stage_streak_ = 0;
    }
  }

  std::snprintf(line, sizeof(line),
                "q=%d throttle=%.3f writers=%d readers=%s staged=%s shape=%d",
                quanta_, throttle_estimate_, decision_.write_threads,
                JoinInts(decision_.read_workers).c_str(),
                JoinNames(decision_.staged).c_str(),
                decision_.shape_morsels ? 1 : 0);
  log_.push_back(line);
}

GovernorDecision BandwidthGovernor::decision() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decision_;
}

double BandwidthGovernor::ThrottleEstimate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return throttle_estimate_;
}

std::vector<std::string> BandwidthGovernor::actuator_log() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_;
}

int BandwidthGovernor::quanta_observed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quanta_;
}

}  // namespace governor
}  // namespace pmemolap
