// Telemetry sampling for the bandwidth governor.
//
// One TelemetrySample is the governor's view of a scheduling quantum: the
// query's recorded traffic and any standing background traffic (e.g. an
// ingest load) evaluated JOINTLY through the MemSystemModel, reduced to
// per-socket RPQ/WPQ demand occupancies, per-class effective bandwidths,
// UPI utilization, and the fault layer's per-DIMM throttle state. It is
// the modeled stand-in for the iMC performance counters a real governor
// would sample.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/profile.h"
#include "fault/fault_injector.h"
#include "memsys/mem_system.h"

namespace pmemolap {
namespace governor {

/// Joint-model outcome for one recorded traffic class.
struct ClassTelemetry {
  std::string label;
  OpType op = OpType::kRead;
  Pattern pattern = Pattern::kSequentialIndividual;
  Media media = Media::kPmem;
  /// Socket whose DIMMs serve the class.
  int socket = 0;
  int threads = 1;
  uint64_t bytes = 0;
  uint64_t access_size = 64;
  uint64_t region_bytes = 0;
  /// Effective bandwidth under the joint (contended) evaluation.
  double gbps = 0.0;
  double issue_bound_gbps = 0.0;
  double device_bound_gbps = 0.0;
  /// True for standing background traffic (not part of the query).
  bool background = false;
};

/// Modeled read/write queue pressure of one socket's PMEM pool.
struct SocketTelemetry {
  /// Demand occupancy (min(issue, device) / device bound, summed over the
  /// socket's PMEM classes). > 1 means the pool is oversubscribed.
  double read_occupancy = 0.0;
  double write_occupancy = 0.0;
  /// Jointly resolved bandwidth actually served, by direction.
  double read_gbps = 0.0;
  double write_gbps = 0.0;
  /// Fault-injected DIMM throttle state (1.0 = healthy).
  double dimm_service_factor = 1.0;
};

struct TelemetrySample {
  std::vector<SocketTelemetry> sockets;
  std::vector<ClassTelemetry> classes;
  double upi_utilization = 0.0;
  double upi_capacity_factor = 1.0;
};

/// Evaluates `query` and `background` records jointly through `model` and
/// reduces the result to a TelemetrySample. Distinct records are placed in
/// disjoint regions (the sample measures pool contention, not the paper's
/// config-(v) shared-region collapse). `injector` supplies the throttle
/// state and may be null (healthy platform).
TelemetrySample BuildTelemetry(const MemSystemModel& model,
                               const std::vector<TrafficRecord>& query,
                               const std::vector<TrafficRecord>& background,
                               PinningPolicy pinning,
                               const FaultInjector* injector = nullptr);

}  // namespace governor
}  // namespace pmemolap
