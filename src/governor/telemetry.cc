#include "governor/telemetry.h"

#include <algorithm>
#include <utility>

#include "topo/pinning.h"

namespace pmemolap {
namespace governor {
namespace {

/// Builds the model class for a record, mirroring the timing layer's
/// construction so telemetry sees the same classes the timer costs.
Result<AccessClass> BuildClass(const MemSystemModel& model,
                               const TrafficRecord& record,
                               PinningPolicy pinning) {
  int worker_socket =
      record.worker_socket >= 0 ? record.worker_socket : record.data_socket;
  ThreadPlacer placer(model.config().topology);
  PMEMOLAP_ASSIGN_OR_RETURN(
      ThreadPlacement placement,
      placer.Place(std::max(record.threads, 1), pinning, worker_socket));
  if (pinning != PinningPolicy::kNone) {
    for (ThreadSlot& slot : placement.slots) {
      slot.near_data = SystemTopology::IsNear(slot.socket, record.data_socket);
    }
  }
  AccessClass klass;
  klass.op = record.op;
  klass.pattern = record.pattern;
  klass.media = record.media;
  klass.access_size = std::max<uint64_t>(record.access_size, 64);
  klass.placement = std::move(placement);
  klass.data_socket = record.data_socket;
  klass.region_bytes = record.region_bytes;
  klass.run_index = 2;  // steady state: the directory is warm
  klass.label = record.label;
  return klass;
}

}  // namespace

TelemetrySample BuildTelemetry(const MemSystemModel& model,
                               const std::vector<TrafficRecord>& query,
                               const std::vector<TrafficRecord>& background,
                               PinningPolicy pinning,
                               const FaultInjector* injector) {
  TelemetrySample sample;
  int sockets = model.config().topology.sockets();
  sample.sockets.resize(static_cast<size_t>(std::max(sockets, 1)));
  for (int s = 0; s < sockets; ++s) {
    sample.sockets[static_cast<size_t>(s)].dimm_service_factor =
        injector != nullptr ? injector->DimmServiceFactor(s) : 1.0;
  }
  sample.upi_capacity_factor =
      injector != nullptr ? injector->UpiCapacityFactor() : 1.0;

  struct Origin {
    const TrafficRecord* record;
    bool background;
  };
  WorkloadSpec spec;
  std::vector<Origin> origins;
  int next_region = 0;
  auto add = [&](const std::vector<TrafficRecord>& records, bool is_bg) {
    for (const TrafficRecord& record : records) {
      if (record.bytes == 0) continue;
      Result<AccessClass> klass = BuildClass(model, record, pinning);
      if (!klass.ok()) continue;
      klass->region_id = (is_bg ? 2000 : 1000) + next_region++;
      spec.classes.push_back(std::move(klass.value()));
      origins.push_back({&record, is_bg});
    }
  };
  add(query, false);
  add(background, true);
  if (spec.classes.empty()) return sample;

  BandwidthResult result = model.EvaluateOnce(spec);
  sample.upi_utilization = result.upi_utilization;
  for (size_t i = 0; i < origins.size(); ++i) {
    const TrafficRecord& record = *origins[i].record;
    const ClassBandwidth& diag = result.per_class[i];

    ClassTelemetry telemetry;
    telemetry.label = record.label;
    telemetry.op = record.op;
    telemetry.pattern = record.pattern;
    telemetry.media = record.media;
    telemetry.socket = record.data_socket;
    telemetry.threads = record.threads;
    telemetry.bytes = record.bytes;
    telemetry.access_size = record.access_size;
    telemetry.region_bytes = record.region_bytes;
    telemetry.gbps = diag.gbps;
    telemetry.issue_bound_gbps = diag.issue_bound_gbps;
    telemetry.device_bound_gbps = diag.device_bound_gbps;
    telemetry.background = origins[i].background;
    sample.classes.push_back(std::move(telemetry));

    if (record.media != Media::kPmem) continue;
    if (record.data_socket < 0 || record.data_socket >= sockets) continue;
    SocketTelemetry& socket =
        sample.sockets[static_cast<size_t>(record.data_socket)];
    double demand = std::min(diag.issue_bound_gbps, diag.device_bound_gbps);
    double occupancy = diag.device_bound_gbps > 0.0
                           ? demand / diag.device_bound_gbps
                           : 0.0;
    if (record.op == OpType::kRead) {
      socket.read_occupancy += occupancy;
      socket.read_gbps += diag.gbps;
    } else {
      socket.write_occupancy += occupancy;
      socket.write_gbps += diag.gbps;
    }
  }
  return sample;
}

}  // namespace governor
}  // namespace pmemolap
