#include "topo/interleave.h"

#include <algorithm>
#include <cmath>

namespace pmemolap {

Result<InterleaveMap> InterleaveMap::Make(uint64_t stripe_bytes,
                                          int num_dimms) {
  if (stripe_bytes == 0 || (stripe_bytes & (stripe_bytes - 1)) != 0) {
    return Status::InvalidArgument("stripe_bytes must be a power of two");
  }
  if (num_dimms < 1) {
    return Status::InvalidArgument("num_dimms must be >= 1");
  }
  return InterleaveMap(stripe_bytes, num_dimms);
}

std::vector<uint64_t> InterleaveMap::BytesPerDimm(uint64_t offset,
                                                  uint64_t size) const {
  std::vector<uint64_t> per_dimm(static_cast<size_t>(num_dimms_), 0);
  uint64_t pos = offset;
  uint64_t remaining = size;
  while (remaining > 0) {
    uint64_t stripe_off = pos % stripe_bytes_;
    uint64_t in_stripe = std::min(remaining, stripe_bytes_ - stripe_off);
    per_dimm[static_cast<size_t>(DimmForOffset(pos))] += in_stripe;
    pos += in_stripe;
    remaining -= in_stripe;
  }
  return per_dimm;
}

int InterleaveMap::DimmsTouched(uint64_t offset, uint64_t size) const {
  if (size == 0) return 0;
  uint64_t first_stripe = offset / stripe_bytes_;
  uint64_t last_stripe = (offset + size - 1) / stripe_bytes_;
  uint64_t stripes = last_stripe - first_stripe + 1;
  return static_cast<int>(
      std::min<uint64_t>(stripes, static_cast<uint64_t>(num_dimms_)));
}

double InterleaveMap::ConcurrentDimms(int threads, uint64_t access_size,
                                      bool grouped,
                                      double stream_coverage) const {
  const double dimms = static_cast<double>(num_dimms_);
  if (threads < 1 || access_size == 0) return 1.0;
  if (grouped) {
    // One global sequential stream: the in-flight window spans the bytes all
    // threads are currently working on. Its stripe coverage (plus the stripe
    // boundary it straddles) bounds how many DIMMs can be busy at once.
    // Small grouped accesses collapse onto one or two DIMMs — the paper's
    // "nearly all threads operate on the same DIMM" regime.
    double window = static_cast<double>(threads) *
                    static_cast<double>(access_size);
    double covered = window / static_cast<double>(stripe_bytes_) + 1.0;
    return std::clamp(covered, 1.0, dimms);
  }
  // Individual streams sit at independent phases of the stripe rotation.
  // With T streams, the expected number of occupied DIMMs follows the
  // balls-into-bins occupancy E = D * (1 - (1 - k/D)^T); k = stream_coverage
  // stripes are kept in flight per stream (prefetch / posted-write window).
  double k = std::clamp(stream_coverage, 1.0, dimms);
  double t = static_cast<double>(threads);
  double occupied = dimms * (1.0 - std::pow(1.0 - k / dimms, t));
  return std::clamp(occupied, 1.0, dimms);
}

}  // namespace pmemolap
