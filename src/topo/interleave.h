// PMEM DIMM interleaving address map (paper Figure 2).
//
// Data on one socket's PMEM is striped across its 6 DIMMs in 4 KB units: the
// first 4 KB lives on DIMM 0, the next on DIMM 1, ..., wrapping after 24 KB.
// Accesses therefore hit different numbers of DIMMs depending on their offset
// and size — the mechanism behind the paper's 4 KB sweet spot and the
// "all threads on one DIMM" collapse for small grouped accesses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace pmemolap {

/// Maps byte offsets within one socket's interleaved PMEM region to DIMMs.
class InterleaveMap {
 public:
  /// stripe_bytes must be a power of two; num_dimms >= 1.
  static Result<InterleaveMap> Make(uint64_t stripe_bytes, int num_dimms);

  uint64_t stripe_bytes() const { return stripe_bytes_; }
  int num_dimms() const { return num_dimms_; }

  /// DIMM index serving the byte at `offset`.
  int DimmForOffset(uint64_t offset) const {
    return static_cast<int>((offset / stripe_bytes_) %
                            static_cast<uint64_t>(num_dimms_));
  }

  /// Byte counts per DIMM for the access [offset, offset + size).
  std::vector<uint64_t> BytesPerDimm(uint64_t offset, uint64_t size) const;

  /// Number of distinct DIMMs touched by [offset, offset + size).
  int DimmsTouched(uint64_t offset, uint64_t size) const;

  /// Expected number of *distinct DIMMs kept busy concurrently* when
  /// `threads` threads issue accesses of `access_size` bytes each:
  ///
  ///  - grouped (one global sequential stream): consecutive accesses of the
  ///    group map to consecutive addresses, so at any instant the in-flight
  ///    window spans ~threads * access_size bytes => that window's DIMM
  ///    coverage bounds the parallelism.
  ///  - individual (disjoint streams at independent phases): each stream
  ///    walks all DIMMs over time; with enough streams all DIMMs stay busy.
  ///
  /// Returns a value in [1, num_dimms].
  ///
  /// `stream_coverage` is the expected number of stripes one individual
  /// stream keeps in flight (device prefetch window for reads; the posted
  /// WPQ write window spreads writes much wider).
  double ConcurrentDimms(int threads, uint64_t access_size, bool grouped,
                         double stream_coverage = 1.3) const;

 private:
  InterleaveMap(uint64_t stripe_bytes, int num_dimms)
      : stripe_bytes_(stripe_bytes), num_dimms_(num_dimms) {}

  uint64_t stripe_bytes_;
  int num_dimms_;
};

}  // namespace pmemolap
