// Description of the modeled server platform.
//
// The paper's testbed (Section 2.3, Figure 1) is a dual-socket Intel Xeon
// Gold 5220S machine: per socket 18 physical cores (36 logical with
// hyperthreading), two integrated memory controllers (iMCs) with three memory
// channels each, one 128 GB Optane DIMM plus one 16 GB DDR4 DIMM per channel.
// Each socket forms one NUMA *region* consisting of two NUMA *nodes*
// (9 physical cores + 1 iMC + 3 PMEM/DRAM DIMMs per node). The sockets are
// connected by a UPI link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace pmemolap {

/// Memory media types the model distinguishes.
enum class Media {
  kPmem,  ///< Intel Optane DC Persistent Memory (App Direct)
  kDram,  ///< DDR4 DRAM
  kSsd,   ///< NVMe SSD (block device; used only for the §6.2 comparison)
};

const char* MediaName(Media media);

/// Identifies one logical CPU in the system.
struct LogicalCpu {
  int logical_id = 0;     ///< 0 .. logical_cores_total()-1
  int socket = 0;         ///< NUMA region
  int numa_node = 0;      ///< global NUMA node id (2 per socket)
  int physical_core = 0;  ///< global physical core id
  bool is_hyperthread = false;  ///< true for the second thread of a core
};

/// Static description of the modeled platform. All counts are per the
/// paper's testbed by default; alternate shapes can be constructed for tests
/// and what-if studies.
class SystemTopology {
 public:
  struct Config {
    int sockets = 2;
    int numa_nodes_per_socket = 2;
    int physical_cores_per_numa_node = 9;
    int hyperthreads_per_core = 2;
    int imcs_per_socket = 2;
    int channels_per_imc = 3;
    uint64_t pmem_dimm_capacity = 128 * kGiB;
    uint64_t dram_dimm_capacity = 16 * kGiB;
    uint64_t interleave_bytes = kInterleaveBytes;  ///< PMEM stripe size
  };

  /// Builds the paper's dual-socket Xeon Gold 5220S platform.
  static SystemTopology PaperServer();

  /// Builds an arbitrary platform; validates the config.
  static Result<SystemTopology> Make(const Config& config);

  const Config& config() const { return config_; }

  int sockets() const { return config_.sockets; }
  int numa_nodes_total() const {
    return config_.sockets * config_.numa_nodes_per_socket;
  }
  int physical_cores_per_socket() const {
    return config_.numa_nodes_per_socket * config_.physical_cores_per_numa_node;
  }
  int physical_cores_total() const {
    return sockets() * physical_cores_per_socket();
  }
  int logical_cores_per_socket() const {
    return physical_cores_per_socket() * config_.hyperthreads_per_core;
  }
  int logical_cores_total() const {
    return sockets() * logical_cores_per_socket();
  }
  /// Memory channels (and thus DIMMs of each media type) per socket: 6 on
  /// the paper machine.
  int dimms_per_socket() const {
    return config_.imcs_per_socket * config_.channels_per_imc;
  }
  int dimms_total() const { return sockets() * dimms_per_socket(); }

  uint64_t pmem_capacity_per_socket() const {
    return static_cast<uint64_t>(dimms_per_socket()) *
           config_.pmem_dimm_capacity;
  }
  uint64_t pmem_capacity_total() const {
    return static_cast<uint64_t>(sockets()) * pmem_capacity_per_socket();
  }
  uint64_t dram_capacity_per_socket() const {
    return static_cast<uint64_t>(dimms_per_socket()) *
           config_.dram_dimm_capacity;
  }
  uint64_t dram_capacity_total() const {
    return static_cast<uint64_t>(sockets()) * dram_capacity_per_socket();
  }

  /// All logical CPUs, ordered socket-major, physical cores first, then
  /// their hyperthread siblings (matching how the paper fills cores).
  const std::vector<LogicalCpu>& cpus() const { return cpus_; }

  /// The logical CPUs of one socket, physical threads first.
  std::vector<LogicalCpu> CpusOfSocket(int socket) const;

  /// True if a thread running on `socket` accesses memory on `data_socket`
  /// locally ("near" in the paper's terminology).
  static bool IsNear(int socket, int data_socket) {
    return socket == data_socket;
  }

  /// Human-readable one-line summary, e.g. for bench headers.
  std::string Describe() const;

 private:
  explicit SystemTopology(const Config& config);

  Config config_;
  std::vector<LogicalCpu> cpus_;
};

}  // namespace pmemolap
