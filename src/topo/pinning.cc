#include "topo/pinning.h"

#include <algorithm>

namespace pmemolap {

const char* PinningPolicyName(PinningPolicy policy) {
  switch (policy) {
    case PinningPolicy::kNone:
      return "None";
    case PinningPolicy::kNumaRegion:
      return "NUMA";
    case PinningPolicy::kCores:
      return "Cores";
  }
  return "Unknown";
}

int ThreadPlacement::CountNear() const {
  int n = 0;
  for (const ThreadSlot& slot : slots) n += slot.near_data ? 1 : 0;
  return n;
}

int ThreadPlacement::CountHyperthreaded() const {
  int n = 0;
  for (const ThreadSlot& slot : slots) n += slot.on_hyperthread ? 1 : 0;
  return n;
}

double ThreadPlacement::NearFraction() const {
  if (slots.empty()) return 1.0;
  return static_cast<double>(CountNear()) / static_cast<double>(slots.size());
}

double ThreadPlacement::MeanMigrationRate() const {
  if (slots.empty()) return 0.0;
  double sum = 0.0;
  for (const ThreadSlot& slot : slots) sum += slot.migration_rate;
  return sum / static_cast<double>(slots.size());
}

Result<ThreadPlacement> ThreadPlacer::Place(int threads, PinningPolicy policy,
                                            int data_socket) const {
  if (threads < 1) {
    return Status::InvalidArgument("thread count must be >= 1");
  }
  if (data_socket < 0 || data_socket >= topology_.sockets()) {
    return Status::InvalidArgument("data_socket out of range");
  }

  ThreadPlacement placement;
  placement.policy = policy;
  placement.data_socket = data_socket;

  if (policy == PinningPolicy::kNone) {
    // The scheduler spreads load over every socket; threads also migrate
    // between sockets over time, so even "near" threads keep churning the
    // coherence directory. Round-robin over sockets approximates the
    // observed long-run distribution.
    const auto& cpus = topology_.cpus();
    placement.oversubscription =
        static_cast<double>(threads) /
        static_cast<double>(topology_.logical_cores_total());
    for (int i = 0; i < threads; ++i) {
      int socket = i % topology_.sockets();
      // Pick the next free core of that socket (physical first).
      int index_in_socket = i / topology_.sockets();
      std::vector<LogicalCpu> socket_cpus = topology_.CpusOfSocket(socket);
      const LogicalCpu& cpu =
          socket_cpus[static_cast<size_t>(index_in_socket) %
                      socket_cpus.size()];
      ThreadSlot slot;
      slot.socket = socket;
      slot.numa_node = cpu.numa_node;
      slot.physical_core = cpu.physical_core;
      slot.on_hyperthread = cpu.is_hyperthread;
      slot.near_data = SystemTopology::IsNear(socket, data_socket);
      slot.migration_rate = 1.0;
      placement.slots.push_back(slot);
    }
    (void)cpus;
    return placement;
  }

  // kNumaRegion and kCores both restrict threads to the data socket.
  std::vector<LogicalCpu> socket_cpus = topology_.CpusOfSocket(data_socket);
  placement.oversubscription = static_cast<double>(threads) /
                               static_cast<double>(socket_cpus.size());
  for (int i = 0; i < threads; ++i) {
    const LogicalCpu& cpu =
        socket_cpus[static_cast<size_t>(i) % socket_cpus.size()];
    ThreadSlot slot;
    slot.socket = data_socket;
    slot.numa_node = cpu.numa_node;
    slot.physical_core = cpu.physical_core;
    // A thread shares its physical core once we wrap into the hyperthread
    // half of the socket's logical CPUs (or oversubscribe).
    slot.on_hyperthread =
        cpu.is_hyperthread ||
        static_cast<size_t>(i) >= socket_cpus.size();
    slot.near_data = true;
    // NUMA-region pinning leaves intra-region placement to the scheduler:
    // it rebalances threads across cores (and across the two NUMA nodes of
    // the region), which the paper observed as a small penalty relative to
    // explicit per-core pinning — strongest once threads exceed the
    // physical cores and the scheduler time-slices.
    if (policy == PinningPolicy::kNumaRegion) {
      slot.migration_rate =
          threads > topology_.physical_cores_per_socket() ? 0.35 : 0.2;
    }
    placement.slots.push_back(slot);
  }
  return placement;
}

}  // namespace pmemolap
