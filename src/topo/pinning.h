// Thread-to-core assignment policies (paper Sections 3.3 and 4.3).
//
// The paper evaluates three strategies:
//   None        — the OS scheduler places threads freely across all sockets;
//                 threads migrate and half of them land far from the data.
//   NumaRegion  — threads are bound to the NUMA region (socket) holding the
//                 data, but the scheduler still juggles them across that
//                 region's cores (overhead once threads > physical cores).
//   Cores       — each thread is bound to one specific core; physical cores
//                 are filled before hyperthread siblings.
#pragma once

#include <vector>

#include "common/status.h"
#include "topo/topology.h"

namespace pmemolap {

enum class PinningPolicy {
  kNone,
  kNumaRegion,
  kCores,
};

const char* PinningPolicyName(PinningPolicy policy);

/// Where one worker thread ended up and how stable that placement is.
struct ThreadSlot {
  int socket = 0;
  int numa_node = 0;
  int physical_core = 0;
  /// True if this thread shares its physical core with another worker
  /// (placed on the hyperthread sibling).
  bool on_hyperthread = false;
  /// True if the thread runs on the socket holding the accessed data.
  bool near_data = true;
  /// Expected scheduler migrations per unit work; 0 for pinned threads.
  /// Nonzero migration churns the cross-socket coherence directory.
  double migration_rate = 0.0;
};

/// The resolved placement of a set of worker threads.
struct ThreadPlacement {
  PinningPolicy policy = PinningPolicy::kCores;
  int data_socket = 0;
  std::vector<ThreadSlot> slots;
  /// Threads per available logical CPU of the eligible core set; > 1 means
  /// the scheduler time-slices.
  double oversubscription = 0.0;

  int threads() const { return static_cast<int>(slots.size()); }
  int CountNear() const;
  int CountHyperthreaded() const;
  /// Fraction of threads in [0,1] running near the data.
  double NearFraction() const;
  /// Mean migration rate across threads.
  double MeanMigrationRate() const;
};

/// Resolves (thread count, policy, data socket) into per-thread slots for a
/// given topology.
class ThreadPlacer {
 public:
  explicit ThreadPlacer(const SystemTopology& topology)
      : topology_(topology) {}

  /// Places `threads` workers that access data on `data_socket`.
  ///
  /// kCores/kNumaRegion place onto `data_socket`'s cores (physical first,
  /// then hyperthreads, wrapping if oversubscribed). kNone spreads threads
  /// round-robin over all sockets — the paper observed the default scheduler
  /// giving every socket a share, leaving ~half the threads far.
  Result<ThreadPlacement> Place(int threads, PinningPolicy policy,
                                int data_socket) const;

 private:
  const SystemTopology& topology_;
};

}  // namespace pmemolap
