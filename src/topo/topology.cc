#include "topo/topology.h"

#include <cstdio>

namespace pmemolap {

const char* MediaName(Media media) {
  switch (media) {
    case Media::kPmem:
      return "PMEM";
    case Media::kDram:
      return "DRAM";
    case Media::kSsd:
      return "SSD";
  }
  return "Unknown";
}

SystemTopology SystemTopology::PaperServer() {
  return SystemTopology(Config{});
}

Result<SystemTopology> SystemTopology::Make(const Config& config) {
  if (config.sockets < 1 || config.numa_nodes_per_socket < 1 ||
      config.physical_cores_per_numa_node < 1) {
    return Status::InvalidArgument("topology counts must be positive");
  }
  if (config.hyperthreads_per_core < 1 || config.hyperthreads_per_core > 2) {
    return Status::InvalidArgument("hyperthreads_per_core must be 1 or 2");
  }
  if (config.imcs_per_socket < 1 || config.channels_per_imc < 1) {
    return Status::InvalidArgument("iMC/channel counts must be positive");
  }
  if (config.interleave_bytes == 0 ||
      (config.interleave_bytes & (config.interleave_bytes - 1)) != 0) {
    return Status::InvalidArgument("interleave_bytes must be a power of two");
  }
  return SystemTopology(config);
}

SystemTopology::SystemTopology(const Config& config) : config_(config) {
  // Enumerate logical CPUs socket-major; within a socket all physical
  // threads come first, then the hyperthread siblings. This matches the
  // paper's thread-filling order ("we fill up the physical cores before
  // placing threads on the logical sibling cores").
  int logical_id = 0;
  for (int socket = 0; socket < config_.sockets; ++socket) {
    for (int ht = 0; ht < config_.hyperthreads_per_core; ++ht) {
      for (int node = 0; node < config_.numa_nodes_per_socket; ++node) {
        for (int core = 0; core < config_.physical_cores_per_numa_node;
             ++core) {
          LogicalCpu cpu;
          cpu.logical_id = logical_id++;
          cpu.socket = socket;
          cpu.numa_node = socket * config_.numa_nodes_per_socket + node;
          cpu.physical_core =
              socket * physical_cores_per_socket() +
              node * config_.physical_cores_per_numa_node + core;
          cpu.is_hyperthread = ht > 0;
          cpus_.push_back(cpu);
        }
      }
    }
  }
}

std::vector<LogicalCpu> SystemTopology::CpusOfSocket(int socket) const {
  std::vector<LogicalCpu> out;
  for (const LogicalCpu& cpu : cpus_) {
    if (cpu.socket == socket) out.push_back(cpu);
  }
  return out;
}

std::string SystemTopology::Describe() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%d sockets x %d cores (%d logical), %d PMEM + %d DRAM DIMMs "
                "per socket, %s PMEM / %s DRAM total",
                sockets(), physical_cores_per_socket(),
                logical_cores_per_socket(), dimms_per_socket(),
                dimms_per_socket(), FormatBytes(pmem_capacity_total()).c_str(),
                FormatBytes(dram_capacity_total()).c_str());
  return buf;
}

}  // namespace pmemolap
