// bandwidth_explorer — a small CLI over the memory-system model: query any
// point of the paper's design space from the command line.
//
// Usage:
//   bandwidth_explorer [op] [pattern] [media] [size] [threads] [options...]
//
//   op       read | write                       (default read)
//   pattern  grouped | individual | random      (default individual)
//   media    pmem | dram | ssd                  (default pmem)
//   size     access size, e.g. 64, 256, 4K, 64K (default 4K)
//   threads  1..72                              (default 18)
//
//   options:
//     --pin=none|numa|cores     pinning policy   (default numa)
//     --far                     data on the other socket
//     --cold                    first far run (cold coherence directory)
//     --region=SIZE             region size, e.g. 2G (default 70G)
//     --no-prefetch             disable the L2 prefetcher
//     --fsdax                   fsdax instead of devdax
//
// With no arguments, prints a short tour of the headline numbers.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/runner.h"
#include "memsys/mem_system.h"

using namespace pmemolap;

namespace {

void PrintTour(const WorkloadRunner& runner) {
  struct Point {
    const char* label;
    OpType op;
    Pattern pattern;
    Media media;
    uint64_t size;
    int threads;
  };
  const Point points[] = {
      {"sequential read peak (18T, 4K)", OpType::kRead,
       Pattern::kSequentialIndividual, Media::kPmem, 4096, 18},
      {"sequential write peak (4T, 4K)", OpType::kWrite,
       Pattern::kSequentialGrouped, Media::kPmem, 4096, 4},
      {"random read 256B (36T)", OpType::kRead, Pattern::kRandom,
       Media::kPmem, 256, 36},
      {"DRAM sequential read (18T)", OpType::kRead,
       Pattern::kSequentialIndividual, Media::kDram, 4096, 18},
  };
  std::printf("pmemolap bandwidth explorer — headline numbers:\n");
  for (const Point& point : points) {
    RunOptions options;
    if (point.pattern == Pattern::kRandom) options.region_bytes = 2 * kGiB;
    double bw = runner.Bandwidth(point.op, point.pattern, point.media,
                                 point.size, point.threads, options)
                    .value_or(0.0);
    std::printf("  %-34s %6.1f GB/s\n", point.label, bw);
  }
  std::printf("\nRun with --help for the full option set.\n");
}

void PrintUsage() {
  std::printf(
      "usage: bandwidth_explorer [read|write] [grouped|individual|random]\n"
      "                          [pmem|dram|ssd] [size] [threads]\n"
      "                          [--pin=none|numa|cores] [--far] [--cold]\n"
      "                          [--region=SIZE] [--no-prefetch] "
      "[--fsdax]\n");
}

}  // namespace

int main(int argc, char** argv) {
  MemSystemModel model;
  WorkloadRunner runner(&model);

  if (argc == 1) {
    PrintTour(runner);
    return 0;
  }

  OpType op = OpType::kRead;
  Pattern pattern = Pattern::kSequentialIndividual;
  Media media = Media::kPmem;
  uint64_t size = 4 * kKiB;
  int threads = 18;
  RunOptions options;
  int positional = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--far") {
      options.thread_socket = 0;
      options.data_socket = 1;
      options.run_index = 2;
    } else if (arg == "--cold") {
      options.run_index = 1;
    } else if (arg == "--no-prefetch") {
      options.l2_prefetcher_enabled = false;
    } else if (arg == "--fsdax") {
      options.devdax = false;
    } else if (arg.rfind("--pin=", 0) == 0) {
      std::string policy = arg.substr(6);
      if (policy == "none") {
        options.pinning = PinningPolicy::kNone;
      } else if (policy == "numa") {
        options.pinning = PinningPolicy::kNumaRegion;
      } else if (policy == "cores") {
        options.pinning = PinningPolicy::kCores;
      } else {
        std::printf("unknown pinning '%s'\n", policy.c_str());
        return 1;
      }
    } else if (arg.rfind("--region=", 0) == 0) {
      options.region_bytes = ParseBytes(arg.substr(9));
      if (options.region_bytes == 0) {
        std::printf("bad region size '%s'\n", arg.c_str());
        return 1;
      }
    } else if (arg == "read" || arg == "write") {
      op = arg == "read" ? OpType::kRead : OpType::kWrite;
      ++positional;
    } else if (arg == "grouped" || arg == "individual" || arg == "random") {
      pattern = arg == "grouped"      ? Pattern::kSequentialGrouped
                : arg == "individual" ? Pattern::kSequentialIndividual
                                      : Pattern::kRandom;
      ++positional;
    } else if (arg == "pmem" || arg == "dram" || arg == "ssd") {
      media = arg == "pmem"   ? Media::kPmem
              : arg == "dram" ? Media::kDram
                              : Media::kSsd;
      ++positional;
    } else if (positional >= 3 || ParseBytes(arg) > 0) {
      // size, then threads
      uint64_t value = ParseBytes(arg);
      if (value == 0) {
        std::printf("unrecognized argument '%s'\n", arg.c_str());
        PrintUsage();
        return 1;
      }
      if (positional <= 3) {
        size = value;
        positional = 4;
      } else {
        threads = static_cast<int>(value);
        positional = 5;
      }
    } else {
      std::printf("unrecognized argument '%s'\n", arg.c_str());
      PrintUsage();
      return 1;
    }
  }

  auto result = runner.Run(op, pattern, media, size, threads, options);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const ClassBandwidth& diag = result->per_class[0];
  std::printf("%s %s %s, %s x %d threads (%s pinning%s%s):\n",
              OpTypeName(op), PatternName(pattern), MediaName(media),
              FormatBytes(size).c_str(), threads,
              PinningPolicyName(options.pinning),
              options.thread_socket >= 0 ? ", far" : "",
              options.l2_prefetcher_enabled ? "" : ", prefetcher off");
  std::printf("  bandwidth:        %s\n",
              FormatBandwidth(result->total_gbps).c_str());
  std::printf("  issue bound:      %s\n",
              FormatBandwidth(diag.issue_bound_gbps).c_str());
  std::printf("  device bound:     %s\n",
              FormatBandwidth(diag.device_bound_gbps).c_str());
  if (diag.concurrent_dimms > 0) {
    std::printf("  active DIMMs:     %.1f / 6\n", diag.concurrent_dimms);
  }
  if (op == OpType::kWrite && media == Media::kPmem) {
    std::printf("  combine fraction: %.2f\n", diag.combine_fraction);
    std::printf("  write amp:        %.2fx (media writes %s)\n",
                diag.write_amplification,
                FormatBandwidth(diag.media_write_gbps).c_str());
  }
  if (diag.prefetcher_factor < 1.0) {
    std::printf("  prefetcher factor: %.2f\n", diag.prefetcher_factor);
  }
  if (diag.upi_data_gbps > 0) {
    std::printf("  UPI payload:      %s (utilization %.0f%%)\n",
                FormatBandwidth(diag.upi_data_gbps).c_str(),
                100.0 * result->upi_utilization);
  }
  return 0;
}
