// Scenario: high-throughput data ingestion with durable logging — the
// write-side best practices.
//
// A stream of small records must be persisted durably. The paper's insight
// #6 says many small writes belong in *individual* memory regions ("one
// log per worker") with 256 B entries; this example uses PerWorkerLog and
// compares the modeled ingest bandwidth of the naive shared-log design
// against the per-worker design, plus bulk ingest at the 4 KB chunk size.
#include <cstdio>
#include <cstring>

#include "core/advisor.h"
#include "core/per_worker_log.h"
#include "core/pmem_space.h"
#include "core/runner.h"
#include "memsys/mem_system.h"

using namespace pmemolap;

int main() {
  MemSystemModel model;
  PmemSpace space(model.config().topology);
  WorkloadRunner runner(&model);

  // --- Functional: durable per-worker logs -----------------------------------
  const int kWorkers = 6;  // best practice: 4-6 writers per socket... x2
  auto log = PerWorkerLog::Create(&space, kWorkers,
                                  /*capacity_entries=*/1000);
  if (!log.ok()) {
    std::printf("log creation failed: %s\n",
                log.status().ToString().c_str());
    return 1;
  }
  ExecutionProfile profile;
  char record[64];
  for (int i = 0; i < 600; ++i) {
    std::snprintf(record, sizeof(record), "txn %06d committed", i);
    int worker = i % kWorkers;
    if (!log->Append(worker, reinterpret_cast<const std::byte*>(record),
                     std::strlen(record), &profile)
             .ok()) {
      return 1;
    }
  }
  std::printf("Appended 600 records across %d per-worker logs "
              "(256 B entries, one Optane line each):\n",
              log->workers());
  for (int worker = 0; worker < log->workers(); ++worker) {
    std::printf("  worker %d: %llu entries on socket %d\n", worker,
                static_cast<unsigned long long>(log->entries(worker)),
                log->SocketOf(worker));
  }

  // --- Modeled: why this layout? ---------------------------------------------
  // Shared log (grouped 64 B appends from many threads) vs per-worker logs
  // (individual 256 B appends from 4-6 threads).
  double shared = runner
                      .Bandwidth(OpType::kWrite, Pattern::kSequentialGrouped,
                                 Media::kPmem, 64, 36, RunOptions())
                      .value_or(0.0);
  double per_worker_small =
      runner
          .Bandwidth(OpType::kWrite, Pattern::kSequentialIndividual,
                     Media::kPmem, 256, 6, RunOptions())
          .value_or(0.0);
  double bulk = runner
                    .Bandwidth(OpType::kWrite, Pattern::kSequentialGrouped,
                               Media::kPmem, 4 * kKiB, 4, RunOptions())
                    .value_or(0.0);
  std::printf("\nModeled ingest bandwidth on one socket's PMEM:\n");
  std::printf("  naive shared log, 36 writers x 64 B appends:   %5.1f GB/s "
              "(write-combining interference + RMW)\n",
              shared);
  std::printf("  per-worker logs,   6 writers x 256 B appends:  %5.1f GB/s "
              "(insight #6)\n",
              per_worker_small);
  std::printf("  bulk ingest,       4 writers x 4 KB chunks:    %5.1f GB/s "
              "(insights #6/#7)\n",
              bulk);
  std::printf("=> per-worker 256 B logging is %.1fx faster than the naive "
              "shared log.\n",
              per_worker_small / shared);

  // --- The advisor reaches the same plan --------------------------------------
  WorkloadIntent intent;
  intent.read_fraction = 0.0;  // pure ingest
  BestPracticesAdvisor advisor(model.config().topology);
  AccessPlan plan = advisor.Plan(intent);
  std::printf("\nAdvisor plan for pure ingestion: %d writers/socket, %s "
              "chunks for bulk, %s entries for small appends, pinning %s.\n",
              plan.write_threads_per_socket,
              FormatBytes(plan.sequential_chunk_bytes).c_str(),
              FormatBytes(plan.small_write_chunk_bytes).c_str(),
              PinningPolicyName(plan.pinning));
  return 0;
}
