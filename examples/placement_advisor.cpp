// Scenario: capacity planning and data placement for a data-warehouse
// deployment on the PMEM server.
//
// A 600 GB fact table plus ~2 GB of dimension tables must be placed so
// that queries hit near PMEM only. This example uses the Partitioner,
// DimensionReplicator heuristic, and the model to compare the naive
// single-socket layout against the best-practice striped layout.
#include <cstdio>
#include <vector>

#include "core/advisor.h"
#include "core/partitioner.h"
#include "core/replicator.h"
#include "core/runner.h"
#include "memsys/mem_system.h"

using namespace pmemolap;

int main() {
  MemSystemModel model;
  const SystemTopology& topo = model.config().topology;
  WorkloadRunner runner(&model);

  const uint64_t kFactBytes = 600ULL * kGiB;
  const uint64_t kFactTuples = kFactBytes / 128;
  const uint64_t kDimensionBytes = 2ULL * kGiB;

  std::printf("Placing a %s fact table (+%s dimensions) on: %s\n\n",
              FormatBytes(kFactBytes).c_str(),
              FormatBytes(kDimensionBytes).c_str(),
              topo.Describe().c_str());

  // --- Partitioning plan ------------------------------------------------------
  Partitioner partitioner(topo);
  auto partitions = partitioner.Partition(kFactTuples, /*workers=*/18);
  if (!partitions.ok()) return 1;
  for (const SocketPartition& partition : *partitions) {
    std::printf(
        "socket %d stores tuples [%llu, %llu) = %s; %zu workers x %s each\n",
        partition.socket,
        static_cast<unsigned long long>(partition.tuples.begin),
        static_cast<unsigned long long>(partition.tuples.end),
        FormatBytes(partition.tuples.size() * 128).c_str(),
        partition.worker_ranges.size(),
        FormatBytes(partition.worker_ranges[0].size() * 128).c_str());
  }

  bool replicate = DimensionReplicator::ShouldReplicate(kDimensionBytes,
                                                        kFactBytes);
  std::printf("dimensions (%s of %s fact data): %s\n\n",
              FormatBytes(kDimensionBytes).c_str(),
              FormatBytes(kFactBytes).c_str(),
              replicate ? "replicate one copy per socket"
                        : "stripe like the fact table");

  // --- Model-backed comparison: naive vs best-practice layout ----------------
  // Naive: everything on socket 0, threads on both sockets => half the
  // scan traffic crosses the UPI.
  auto naive = runner.MultiSocket(OpType::kRead, Media::kPmem,
                                  MultiSocketConfig::kNearFarShared, 18,
                                  4 * kKiB);
  // Best practice: striped, near-only access from both sockets.
  auto striped = runner.MultiSocket(OpType::kRead, Media::kPmem,
                                    MultiSocketConfig::kTwoNear, 18,
                                    4 * kKiB);
  if (!naive.ok() || !striped.ok()) return 1;

  double naive_scan_s = static_cast<double>(kFactBytes) / 1e9 /
                        naive->total_gbps;
  double striped_scan_s = static_cast<double>(kFactBytes) / 1e9 /
                          striped->total_gbps;
  std::printf("full-table scan, naive single-socket placement: %5.1f GB/s "
              "=> %6.1f s (UPI util %.0f%%)\n",
              naive->total_gbps, naive_scan_s,
              100.0 * naive->upi_utilization);
  std::printf("full-table scan, striped near-only placement:   %5.1f GB/s "
              "=> %6.1f s\n",
              striped->total_gbps, striped_scan_s);
  std::printf("=> best-practice layout is %.1fx faster\n\n",
              naive_scan_s / striped_scan_s);

  // --- Capacity check ---------------------------------------------------------
  uint64_t per_socket = kFactBytes / topo.sockets() +
                        (replicate ? kDimensionBytes
                                   : kDimensionBytes / topo.sockets());
  std::printf("per-socket PMEM footprint: %s of %s available (%.0f%%)\n",
              FormatBytes(per_socket).c_str(),
              FormatBytes(topo.pmem_capacity_per_socket()).c_str(),
              100.0 * static_cast<double>(per_socket) /
                  static_cast<double>(topo.pmem_capacity_per_socket()));
  return 0;
}
