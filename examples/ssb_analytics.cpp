// Scenario: running the Star Schema Benchmark through the PMEM-aware query
// engine — the paper's §6.2 workflow end to end:
//
//   dbgen  ->  engine Prepare (Dash indexes, striping, replication)
//          ->  execute all 13 queries (functionally, results verified)
//          ->  project runtimes to the paper's sf 100 on PMEM and DRAM.
#include <cstdio>

#include "engine/engine.h"
#include "ssb/reference.h"

using namespace pmemolap;

int main() {
  // Generate a small but real SSB instance.
  auto db = ssb::Generate({.scale_factor = 0.05, .seed = 2024});
  if (!db.ok()) {
    std::printf("dbgen failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated SSB sf 0.05: %zu lineorder, %zu customer, %zu "
              "supplier, %zu part, %zu date rows (%s fact data)\n\n",
              db->lineorder.size(), db->customer.size(),
              db->supplier.size(), db->part.size(), db->date.size(),
              FormatBytes(db->FactBytes()).c_str());

  MemSystemModel model;
  ssb::ReferenceExecutor reference(&db.value());

  EngineConfig config;
  config.mode = EngineMode::kPmemAware;
  config.media = Media::kPmem;
  config.threads = 36;
  config.project_to_sf = 100.0;
  SsbEngine engine(&db.value(), &model, config);
  if (Status status = engine.Prepare(); !status.ok()) {
    std::printf("prepare failed: %s\n", status.ToString().c_str());
    return 1;
  }

  EngineConfig dram_config = config;
  dram_config.media = Media::kDram;
  SsbEngine dram_engine(&db.value(), &model, dram_config);
  if (!dram_engine.Prepare().ok()) return 1;

  std::printf("%-6s %10s %10s %9s %8s  %s\n", "Query", "PMEM[s]", "DRAM[s]",
              "slowdown", "rows", "result check");
  double pmem_total = 0.0;
  double dram_total = 0.0;
  for (ssb::QueryId query : ssb::AllQueries()) {
    auto run = engine.Execute(query);
    auto dram_run = dram_engine.Execute(query);
    if (!run.ok() || !dram_run.ok()) return 1;
    bool correct = run->output == reference.Execute(query);
    std::printf("%-6s %10.2f %10.2f %8.2fx %8zu  %s\n",
                ssb::QueryName(query).c_str(), run->seconds,
                dram_run->seconds, run->seconds / dram_run->seconds,
                run->output.rows(), correct ? "verified" : "MISMATCH");
    pmem_total += run->seconds;
    dram_total += dram_run->seconds;
  }
  std::printf("%-6s %10.2f %10.2f %8.2fx\n", "AVG", pmem_total / 13,
              dram_total / 13, pmem_total / dram_total);
  std::printf(
      "\nProjected to sf 100 (600M tuples, 70+ GB): PMEM runs the "
      "read-heavy SSB only %.2fx slower than DRAM while offering 8x the "
      "capacity per socket (paper: 1.66x).\n",
      pmem_total / dram_total);

  // Peek into one query's traffic profile — where do the bytes go?
  auto q21 = engine.Execute(ssb::QueryId::kQ2_1);
  if (q21.ok()) {
    std::printf("\nQ2.1 traffic profile (at sf 0.05, per socket):\n");
    for (const TrafficRecord& record : q21->profile.records()) {
      std::printf("  %-16s %-6s %-10s socket %d: %s in %s ops\n",
                  record.label.c_str(), OpTypeName(record.op),
                  PatternName(record.pattern), record.data_socket,
                  FormatBytes(record.bytes).c_str(),
                  FormatBytes(record.access_size).c_str());
    }
  }
  return 0;
}
