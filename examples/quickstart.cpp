// Quickstart: the pmemolap public API in ~60 lines.
//
//  1. Describe the platform and ask the model what a workload achieves.
//  2. Allocate placement-aware memory and move data with best-practice
//     chunking.
//  3. Ask the BestPracticesAdvisor for a full access plan.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/advisor.h"
#include "core/chunked_io.h"
#include "core/pmem_space.h"
#include "core/runner.h"
#include "memsys/mem_system.h"

using namespace pmemolap;

int main() {
  // --- 1. The modeled platform and its bandwidth envelope -------------------
  MemSystemModel model;  // defaults to the paper's dual-socket Optane server
  std::printf("Platform: %s\n\n", model.config().topology.Describe().c_str());

  WorkloadRunner runner(&model);
  double read_bw = runner
                       .Bandwidth(OpType::kRead,
                                  Pattern::kSequentialIndividual,
                                  Media::kPmem, 4 * kKiB, 18, RunOptions())
                       .value_or(0.0);
  double write_bw = runner
                        .Bandwidth(OpType::kWrite,
                                   Pattern::kSequentialGrouped, Media::kPmem,
                                   4 * kKiB, 4, RunOptions())
                        .value_or(0.0);
  std::printf("PMEM sequential read  (18 threads, 4 KB): %5.1f GB/s\n",
              read_bw);
  std::printf("PMEM sequential write ( 4 threads, 4 KB): %5.1f GB/s\n\n",
              write_bw);

  // --- 2. Placement-aware allocation and chunked I/O ------------------------
  PmemSpace space(model.config().topology);
  auto table = space.AllocateStriped(8 * kMiB, Media::kPmem);
  if (!table.ok()) {
    std::printf("allocation failed: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("Striped %s of PMEM across %d sockets\n",
              FormatBytes(table->total_size()).c_str(), table->num_stripes());

  ExecutionProfile profile;
  for (int socket = 0; socket < table->num_stripes(); ++socket) {
    ChunkedWriter writer(&table->stripe(socket));  // 4 KB best-practice chunks
    if (!writer.WriteAll(/*threads=*/4, /*seed=*/42, &profile).ok()) return 1;
    ChunkedReader reader(&table->stripe(socket));
    auto checksum = reader.ReadAll(/*threads=*/18, &profile);
    if (!checksum.ok()) return 1;
    std::printf("  socket %d: ingest + scan complete, checksum %016llx\n",
                socket, static_cast<unsigned long long>(checksum.value()));
  }
  std::printf("Profiled traffic: %s read, %s written\n\n",
              FormatBytes(profile.TotalBytes(OpType::kRead)).c_str(),
              FormatBytes(profile.TotalBytes(OpType::kWrite)).c_str());

  // --- 3. The 7 best practices as an access plan -----------------------------
  WorkloadIntent intent;
  intent.read_fraction = 0.9;        // read-heavy OLAP
  intent.working_set_bytes = 70 * kGiB;
  intent.small_table_bytes = 300 * kMiB;  // dimension tables
  BestPracticesAdvisor advisor(model.config().topology);
  AccessPlan plan = advisor.Plan(intent);
  std::printf("Access plan for a read-heavy OLAP workload:\n");
  std::printf("  read threads/socket:  %d (hyperthreads: %s)\n",
              plan.read_threads_per_socket,
              plan.use_hyperthreads_for_reads ? "yes" : "no");
  std::printf("  write threads/socket: %d\n", plan.write_threads_per_socket);
  std::printf("  pinning:              %s\n",
              PinningPolicyName(plan.pinning));
  std::printf("  sequential chunk:     %s\n",
              FormatBytes(plan.sequential_chunk_bytes).c_str());
  std::printf("  stripe across sockets: %s; replicate small tables: %s\n",
              plan.stripe_across_sockets ? "yes" : "no",
              plan.replicate_small_tables ? "yes" : "no");
  for (const std::string& line : plan.rationale) {
    std::printf("    - %s\n", line.c_str());
  }
  return 0;
}
