// Scenario: the full warehouse loading pipeline — generate, export to the
// classic '|'-separated .tbl files, re-import, run a query on the imported
// data, and plan the ingest bandwidth per the write-side best practices.
#include <cstdio>
#include <filesystem>

#include "core/advisor.h"
#include "engine/engine.h"
#include "core/runner.h"
#include "ssb/csv.h"
#include "ssb/format.h"
#include "ssb/reference.h"

using namespace pmemolap;

int main() {
  // 1. Generate and export.
  auto db = ssb::Generate({.scale_factor = 0.01, .seed = 99});
  if (!db.ok()) return 1;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pmemolap_import_demo";
  std::filesystem::create_directories(dir);
  if (Status status = ssb::ExportDatabase(db.value(), dir.string());
      !status.ok()) {
    std::printf("export failed: %s\n", status.ToString().c_str());
    return 1;
  }
  uint64_t tbl_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    tbl_bytes += entry.file_size();
  }
  std::printf("Exported SSB sf 0.01 to %s (%s of .tbl files)\n",
              dir.c_str(), FormatBytes(tbl_bytes).c_str());

  // 2. Re-import and verify a query runs identically.
  auto imported = ssb::ImportDatabase(dir.string());
  if (!imported.ok()) {
    std::printf("import failed: %s\n",
                imported.status().ToString().c_str());
    return 1;
  }
  std::printf("Imported %zu lineorder tuples back\n",
              imported->lineorder.size());

  MemSystemModel model;
  EngineConfig config;
  config.mode = EngineMode::kPmemAware;
  config.threads = 36;
  SsbEngine engine(&imported.value(), &model, config);
  if (!engine.Prepare().ok()) return 1;
  auto run = engine.Execute(ssb::QueryId::kQ2_1);
  ssb::ReferenceExecutor reference(&db.value());
  bool identical = run.ok() && run->output == reference.Execute(
                                                  ssb::QueryId::kQ2_1);
  std::printf("Q2.1 on imported data matches the original: %s\n\n",
              identical ? "yes" : "NO");
  std::printf("Q2.1 result (top rows):\n%s\n",
              ssb::FormatOutput(ssb::QueryId::kQ2_1, run->output, 5)
                  .c_str());

  // 3. What would loading the paper-scale table cost?
  WorkloadRunner runner(&model);
  double ingest_bw =
      runner
          .Bandwidth(OpType::kWrite, Pattern::kSequentialIndividual,
                     Media::kPmem, 4 * kKiB, 4, RunOptions())
          .value_or(1.0);
  uint64_t sf100_bytes = ssb::CardinalitiesFor(100.0).lineorder * 128;
  std::printf(
      "Paper-scale load: %s of lineorder at %.1f GB/s per socket (4 "
      "writers, 4 KB chunks, both sockets) = ~%.0f s.\n",
      FormatBytes(sf100_bytes).c_str(), ingest_bw,
      static_cast<double>(sf100_bytes) / 1e9 / (2 * ingest_bw));

  BestPracticesAdvisor advisor(model.config().topology);
  WorkloadIntent intent;
  intent.read_fraction = 0.0;
  AccessPlan plan = advisor.Plan(intent);
  std::printf(
      "Advisor: %d writers/socket, %s chunks, %s pinning — insight #7's "
      "write-side discipline.\n",
      plan.write_threads_per_socket,
      FormatBytes(plan.sequential_chunk_bytes).c_str(),
      PinningPolicyName(plan.pinning));

  std::filesystem::remove_all(dir);
  return 0;
}
